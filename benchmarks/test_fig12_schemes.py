"""Benchmark: Figure 12 — the headline comparison of all six schemes.

This is the paper's main result, run over the full Table 1 workload set
(Table 1 and Table 2 are exercised here by construction).  Headline
targets (HEB-D vs BaOnly): EE +39.7%, downtime −41%, battery lifetime
4.7x, REU +81.2%.  We assert ordering and direction; measured magnitudes
are recorded in EXPERIMENTS.md.
"""

from repro.experiments import format_fig12, run_fig12


def test_fig12_schemes(once):
    results = once(run_fig12, duration_h=4.0, seed=1)
    print()
    print(format_fig12(results))

    rows = results.scheme_rows()

    # (a) Energy efficiency: BaOnly ~ BaFirst < SCFirst <= HEB family.
    assert rows["BaFirst"]["ee_vs_baonly"] < 1.1
    assert rows["SCFirst"]["energy_efficiency"] > rows["BaOnly"][
        "energy_efficiency"]
    assert rows["HEB-D"]["energy_efficiency"] >= rows["HEB-F"][
        "energy_efficiency"] - 1e-9
    assert rows["HEB-D"]["ee_vs_baonly"] > 1.10

    # (b) Downtime: HEB-D sheds the least.
    assert rows["HEB-D"]["downtime_vs_baonly"] < 0.9
    assert rows["HEB-D"]["downtime_s"] <= min(
        rows[s]["downtime_s"] for s in ("BaOnly", "BaFirst", "SCFirst"))

    # (c) Battery lifetime: SC-preferential schemes spare the battery.
    assert rows["HEB-D"]["lifetime_vs_baonly"] > 1.5
    assert rows["SCFirst"]["lifetime_years"] > rows["BaFirst"][
        "lifetime_years"]

    # (d) REU: hybrids beat BaOnly on total REU and by a wide margin on
    #     surplus capture (the charge-ceiling effect).
    assert rows["HEB-D"]["reu_vs_baonly"] > 1.05
    assert rows["HEB-D"]["capture_vs_baonly"] > 1.5
    assert abs(rows["HEB-D"]["reu"] - rows["SCFirst"]["reu"]) < 0.05

    # Small peaks benefit more than large peaks (paper: 52.5% vs 27.1%).
    split = results.small_large_split()
    assert (split["small_peaks"]["heb_d_ee_gain"]
            >= split["large_peaks"]["heb_d_ee_gain"] * 0.98)
