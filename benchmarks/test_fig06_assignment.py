"""Benchmark: Figure 6 — optimal server assignment between SC and battery."""

from repro.experiments import format_fig06, run_fig06
from repro.experiments.fig06_assignment import optimal_assignment


def test_fig06_assignment(once):
    points = once(run_fig06)
    print()
    print(format_fig06(points))

    best = optimal_assignment(points)
    # An interior optimum exists: never lean fully on either device.
    assert 0 < best.servers_on_sc < 6
    # Heavy SC assignment costs substantial runtime (paper: ~25%).
    assert points[5].runtime_s < 0.85 * best.runtime_s
    # And battery-only is also not optimal.
    assert points[0].runtime_s < best.runtime_s
