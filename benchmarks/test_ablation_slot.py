"""Ablation: control-slot length (the paper defaults to 10 minutes).

Short slots re-plan often (responsive, but the predictor sees noisier
series); long slots commit to stale ratios across multiple peaks.
"""

import dataclasses

from repro.config import ControllerConfig, prototype_buffer, \
    prototype_cluster
from repro.core import make_policy
from repro.sim import HybridBuffers, Simulation
from repro.units import hours, minutes
from repro.workloads import get_workload

SLOT_MINUTES = (5.0, 10.0, 20.0, 30.0)


def run_sweep():
    hybrid = prototype_buffer()
    cluster = dataclasses.replace(prototype_cluster(),
                                  utility_budget_w=243.0)
    trace = get_workload("MS", duration_s=hours(4), seed=1)
    rows = {}
    for slot_min in SLOT_MINUTES:
        controller = ControllerConfig(slot_seconds=minutes(slot_min))
        policy = make_policy("HEB-D", hybrid=hybrid, controller=controller)
        buffers = HybridBuffers(hybrid)
        result = Simulation(trace, policy, buffers, cluster_config=cluster,
                            controller_config=controller).run()
        rows[slot_min] = {
            "energy_efficiency": result.metrics.energy_efficiency,
            "downtime_s": result.metrics.server_downtime_s,
            "relay_switches": result.metrics.relay_switches,
            "slots": len(result.slots),
        }
    return rows


def test_ablation_slot_length(once):
    rows = once(run_sweep)
    print()
    print("Ablation — control slot length (HEB-D, MS, 243 W budget)")
    for slot_min, row in rows.items():
        print(f"  slot={slot_min:>4.0f}min EE={row['energy_efficiency']:.3f} "
              f"down={row['downtime_s']:.0f}s "
              f"switches={row['relay_switches']} slots={row['slots']}")

    # Slot count scales inversely with length.
    assert rows[5.0]["slots"] > rows[30.0]["slots"]
    # All slot lengths remain functional.
    for row in rows.values():
        assert row["energy_efficiency"] > 0.7
    # The paper's 10-minute default stays within the observed band.
    best = max(r["energy_efficiency"] for r in rows.values())
    assert rows[10.0]["energy_efficiency"] >= best - 0.08
    # No slot length degrades resiliency catastrophically (the engine's
    # per-tick fallback keeps even stale plans functional; observed trend
    # on this workload actually favours longer slots, which re-plan less
    # often mid-peak).
    downtimes = [r["downtime_s"] for r in rows.values()]
    assert max(downtimes) <= 5.0 * max(min(downtimes), 100.0)
