"""Ablation: PAT Δr step size (Section 5.3's optimization knob).

Sweeps the online correction step from very timid (0.25%) to aggressive
(4%) and reports HEB-D's metrics under stress.  The paper's default is 1%.
"""

import dataclasses

import pytest

from repro.config import PATConfig, prototype_buffer, prototype_cluster
from repro.core import make_policy
from repro.sim import HybridBuffers, Simulation
from repro.units import hours
from repro.workloads import get_workload

DELTA_RS = (0.0025, 0.01, 0.04)


def run_sweep():
    cluster = dataclasses.replace(prototype_cluster(),
                                  utility_budget_w=242.0)
    hybrid = prototype_buffer()
    trace = get_workload("DA", duration_s=hours(8), seed=1)
    rows = {}
    for delta_r in DELTA_RS:
        policy = make_policy("HEB-D", hybrid=hybrid,
                             pat_config=PATConfig(delta_r=delta_r))
        buffers = HybridBuffers(hybrid)
        result = Simulation(trace, policy, buffers,
                            cluster_config=cluster).run()
        updates = sum(e.updates for e in policy.pat.entries())
        rows[delta_r] = {
            "energy_efficiency": result.metrics.energy_efficiency,
            "downtime_s": result.metrics.server_downtime_s,
            "pat_updates": updates,
            "pat_entries": len(policy.pat),
        }
    return rows


def test_ablation_pat_delta_r(once):
    rows = once(run_sweep)
    print()
    print("Ablation — PAT Δr step size (HEB-D, DA, 242 W budget, 8 h)")
    for delta_r, row in rows.items():
        print(f"  dr={delta_r:<7} EE={row['energy_efficiency']:.3f} "
              f"down={row['downtime_s']:.0f}s updates={row['pat_updates']} "
              f"entries={row['pat_entries']}")

    # Sanity: every step size produces a working controller and the
    # online optimizer actually fires.
    for row in rows.values():
        assert row["energy_efficiency"] > 0.7
        assert row["pat_entries"] > 0
    # The paper's default (1%) must not be worse than the extremes by a
    # meaningful margin.
    default = rows[0.01]["energy_efficiency"]
    assert default >= max(
        r["energy_efficiency"] for r in rows.values()) - 0.03
