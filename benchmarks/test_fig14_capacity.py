"""Benchmark: Figure 14 — installed-capacity growth via DoD levels."""

from repro.experiments import format_fig14, run_fig14


def test_fig14_capacity(once):
    points = once(run_fig14, duration_h=3.0, seed=1)
    print()
    print(format_fig14(points))

    smallest, largest = points[0.4], points[0.8]
    # Larger usable capacity improves resiliency strongly; efficiency and
    # REU stay roughly flat (more usable battery slightly dilutes EE).
    assert largest.energy_efficiency >= smallest.energy_efficiency - 0.02
    assert largest.downtime_s <= smallest.downtime_s
    assert largest.reu >= smallest.reu - 0.01
    # ... but the relationship is non-linear: the last increment buys
    # less than the first (the right-sizing argument of Section 7.5).
    dods = sorted(points)
    first_gain = points[dods[1]].downtime_s - points[dods[0]].downtime_s
    last_gain = points[dods[-1]].downtime_s - points[dods[-2]].downtime_s
    assert abs(last_gain) <= abs(first_gain) + 1e-6 or (
        largest.downtime_s == 0.0)
