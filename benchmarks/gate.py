"""Shared plumbing for the throughput benchmarks and their gates.

Three benchmark families (``engine``, ``batch``, ``service``) share one
result file and one regression-gate policy:

* each measurement is merged as a named section into
  ``benchmarks/BENCH_engine.json``;
* each section carries a commit-agnostic ``config_hash`` fingerprinting
  everything the number depends on, so editing a benchmark invalidates
  its baseline loudly instead of silently comparing different workloads;
* the gate fails when a throughput metric drops below
  :data:`GATE_FRACTION` of the matching section in
  ``benchmarks/BENCH_baseline.json`` (``REPRO_BENCH_SKIP_GATE=1``
  measures without enforcing, e.g. on a loaded machine).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.runner.request import ExperimentSetup

BENCH_DIR = Path(__file__).resolve().parent
RESULT_PATH = BENCH_DIR / "BENCH_engine.json"
BASELINE_PATH = BENCH_DIR / "BENCH_baseline.json"

#: Sections the result file keeps; anything else is dropped on write.
SECTIONS = ("engine", "batch", "service")

#: Fail when throughput drops below this fraction of the recorded baseline.
GATE_FRACTION = 0.7


def write_section(section: str, measurement: dict) -> None:
    """Merge one measurement section into the result file."""
    results = {}
    if RESULT_PATH.exists():
        try:
            loaded = json.loads(RESULT_PATH.read_text())
        except ValueError:
            loaded = {}
        if isinstance(loaded, dict):
            results = {key: loaded[key] for key in SECTIONS
                       if key in loaded}
    results[section] = measurement
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def baseline_section(section: str) -> dict | None:
    if not BASELINE_PATH.exists():
        return None
    baseline = json.loads(BASELINE_PATH.read_text())
    return baseline.get(section)


def digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def sizing_payload(setup: ExperimentSetup) -> dict:
    """The cluster/buffer sizing a measurement's cost depends on."""
    cluster = setup.cluster()
    hybrid = setup.hybrid()
    return {
        "num_servers": cluster.num_servers,
        "utility_budget_w": cluster.utility_budget_w,
        "server_peak_w": cluster.server.peak_power_w,
        "server_idle_w": cluster.server.idle_power_w,
        "total_energy_j": hybrid.total_energy_j,
        "sc_fraction": hybrid.sc_fraction,
    }


def enforce_gate(section: str, measurement: dict, metric: str,
                 unit: str) -> None:
    """Fail when ``metric`` regressed past the gate (see module doc)."""
    if os.environ.get("REPRO_BENCH_SKIP_GATE"):
        return
    baseline = baseline_section(section)
    if baseline is None:
        return
    assert baseline["config_hash"] == measurement["config_hash"], (
        f"{section} benchmark configuration changed; re-record the "
        f"'{section}' section of BENCH_baseline.json")
    floor = baseline[metric] * GATE_FRACTION
    assert measurement[metric] >= floor, (
        f"{section} throughput regression: {measurement[metric]:,.0f} "
        f"{unit} is below {GATE_FRACTION:.0%} of the recorded baseline "
        f"{baseline[metric]:,.0f} {unit}")
