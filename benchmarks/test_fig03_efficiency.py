"""Benchmark: Figure 3 — round-trip efficiency, recovery, on/off waste."""

from repro.experiments import format_fig03, run_fig03


def test_fig03_efficiency(once):
    rows = once(run_fig03)
    print()
    print(format_fig03(rows))

    # Paper shape: SCs 90-95%, batteries <80% and falling with load.
    for row in rows.values():
        assert row.sc_efficiency >= 0.88
        assert row.battery_efficiency < 0.80
    assert (rows[1].battery_efficiency > rows[2].battery_efficiency
            > rows[4].battery_efficiency)
    # Recovery pays once the battery actually saturates (2 and 4 servers),
    # and off/on cycling eats a large share of the recovered energy.
    assert rows[4].battery_recovery_gain > 0.05
    assert rows[4].onoff_waste_fraction > 0.3
