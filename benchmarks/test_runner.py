"""Benchmark: the parallel, cache-aware experiment runner itself.

Not a paper figure — this guards the two performance claims the runner
makes: (a) a warm cache answers a full scheme x workload grid in well
under five seconds, and (b) cached results are bit-for-bit the results
the simulation produced.
"""

import time

from repro.runner import (
    ExperimentRunner,
    ExperimentSetup,
    ResultCache,
    RunRequest,
)

SETUP = ExperimentSetup(duration_h=0.5)
GRID = [RunRequest(scheme, workload, setup=SETUP)
        for scheme in ("BaOnly", "BaFirst", "SCFirst", "HEB-F")
        for workload in ("TS", "PR", "WS")]


def test_warm_cache_grid(once, tmp_path):
    cold_runner = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
    cold = cold_runner.map(GRID)
    assert cold_runner.misses == len(GRID)

    warm_runner = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
    start = time.perf_counter()
    warm = once(warm_runner.map, GRID)
    elapsed = time.perf_counter() - start

    print()
    print(f"warm-cache grid of {len(GRID)} runs: {elapsed * 1000:.1f} ms")
    assert warm_runner.hits == len(GRID)
    assert elapsed < 5.0
    for cold_result, warm_result in zip(cold, warm):
        assert warm_result.to_dict() == cold_result.to_dict()


def test_parallel_map_matches_serial(once):
    serial = ExperimentRunner(jobs=1).map(GRID)
    parallel = once(ExperimentRunner(jobs=2).map, GRID)
    for serial_result, parallel_result in zip(serial, parallel):
        assert parallel_result.to_dict() == serial_result.to_dict()
