"""Benchmark: Figures 7/8 — architecture and deployment comparison."""

from repro.experiments.fig07_architecture import (
    format_fig07,
    run_fig07,
    run_fig08,
)


def test_fig07_architecture(once):
    architectures = run_fig07()
    deployments = once(run_fig08, duration_h=4.0, seed=1)
    print()
    print(format_fig07(architectures, deployments))

    central = architectures["centralized"]
    distributed = architectures["distributed"]
    heb = architectures["heb"]

    # Section 4.1's argument, quantified:
    # centralized double-converts the whole load all the time...
    assert central.steady_overhead_w > 10.0
    assert heb.steady_overhead_w == 0.0
    assert distributed.steady_overhead_w == 0.0
    # ...distributed cannot pool energy; HEB does both.
    assert not distributed.shares_energy
    assert heb.shares_energy and heb.per_server_control
    assert heb.supports_heterogeneous

    # Figure 8: rack-level DC delivery beats cluster-level end to end.
    rack = deployments["rack-level"]
    cluster = deployments["cluster-level"]
    assert rack.delivery_efficiency > cluster.delivery_efficiency
    assert rack.energy_efficiency >= cluster.energy_efficiency
    assert rack.downtime_s <= cluster.downtime_s + 1.0
