"""Benchmark: Figure 5 — discharge voltage behaviour, battery vs SC."""

from repro.experiments import format_fig05, run_fig05


def test_fig05_discharge(once):
    curves = once(run_fig05)
    print()
    print(format_fig05(curves))

    # Battery sag grows with demand; SC declines gently and linearly.
    assert (curves["battery/4"].initial_drop_v
            > curves["battery/2"].initial_drop_v
            > curves["battery/1"].initial_drop_v)
    for servers in (1, 2, 4):
        battery_rel = curves[f"battery/{servers}"].initial_drop_v / 25.6
        sc_rel = curves[f"sc/{servers}"].initial_drop_v / 16.0
        assert battery_rel > sc_rel
        assert curves[f"sc/{servers}"].linearity_r2 > 0.95
    # Peukert signature: quadrupling the power costs the battery far more
    # than 4x the runtime; the SC scales almost proportionally.
    battery_ratio = curves["battery/1"].runtime_s / curves[
        "battery/4"].runtime_s
    sc_ratio = curves["sc/1"].runtime_s / curves["sc/4"].runtime_s
    assert battery_ratio > 4.5
    assert sc_ratio < battery_ratio
