"""Benchmark: engine tick-loop throughput with a regression gate.

Unlike the figure benchmarks (which reproduce paper results), this one
guards the engine's *speed*: it times the canonical HEB-D x PR run on
the default six-server prototype configuration, writes the measurement
to ``benchmarks/BENCH_engine.json``, and fails when throughput regresses
more than 30% below the recorded baseline in
``benchmarks/BENCH_baseline.json``.

The baseline is keyed by a commit-agnostic hash of the benchmark
configuration (workload, scheme, durations, cluster and buffer sizing),
so editing the benchmark invalidates the baseline loudly instead of
silently comparing different workloads.  Set ``REPRO_BENCH_SKIP_GATE=1``
to measure without enforcing (e.g. on a loaded machine).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from time import perf_counter

from repro.core import make_policy
from repro.runner.request import ExperimentSetup
from repro.sim import HybridBuffers, Simulation
from repro.units import hours
from repro.workloads import get_workload

BENCH_DIR = Path(__file__).resolve().parent
RESULT_PATH = BENCH_DIR / "BENCH_engine.json"
BASELINE_PATH = BENCH_DIR / "BENCH_baseline.json"

SCHEME = "HEB-D"
WORKLOAD = "PR"
DURATION_H = 2.0
SEED = 1
ROUNDS = 5
#: Fail when ticks/s drops below this fraction of the recorded baseline.
GATE_FRACTION = 0.7

# The expected simulation outcome for this exact configuration; any
# optimization that changes the simulated numbers is a bug, not a win.
EXPECTED_EFFICIENCY = 0.9585311736123626


def _config_hash(setup: ExperimentSetup) -> str:
    """Commit-agnostic fingerprint of everything the measurement depends on."""
    cluster = setup.cluster()
    hybrid = setup.hybrid()
    payload = {
        "scheme": SCHEME,
        "workload": WORKLOAD,
        "duration_h": DURATION_H,
        "seed": SEED,
        "num_servers": cluster.num_servers,
        "utility_budget_w": cluster.utility_budget_w,
        "server_peak_w": cluster.server.peak_power_w,
        "server_idle_w": cluster.server.idle_power_w,
        "total_energy_j": hybrid.total_energy_j,
        "sc_fraction": hybrid.sc_fraction,
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _measure() -> dict:
    setup = ExperimentSetup(duration_h=DURATION_H, seed=SEED)
    cluster = setup.cluster()
    hybrid = setup.hybrid()
    trace = get_workload(WORKLOAD, duration_s=hours(DURATION_H),
                         num_servers=cluster.num_servers,
                         server=cluster.server, seed=SEED)
    policy = make_policy(SCHEME, hybrid, None)

    def one_run():
        buffers = HybridBuffers(hybrid, include_sc=True)
        sim = Simulation(trace, policy, buffers, cluster_config=cluster)
        start = perf_counter()
        result = sim.run()
        return perf_counter() - start, result

    one_run()  # warm-up: imports, numpy caches, branch warm paths
    best_wall = None
    result = None
    for _ in range(ROUNDS):
        wall, result = one_run()
        if best_wall is None or wall < best_wall:
            best_wall = wall

    ticks = trace.num_samples
    return {
        "scheme": SCHEME,
        "workload": WORKLOAD,
        "duration_h": DURATION_H,
        "seed": SEED,
        "rounds": ROUNDS,
        "ticks": ticks,
        "wall_s": round(best_wall, 6),
        "ticks_per_s": round(ticks / best_wall, 1),
        "config_hash": _config_hash(setup),
        "energy_efficiency": result.metrics.energy_efficiency,
    }


def test_engine_throughput():
    measurement = _measure()
    RESULT_PATH.write_text(json.dumps(measurement, indent=2) + "\n")
    print()
    print(f"engine throughput: {measurement['ticks_per_s']:,.0f} ticks/s "
          f"({measurement['ticks']} ticks in {measurement['wall_s']:.3f} s)")

    # Correctness anchor: the timed run must produce the golden numbers.
    assert measurement["energy_efficiency"] == EXPECTED_EFFICIENCY

    if os.environ.get("REPRO_BENCH_SKIP_GATE"):
        return
    if not BASELINE_PATH.exists():
        return
    baseline = json.loads(BASELINE_PATH.read_text())
    assert baseline["config_hash"] == measurement["config_hash"], (
        "benchmark configuration changed; re-record BENCH_baseline.json")
    floor = baseline["ticks_per_s"] * GATE_FRACTION
    assert measurement["ticks_per_s"] >= floor, (
        f"throughput regression: {measurement['ticks_per_s']:,.0f} ticks/s "
        f"is below {GATE_FRACTION:.0%} of the recorded baseline "
        f"{baseline['ticks_per_s']:,.0f} ticks/s")
