"""Benchmark: engine throughput with regression gates.

Unlike the figure benchmarks (which reproduce paper results), this one
guards the engine's *speed* along two axes:

* ``engine`` — single-scenario tick-loop throughput: the canonical
  HEB-D x PR run on the default six-server prototype configuration,
  reported as ticks/s.
* ``batch`` — multi-scenario sweep throughput: a 256-scenario sweep
  (every policy x every workload x six seeds) advanced by one
  ``BatchSimulation`` tick loop, reported as scenarios/s.  The same
  sweep is replayed sequentially through the scalar engine as a
  bit-exactness oracle (every ``RunResult`` must compare equal) and to
  record an honest batched-vs-scalar speedup.

Both measurements land in ``benchmarks/BENCH_engine.json`` and fail
when throughput regresses more than 30% below the matching section of
``benchmarks/BENCH_baseline.json``.

The baselines are keyed by a commit-agnostic hash of the benchmark
configuration (scenarios, durations, cluster and buffer sizing), so
editing the benchmark invalidates the baseline loudly instead of
silently comparing different workloads.  Set ``REPRO_BENCH_SKIP_GATE=1``
to measure without enforcing (e.g. on a loaded machine).
"""

from __future__ import annotations

import itertools
from time import perf_counter

from repro.core import make_policy
from repro.core.policies import POLICY_NAMES
from repro.runner.request import (ExperimentSetup, RunRequest,
                                  build_simulation, execute_request)
from repro.sim import HybridBuffers, Simulation
from repro.sim.batch import BatchSimulation
from repro.units import hours
from repro.workloads import get_workload

from .gate import (
    digest,
    enforce_gate,
    sizing_payload,
    write_section,
)

SCHEME = "HEB-D"
WORKLOAD = "PR"
DURATION_H = 2.0
SEED = 1
ROUNDS = 5

# The expected simulation outcome for this exact configuration; any
# optimization that changes the simulated numbers is a bug, not a win.
EXPECTED_EFFICIENCY = 0.9585311736123626

#: The batched sweep: every policy x every workload x six seeds, capped
#: at 256 scenarios (hundreds of lanes — the regime the batched engine
#: exists for).
WORKLOADS = ("PR", "WC", "DA", "WS", "MS", "DFS", "HB", "TS")
BATCH_SEEDS = range(1, 7)
BATCH_SCENARIOS = 256
BATCH_DURATION_H = 0.5
BATCH_ROUNDS = 3


def _config_hash(setup: ExperimentSetup) -> str:
    """Commit-agnostic fingerprint of everything the measurement depends on."""
    payload = {
        "scheme": SCHEME,
        "workload": WORKLOAD,
        "duration_h": DURATION_H,
        "seed": SEED,
    }
    payload.update(sizing_payload(setup))
    return digest(payload)


def _batch_config_hash(requests) -> str:
    payload = {
        "duration_h": BATCH_DURATION_H,
        "scenarios": [[r.scheme, r.workload, r.setup.seed]
                      for r in requests],
    }
    payload.update(sizing_payload(requests[0].setup))
    return digest(payload)


def _measure() -> dict:
    setup = ExperimentSetup(duration_h=DURATION_H, seed=SEED)
    cluster = setup.cluster()
    hybrid = setup.hybrid()
    trace = get_workload(WORKLOAD, duration_s=hours(DURATION_H),
                         num_servers=cluster.num_servers,
                         server=cluster.server, seed=SEED)
    policy = make_policy(SCHEME, hybrid, None)

    def one_run():
        buffers = HybridBuffers(hybrid, include_sc=True)
        sim = Simulation(trace, policy, buffers, cluster_config=cluster)
        start = perf_counter()
        result = sim.run()
        return perf_counter() - start, result

    one_run()  # warm-up: imports, numpy caches, branch warm paths
    best_wall = None
    result = None
    for _ in range(ROUNDS):
        wall, result = one_run()
        if best_wall is None or wall < best_wall:
            best_wall = wall

    ticks = trace.num_samples
    return {
        "scheme": SCHEME,
        "workload": WORKLOAD,
        "duration_h": DURATION_H,
        "seed": SEED,
        "rounds": ROUNDS,
        "ticks": ticks,
        "wall_s": round(best_wall, 6),
        "ticks_per_s": round(ticks / best_wall, 1),
        "config_hash": _config_hash(setup),
        "energy_efficiency": result.metrics.energy_efficiency,
    }


def _batch_requests():
    combos = itertools.product(BATCH_SEEDS, POLICY_NAMES, WORKLOADS)
    return [
        RunRequest(scheme=scheme, workload=workload,
                   setup=ExperimentSetup(duration_h=BATCH_DURATION_H,
                                         seed=seed))
        for seed, scheme, workload in itertools.islice(
            combos, BATCH_SCENARIOS)
    ]


def _measure_batch() -> tuple[dict, list, list]:
    requests = _batch_requests()

    # Warm-up: policy seeding is memoized per scheme; a one-minute run
    # per scheme pays that cost before either timed pass.
    for scheme in POLICY_NAMES:
        execute_request(RunRequest(
            scheme=scheme, workload="WS",
            setup=ExperimentSetup(duration_h=1.0 / 60.0)))

    best_wall = None
    batched = None
    for _ in range(BATCH_ROUNDS):
        start = perf_counter()
        sims = [build_simulation(request) for request in requests]
        batched = BatchSimulation(sims).run_all()
        wall = perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall

    # One sequential pass through the scalar engine: the bit-exactness
    # oracle for the batched results, and the honest denominator for the
    # recorded speedup (single-shot — repeating a multi-second sweep is
    # not worth the bench time).
    start = perf_counter()
    scalar = [execute_request(request) for request in requests]
    scalar_wall = perf_counter() - start

    measurement = {
        "scenarios": len(requests),
        "duration_h": BATCH_DURATION_H,
        "schemes": list(POLICY_NAMES),
        "workloads": list(WORKLOADS),
        "seeds": list(BATCH_SEEDS),
        "rounds": BATCH_ROUNDS,
        "wall_s": round(best_wall, 6),
        "scenarios_per_s": round(len(requests) / best_wall, 2),
        "scalar_wall_s": round(scalar_wall, 6),
        "speedup_vs_scalar": round(scalar_wall / best_wall, 2),
        "config_hash": _batch_config_hash(requests),
    }
    return measurement, batched, scalar


def test_engine_throughput():
    measurement = _measure()
    write_section("engine", measurement)
    print()
    print(f"engine throughput: {measurement['ticks_per_s']:,.0f} ticks/s "
          f"({measurement['ticks']} ticks in {measurement['wall_s']:.3f} s)")

    # Correctness anchor: the timed run must produce the golden numbers.
    assert measurement["energy_efficiency"] == EXPECTED_EFFICIENCY

    enforce_gate("engine", measurement, "ticks_per_s", "ticks/s")


def test_batched_sweep_throughput():
    measurement, batched, scalar = _measure_batch()
    write_section("batch", measurement)
    print()
    print(f"batched sweep: {measurement['scenarios_per_s']:,.1f} "
          f"scenarios/s ({measurement['scenarios']} scenarios in "
          f"{measurement['wall_s']:.3f} s; "
          f"{measurement['speedup_vs_scalar']:.2f}x vs scalar)")

    # Correctness anchor: the batched sweep must be bit-identical to the
    # scalar oracle, scenario by scenario.
    requests = _batch_requests()
    assert len(batched) == len(scalar) == len(requests)
    for request, got, want in zip(requests, batched, scalar):
        assert got == want, (
            f"{request.scheme} x {request.workload} seed "
            f"{request.setup.seed} diverged from the scalar oracle")

    enforce_gate("batch", measurement, "scenarios_per_s", "scenarios/s")
