"""Benchmark: Figure 4 — storage technology cost comparison."""

from repro.experiments import format_fig04, run_fig04


def test_fig04_cost(once):
    rows = once(run_fig04)
    print()
    print(format_fig04(rows))

    sc = rows["supercapacitor"]
    lead = rows["lead-acid"]
    # Initial: SCs are 10k-30k $/kWh vs 100-300 for lead-acid.
    assert sc.initial_low / lead.initial_high >= 30
    # Amortized: SC lands near 0.4 $/kWh/cycle, above lead-acid and in
    # the NiCd/Li-ion neighbourhood.
    sc_mid = 0.5 * (sc.amortized_low + sc.amortized_high)
    assert 0.2 <= sc_mid <= 0.7
    assert lead.amortized_high < sc_mid
    for name in ("nicd", "li-ion"):
        other_mid = 0.5 * (rows[name].amortized_low
                           + rows[name].amortized_high)
        assert 0.3 <= sc_mid / other_mid <= 3.0
