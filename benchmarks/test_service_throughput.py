"""Benchmark: scenario-service throughput under concurrent load.

Self-hosts a scenario server on a loopback port and drives it with the
:mod:`repro.experiments.loadtest` harness: 100 concurrent clients, a
95%-hot request mix over a warmed spec pool, every submission polled to
a terminal state.  This is the service's acceptance scenario — the
measured phase must sustain the client count with a warm-cache hit rate
above 90% (most submissions answered by the dedup registry or the
content-addressed cache, not fresh simulation).

The measurement lands as the ``service`` section of
``benchmarks/BENCH_engine.json`` (requests/s, p50/p99 latency, hit
rate) and gates against ``BENCH_baseline.json`` exactly like the engine
and batch sections: configuration changes invalidate the baseline via
``config_hash``; throughput below 70% of baseline fails;
``REPRO_BENCH_SKIP_GATE=1`` measures without enforcing.
"""

from __future__ import annotations

from repro.experiments.loadtest import run_loadtest
from repro.runner.request import ExperimentSetup

from .gate import digest, enforce_gate, sizing_payload, write_section

CLIENTS = 100
REQUESTS_PER_CLIENT = 10
HOT_FRACTION = 0.95
UNIQUE_SPECS = 12
DURATION_H = 1.0 / 30.0
SEED = 1
#: The acceptance floor on the measured-phase server-side hit rate.
MIN_WARM_HIT_RATE = 0.90


def _config_hash() -> str:
    payload = {
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "hot_fraction": HOT_FRACTION,
        "unique": UNIQUE_SPECS,
        "duration_h": DURATION_H,
        "seed": SEED,
    }
    payload.update(sizing_payload(ExperimentSetup(duration_h=DURATION_H)))
    return digest(payload)


def test_service_throughput(tmp_path):
    report = run_loadtest(
        clients=CLIENTS, requests_per_client=REQUESTS_PER_CLIENT,
        hot_fraction=HOT_FRACTION, unique=UNIQUE_SPECS,
        duration_h=DURATION_H, seed=SEED,
        cache_dir=str(tmp_path / "bench-cache"))

    measurement = {
        "clients": report.clients,
        "requests": report.requests,
        "hot_fraction": HOT_FRACTION,
        "unique_specs": UNIQUE_SPECS,
        "duration_h": DURATION_H,
        "seed": SEED,
        "wall_s": report.wall_s,
        "requests_per_s": report.requests_per_s,
        "p50_ms": report.p50_ms,
        "p99_ms": report.p99_ms,
        "warm_hit_rate": report.warm_hit_rate,
        "executed": report.executed,
        "rejected_429": report.rejected_429,
        "config_hash": _config_hash(),
    }
    write_section("service", measurement)
    print()
    print(f"service throughput: {report.requests_per_s:,.1f} requests/s "
          f"({report.clients} clients, {report.requests} requests in "
          f"{report.wall_s:.3f} s; p50 {report.p50_ms:.1f} ms, "
          f"p99 {report.p99_ms:.1f} ms; "
          f"warm hit rate {report.warm_hit_rate:.1%})")

    # Acceptance anchors: the full client count completed every request,
    # nothing failed, and the warm-cache economics held up.
    assert report.requests == CLIENTS * REQUESTS_PER_CLIENT
    assert report.failed == 0
    assert report.warm_hit_rate > MIN_WARM_HIT_RATE

    enforce_gate("service", measurement, "requests_per_s", "requests/s")
