"""Benchmark: Figure 15 — cost breakdown, ROI, peak-shaving revenue."""

from repro.experiments import format_fig15, run_fig15


def test_fig15_tco(once):
    results = once(run_fig15)
    print()
    print(format_fig15(results))

    # (a) ESDs dominate the node cost (~55%); node < 16% of server cost.
    fractions = results.breakdown.fractions()
    assert abs(fractions["esd"] - 0.55) < 0.05
    assert results.breakdown.total < 0.16 * results.server_cost

    # (b) Positive ROI across most operating regions.
    positive = sum(1 for p in results.roi_points if p.worthwhile)
    assert positive / len(results.roi_points) > 0.5

    # (c) Break-even ordering and the >1.9x revenue headline.
    table = results.peak_shaving
    assert (table["HEB"]["break_even_year"]
            < table["BaOnly"]["break_even_year"]
            < table["SCFirst"]["break_even_year"]
            < table["BaFirst"]["break_even_year"])
    assert abs(table["HEB"]["break_even_year"] - 3.7) < 0.7
    assert abs(table["BaOnly"]["break_even_year"] - 4.2) < 0.7
    assert table["HEB"]["net_vs_baonly"] >= 1.9
    assert table["BaFirst"]["final_net"] < table["BaOnly"]["final_net"]
