"""Benchmark: Figure 13 — SC:battery capacity ratio sweep."""

from repro.experiments import format_fig13, run_fig13
from repro.experiments.fig13_ratio import normalize_to_default


def test_fig13_ratio(once):
    points = once(run_fig13, duration_h=3.0, seed=1)
    print()
    print(format_fig13(points))

    normalized = normalize_to_default(points)
    low, high = normalized[0.1], normalized[0.5]

    # More SC share improves every metric (downtime falls).
    assert high["energy_efficiency"] > low["energy_efficiency"]
    assert high["lifetime"] > low["lifetime"]
    assert high["reu"] >= low["reu"] * 0.98
    assert high["downtime"] <= low["downtime"]

    # Battery lifetime is the most ratio-sensitive metric (paper: "the
    # battery lifetime has the most significant improvement"), and the
    # EE/downtime improvement flattens out toward high SC shares.
    lifetime_span = high["lifetime"] / max(low["lifetime"], 1e-9)
    ee_span = (high["energy_efficiency"]
               / max(low["energy_efficiency"], 1e-9))
    reu_span = high["reu"] / max(low["reu"], 1e-9)
    assert lifetime_span > ee_span
    assert lifetime_span > reu_span
    ee_first_step = (normalized[0.2]["energy_efficiency"]
                     - normalized[0.1]["energy_efficiency"])
    ee_last_step = (normalized[0.5]["energy_efficiency"]
                    - normalized[0.4]["energy_efficiency"])
    assert ee_last_step <= ee_first_step + 1e-9
