"""Ablation: prediction quality (Holt-Winters vs persistence).

HEB-F *is* the built-in persistence ablation; this bench additionally
sweeps the Holt-Winters smoothing constants to show the framework is not
hypersensitive to them (any reasonable setting beats persistence on a
seasonal series).
"""

from repro.config import PredictorConfig
from repro.core import HoltWintersPredictor
from repro.units import hours
from repro.workloads import get_workload

ALPHAS = (0.2, 0.45, 0.7)


def run_sweep():
    # Build the per-slot peak series of a real workload.
    trace = get_workload("PR", duration_s=hours(8), seed=1).aggregate()
    peaks = [slot.stats().peak_w for slot in trace.iter_slots(600.0)]
    valleys = [slot.stats().valley_w for slot in trace.iter_slots(600.0)]

    persistence_errors = [abs(peaks[i] - peaks[i - 1])
                          for i in range(1, len(peaks))]
    persistence_mae = sum(persistence_errors) / len(persistence_errors)

    rows = {"persistence (HEB-F)": {"mae_w": persistence_mae}}
    for alpha in ALPHAS:
        predictor = HoltWintersPredictor(PredictorConfig(alpha=alpha))
        errors = []
        for peak, valley in zip(peaks, valleys):
            if predictor.observations:
                errors.append(abs(predictor.predict().peak_w - peak))
            predictor.observe_slot(peak, valley)
        rows[f"holt-winters a={alpha}"] = {
            "mae_w": sum(errors) / len(errors)}
    return rows


def test_ablation_predictor(once):
    rows = once(run_sweep)
    print()
    print("Ablation — slot-peak prediction MAE (PR workload, 10-min slots)")
    for name, row in rows.items():
        print(f"  {name:>22s}: {row['mae_w']:.1f} W")

    persistence = rows["persistence (HEB-F)"]["mae_w"]
    best_hw = min(row["mae_w"] for name, row in rows.items()
                  if name.startswith("holt"))
    # Holt-Winters must beat naive persistence on this bursty series —
    # the error reduction HEB-D's advantage over HEB-F rests on.
    assert best_hw < persistence
    # And no reasonable alpha is catastrophically worse than the best.
    worst_hw = max(row["mae_w"] for name, row in rows.items()
                   if name.startswith("holt"))
    assert worst_hw < 2.5 * best_hw
