"""Ablation: the small/large peak classification gates (Section 5.2).

The classifier has two gates — predicted deficit height and expected
duration — and an SC-coverage heuristic behind them.  We sweep both gates
together from "everything is large" to "everything is small" and check
the default sits in the healthy region.  The SC-coverage heuristic makes
the scheme robust to mild misclassification (a nominally-large peak whose
energy fits the SC pool is still served SC-first), so only the extreme
settings move the numbers.
"""

import dataclasses

from repro.config import ControllerConfig, prototype_buffer, \
    prototype_cluster
from repro.core import make_policy
from repro.sim import HybridBuffers, Simulation
from repro.units import hours, minutes
from repro.workloads import get_workload

# (small_peak_power_w, small_peak_duration_s) gate pairs.
GATES = (
    ("all-large", 1.0, 1.0),
    ("default", 60.0, minutes(5)),
    ("all-small", 500.0, minutes(60)),
)


def run_sweep():
    hybrid = prototype_buffer()
    rows = {}
    for label, power_gate, duration_gate in GATES:
        controller = ControllerConfig(small_peak_power_w=power_gate,
                                      small_peak_duration_s=duration_gate)
        row = {}
        for workload, budget in (("TS", 260.0), ("DA", 242.0)):
            cluster = dataclasses.replace(prototype_cluster(),
                                          utility_budget_w=budget)
            trace = get_workload(workload, duration_s=hours(4), seed=1)
            policy = make_policy("HEB-D", hybrid=hybrid,
                                 controller=controller)
            buffers = HybridBuffers(hybrid)
            result = Simulation(trace, policy, buffers,
                                cluster_config=cluster,
                                controller_config=controller).run()
            row[workload] = {
                "energy_efficiency": result.metrics.energy_efficiency,
                "downtime_s": result.metrics.server_downtime_s,
                "small_slots": sum(
                    1 for s in result.slots
                    if s.note.startswith("small-peak")),
            }
        rows[label] = row
    return rows


def test_ablation_classification_gates(once):
    rows = once(run_sweep)
    print()
    print("Ablation — small/large classification gates (HEB-D)")
    for label, row in rows.items():
        print(f"  {label:>9s}  "
              f"TS: EE={row['TS']['energy_efficiency']:.3f} "
              f"small={row['TS']['small_slots']}  "
              f"DA: EE={row['DA']['energy_efficiency']:.3f} "
              f"down={row['DA']['downtime_s']:.0f}s")

    # Gate extremes flip the classification as intended.
    assert rows["all-small"]["TS"]["small_slots"] > rows["all-large"][
        "TS"]["small_slots"]
    # The default is never meaningfully worse than either extreme.
    for workload in ("TS", "DA"):
        best = max(r[workload]["energy_efficiency"] for r in rows.values())
        assert rows["default"][workload]["energy_efficiency"] >= best - 0.03
    # Forcing everything small must not beat the default on DA downtime
    # (stranding the SC pool on long peaks is the failure the large-peak
    # path exists to avoid).
    assert (rows["default"]["DA"]["downtime_s"]
            <= rows["all-small"]["DA"]["downtime_s"] + 1.0)
