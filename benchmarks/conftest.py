"""Benchmark harness configuration.

Every benchmark reproduces one paper table/figure: it runs the experiment
once (rounds=1 — these are reproduction harnesses, not micro-benchmarks),
asserts the paper's qualitative shape, and prints the paper-style rows so
``pytest benchmarks/ --benchmark-only -s`` regenerates the evaluation.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
