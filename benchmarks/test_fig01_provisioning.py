"""Benchmark: Figure 1(a) — provisioning levels vs MPPU."""

from repro.experiments import format_fig01, run_fig01


def test_fig01_provisioning(once):
    levels = once(run_fig01, duration_days=7.0, seed=1)
    print()
    print(format_fig01(levels))

    mppus = [level.mppu for level in levels]
    assert mppus == sorted(mppus), "MPPU must rise as provisioning drops"
    assert levels[0].mppu < 0.05, "full provisioning is rarely reached"
    assert levels[-1].mppu > 0.2, "40% provisioning is heavily utilized"
    assert levels[-1].capped_energy_fraction > levels[0].capped_energy_fraction
