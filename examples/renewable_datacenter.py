#!/usr/bin/env python
"""Scenario: a solar-powered datacenter maximizing renewable utilization.

The second motivating deployment (Section 2.2): the cluster runs off a
photovoltaic feed whose cloud transients create deep valleys and sudden
deficits.  Batteries cannot absorb the valleys fast enough (charge-current
ceiling) nor ride the deficits gracefully; the hybrid buffer does both.

This example compares the schemes' renewable energy utilization (REU),
surplus capture, and downtime over a cloudy solar day, then shows the
sensitivity to cloud depth.

Run with::

    python examples/renewable_datacenter.py
"""

from repro import POLICY_NAMES, make_policy, prototype_buffer, \
    prototype_cluster
from repro.sim import HybridBuffers, Simulation
from repro.units import hours, joules_to_wh
from repro.workloads import generate_solar_trace, get_workload
from repro.workloads.solar import SolarConfig


def run_solar(scheme: str, solar_config: SolarConfig,
              duration_h: float = 4.0, seed: int = 9):
    cluster = prototype_cluster()
    hybrid = prototype_buffer()
    trace = get_workload("WS", duration_s=hours(duration_h), seed=seed)
    supply = generate_solar_trace(hours(duration_h), config=solar_config,
                                  seed=seed, start_time_s=hours(9.0))
    policy = make_policy(scheme, hybrid=hybrid)
    buffers = HybridBuffers(hybrid, include_sc=scheme != "BaOnly")
    simulation = Simulation(trace, policy, buffers, cluster_config=cluster,
                            supply=supply, renewable=True)
    return simulation.run()


def comparison_section(solar_config: SolarConfig) -> None:
    print("=== Scheme comparison on a cloudy solar day ===")
    print(f"array: {solar_config.rated_power_w:.0f} W rated, clouds cut "
          f"output to {solar_config.cloud_attenuation:.0%}")
    print(f"{'scheme':>8s} {'REU':>7s} {'capture':>8s} {'stored':>8s} "
          f"{'downtime':>9s}")
    for scheme in POLICY_NAMES:
        result = run_solar(scheme, solar_config)
        metrics = result.metrics
        print(f"{scheme:>8s} {metrics.reu:>7.3f} "
              f"{metrics.renewable_capture:>8.3f} "
              f"{joules_to_wh(metrics.buffer_energy_in_j):>7.1f}Wh "
              f"{metrics.server_downtime_s:>8.0f}s")
    print("-> REU counts all generation put to use; 'capture' isolates "
          "the valley surplus the buffers absorbed —")
    print("   the quantity the battery's charge-current ceiling throttles "
          "(Section 2.2).")


def sensitivity_section() -> None:
    print()
    print("=== Sensitivity to cloud depth (HEB-D vs BaOnly) ===")
    print(f"{'cloud output':>13s} {'BaOnly REU':>11s} {'HEB-D REU':>10s} "
          f"{'gap':>6s}")
    for attenuation in (0.4, 0.25, 0.1):
        config = SolarConfig(rated_power_w=520.0,
                             cloud_attenuation=attenuation,
                             mean_cloud_s=700.0, mean_clear_s=900.0)
        battery_only = run_solar("BaOnly", config)
        heb = run_solar("HEB-D", config)
        gap = heb.metrics.reu / battery_only.metrics.reu
        print(f"{attenuation:>12.0%} {battery_only.metrics.reu:>11.3f} "
              f"{heb.metrics.reu:>10.3f} {gap:>6.2f}x")
    print("-> the deeper the valleys, the more the hybrid's fast charging "
          "pays.")


def main() -> None:
    solar_config = SolarConfig(rated_power_w=520.0, cloud_attenuation=0.15,
                               mean_cloud_s=700.0, mean_clear_s=900.0)
    comparison_section(solar_config)
    sensitivity_section()


if __name__ == "__main__":
    main()
