#!/usr/bin/env python
"""Scenario: right-sizing a hybrid buffer before buying hardware.

The Section 7.5 question: for a given workload mix, how much SC should a
deployment buy, and how much total capacity?  This example walks the two
planning axes exactly as the paper does — the SC:battery ratio at fixed
total capacity (Figure 13) and total capacity growth via DoD (Figure 14)
— and then prices the options (Figure 15c economics).

Run with::

    python examples/capacity_planning.py
"""

from repro.experiments import (
    format_fig13,
    format_fig14,
    run_fig13,
    run_fig14,
)
from repro.tco import (
    PeakShavingScenario,
    break_even_year,
    peak_shaving_revenue,
)
from repro.tco.peak_shaving import DEFAULT_SCHEMES, SchemeEconomics, capex


def ratio_section() -> None:
    print("=== Axis 1: how much of the capacity should be SC? ===")
    points = run_fig13(duration_h=2.0, workloads=["DA"])
    print(format_fig13(points))
    print("-> battery lifetime responds most; EE and downtime flatten "
          "past ~3:7, which is why the paper defaults there.")


def capacity_section() -> None:
    print()
    print("=== Axis 2: how much total capacity (usable via DoD)? ===")
    points = run_fig14(duration_h=2.0, workloads=["DA"])
    print(format_fig14(points))
    print("-> resiliency keeps improving, but with diminishing returns: "
          "the right-sizing argument of Section 7.5.")


def pricing_section() -> None:
    print()
    print("=== Pricing the chosen design (Figure 15c economics) ===")
    scenario = PeakShavingScenario()
    for name in ("BaOnly", "HEB"):
        scheme = DEFAULT_SCHEMES[name]
        series = peak_shaving_revenue(scheme, scenario)
        breakeven = break_even_year(series)
        print(f"{name:>7s}: capex ${capex(scheme, scenario):>7,.0f}, "
              f"break-even {breakeven:.2f} y, "
              f"8-year net ${series.final_net:,.0f}")

    print()
    print("A bigger SC would capture more valleys — check the marginal "
          "economics:")
    for sc_kwh in (1.0, 1.35, 2.0, 3.0):
        scheme = SchemeEconomics(
            name=f"HEB/{sc_kwh}kWh", ee_gain=1.397,
            availability_gain=1.21, battery_kwh=14.0, sc_kwh=sc_kwh,
            battery_life_years=12.0)
        series = peak_shaving_revenue(scheme, scenario)
        breakeven = break_even_year(series)
        breakeven_text = (f"{breakeven:.2f} y" if breakeven is not None
                          else "never")
        print(f"  SC={sc_kwh:>4.2f} kWh: capex "
              f"${capex(scheme, scenario):>7,.0f}, break-even "
              f"{breakeven_text}, 8-year net ${series.final_net:,.0f}")
    print("-> at 10k $/kWh, SC capacity beyond the power-buffering need "
          "erodes the return.")


def main() -> None:
    ratio_section()
    capacity_section()
    pricing_section()


if __name__ == "__main__":
    main()
