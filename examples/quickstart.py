#!/usr/bin/env python
"""Quickstart: run one HEB simulation and read the headline metrics.

This is the smallest end-to-end use of the library: generate a Table 1
workload, build the prototype's hybrid buffer (3:7 SC:battery, 150 Wh),
run the full HEB-D power-management framework against a 260 W utility
budget for two simulated hours, and print what happened.

Run with::

    python examples/quickstart.py
"""

from repro import POLICY_NAMES, quick_run
from repro.units import joules_to_wh


def main() -> None:
    print("=== One run: HEB-D on the PageRank workload (2 h) ===")
    result = quick_run("HEB-D", "PR", hours=2.0, seed=7)
    metrics = result.metrics
    print(f"energy efficiency : {metrics.energy_efficiency:.3f}")
    print(f"server downtime   : {metrics.server_downtime_s:.0f} s")
    print(f"battery lifetime  : {metrics.battery_lifetime_years:.2f} years "
          f"({metrics.battery_equivalent_cycles:.2f} equivalent cycles)")
    print(f"buffer energy out : "
          f"{joules_to_wh(metrics.buffer_energy_out_j):.1f} Wh")
    print(f"buffer energy in  : "
          f"{joules_to_wh(metrics.buffer_energy_in_j):.1f} Wh")
    print(f"relay actuations  : {metrics.relay_switches}")

    print()
    print("=== Per-slot planning log (first six control slots) ===")
    for record in result.slots[:6]:
        print(f"slot {record.index:>2d}: {record.note:<34s} "
              f"peak={record.peak_w:5.0f} W "
              f"SC left={joules_to_wh(record.sc_usable_end_j):5.1f} Wh "
              f"BA left={joules_to_wh(record.battery_usable_end_j):5.1f} Wh")

    print()
    print("=== All six Table 2 schemes on the same workload ===")
    print(f"{'scheme':>8s} {'EE':>7s} {'downtime':>9s} {'lifetime':>9s}")
    for scheme in POLICY_NAMES:
        run = quick_run(scheme, "PR", hours=2.0, seed=7)
        print(f"{scheme:>8s} {run.metrics.energy_efficiency:>7.3f} "
              f"{run.metrics.server_downtime_s:>8.0f}s "
              f"{run.metrics.battery_lifetime_years:>8.2f}y")


if __name__ == "__main__":
    main()
