#!/usr/bin/env python
"""Scenario: size a buffer for a recorded workload and export a report.

Workflow a deployment team would actually run:

1. record (here: generate and persist) the cluster's demand trace;
2. replay it through the simulator and ask the right-sizing advisor for
   the smallest hybrid buffer meeting a downtime budget;
3. validate the recommendation across all six schemes and export the
   comparison as CSV + Markdown.

Run with::

    python examples/rightsizing_and_reporting.py
"""

import dataclasses
import tempfile
from pathlib import Path

from repro import POLICY_NAMES, make_policy, prototype_buffer, \
    prototype_cluster
from repro.core import right_size_buffer
from repro.sim import (
    HybridBuffers,
    Simulation,
    compare_schemes,
    comparison_to_markdown,
    results_to_csv,
)
from repro.units import hours
from repro.workloads import (
    load_trace_npz,
    mixed_workload,
    save_trace_npz,
)


def record_trace(workdir: Path):
    """Step 1: 'record' a mixed-tenant demand trace and persist it."""
    print("=== 1. Recording the cluster's demand trace ===")
    trace = mixed_workload(["MS", "DA", "WS", "TS", "HB", "DFS"],
                           duration_s=hours(3), seed=13)
    path = workdir / "cluster_demand.npz"
    save_trace_npz(trace, path)
    stats = trace.aggregate().stats()
    print(f"recorded {trace.num_servers} servers x "
          f"{trace.num_samples} s to {path.name}")
    print(f"aggregate: mean {stats.mean_w:.0f} W, peak {stats.peak_w:.0f} W"
          f" (budget 260 W)")
    return path


def size_buffer(path: Path):
    """Step 2: replay the recording and right-size the buffer."""
    print()
    print("=== 2. Right-sizing the hybrid buffer ===")
    trace = load_trace_npz(path)
    cluster = prototype_cluster()
    sizing = right_size_buffer(trace, cluster, downtime_target_s=0.0,
                               min_wh=30.0, max_wh=400.0,
                               tolerance_wh=25.0)
    if not sizing.feasible:
        print("no feasible capacity in the bracket!")
        return trace, 150.0
    print(f"smallest zero-downtime buffer: "
          f"~{sizing.total_energy_wh:.0f} Wh "
          f"(SC share {sizing.sc_fraction:.0%})")
    print(f"estimated CAP-EX: ${sizing.capex_dollars:,.0f} "
          f"({sizing.evaluations} simulations)")
    return trace, sizing.total_energy_wh


def validate_and_export(trace, total_wh: float, workdir: Path) -> None:
    """Step 3: validate across schemes and export the report."""
    print()
    print("=== 3. Validating the sizing across all schemes ===")
    hybrid = prototype_buffer(total_energy_wh=total_wh)
    results = []
    for scheme in POLICY_NAMES:
        policy = make_policy(scheme, hybrid=hybrid)
        buffers = HybridBuffers(hybrid, include_sc=scheme != "BaOnly")
        results.append(Simulation(trace, policy, buffers,
                                  cluster_config=prototype_cluster()).run())

    csv_path = workdir / "validation.csv"
    results_to_csv(results, csv_path)
    print(f"wrote per-run metrics to {csv_path.name}")
    print()
    print(comparison_to_markdown(compare_schemes(results),
                                 title=f"{total_wh:.0f} Wh buffer"))


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        path = record_trace(workdir)
        trace, total_wh = size_buffer(path)
        validate_and_export(trace, total_wh, workdir)


if __name__ == "__main__":
    main()
