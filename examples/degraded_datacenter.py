#!/usr/bin/env python
"""Scenario: a bad week in the machine room.

The paper's availability story (Section 7.2) is told under clean power.
This example stresses it with the fault-injection subsystem
(``repro.faults``):

1. replays one composite storm — a deep brownout, battery aging, then a
   hard outage — against BaOnly and HEB-D, and decomposes the resulting
   downtime per fault class;
2. shows the controller's graceful degradation: the plan a HEB policy
   produces when its battery is unreachable or its telemetry is noise;
3. sweeps the storm's intensity from 0 to 1 and compares how fast each
   architecture's downtime grows (the ``python -m repro resilience``
   experiment in miniature).

Run with::

    python examples/degraded_datacenter.py
"""

import dataclasses

from repro import make_policy, prototype_buffer, quick_run
from repro.core.policies.base import SlotObservation
from repro.experiments import format_resilience, run_resilience
from repro.units import joules_to_wh
from repro.faults import (
    BatteryCellAging,
    FaultSchedule,
    UtilityBrownout,
    UtilityOutage,
)


def storm_section() -> None:
    print("=== 1. One storm, two architectures ===")
    storm = FaultSchedule.of(
        UtilityBrownout(start_s=600.0, duration_s=1200.0,
                        budget_fraction=0.15),
        BatteryCellAging(start_s=300.0, fade_fraction=0.3,
                         resistance_growth=2.0),
        UtilityOutage(start_s=2700.0, duration_s=600.0))
    print("storm:", ", ".join(
        f"{e['kind']}@{e['start_s']:.0f}s" for e in storm.to_dict()["events"]))
    for scheme in ("BaOnly", "HEB-D"):
        metrics = quick_run(scheme, "PR", hours=1.0, seed=1,
                            faults=storm).metrics
        print(f"{scheme:>7s}: downtime {metrics.server_downtime_s:7.1f} s"
              f" | unserved {joules_to_wh(metrics.unserved_energy_j):.1f} Wh"
              f" | EE {metrics.energy_efficiency:.3f}")
        for kind, seconds in (metrics.fault_downtime_s or {}).items():
            print(f"         {kind:<16s} -> {seconds:7.1f} s")
    print("-> the hybrid rides through what drains a battery-only UPS,")
    print("   and the attribution names the faults that still hurt.")


def degradation_section() -> None:
    print()
    print("=== 2. What the controller plans when hardware goes away ===")
    policy = make_policy("HEB-D", hybrid=prototype_buffer())
    clean = SlotObservation(
        index=3, start_s=1800.0, budget_w=260.0,
        sc_usable_j=120000.0, battery_usable_j=300000.0,
        sc_nominal_j=160000.0, battery_nominal_j=380000.0,
        last_peak_w=340.0, last_valley_w=200.0,
        last_peak_duration_s=45.0, num_servers=6)
    cases = {
        "clean": clean,
        "battery open-circuit": dataclasses.replace(
            clean, battery_available=False),
        "supercap unreachable": dataclasses.replace(
            clean, sc_available=False),
        "telemetry corrupted": dataclasses.replace(
            clean, predictor_corrupted=True),
    }
    for label, observation in cases.items():
        plan = policy.begin_slot(observation)
        print(f"{label:>21s}: r_lambda={plan.r_lambda:.2f}"
              f" sc={plan.use_sc} battery={plan.use_battery}"
              f" | {plan.note}")
    print("-> degraded slots also gate learning: a noisy window can't")
    print("   poison the predictor or the PAT.")


def sweep_section() -> None:
    print()
    print("=== 3. Downtime vs storm intensity (resilience sweep) ===")
    # One simulated hour per (scheme, intensity) cell; below ~an hour
    # the buffers ride out even the full storm and every cell is 0.
    print(format_resilience(run_resilience(duration_h=1.0, seed=1)))


def main() -> None:
    storm_section()
    degradation_section()
    sweep_section()


if __name__ == "__main__":
    main()
