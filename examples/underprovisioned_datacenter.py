#!/usr/bin/env python
"""Scenario: an under-provisioned datacenter riding out peak mismatches.

Motivating workload from the paper's introduction: infrastructure is
deliberately provisioned *below* peak demand (saving $10-20 of CAP-EX per
watt), and the hybrid buffer absorbs the resulting mismatches.  This
example:

1. quantifies how much provisioning headroom the buffer replaces (the
   Figure 1a analysis on a synthetic cluster trace);
2. subjects the prototype cluster to a progressively tighter budget and
   shows where each scheme starts shedding load;
3. prices the avoided CAP-EX against the buffer (the Figure 15b ROI).

Run with::

    python examples/underprovisioned_datacenter.py
"""

import dataclasses

from repro import make_policy, prototype_buffer, prototype_cluster
from repro.power import provisioning_analysis
from repro.sim import HybridBuffers, Simulation
from repro.tco import roi
from repro.units import days, hours
from repro.workloads import generate_google_like_trace, get_workload


def provisioning_section() -> None:
    print("=== 1. Why under-provision at all (Figure 1a) ===")
    trace = generate_google_like_trace(days(5), nameplate_w=1000.0, seed=3)
    for level in provisioning_analysis(trace):
        print(f"{level.name}: budget {level.budget_fraction:>4.0%} of peak"
              f" | reached {level.mppu:6.2%} of the time"
              f" | {level.capped_energy_fraction:6.2%} of demand energy"
              f" above budget | CAP-EX ${level.capital_cost_low:,.0f}-"
              f"${level.capital_cost_high:,.0f}")
    print("-> full provisioning pays for headroom it almost never uses.")


def stress_section() -> None:
    print()
    print("=== 2. Tightening the budget on the prototype cluster ===")
    hybrid = prototype_buffer()
    trace = get_workload("MS", duration_s=hours(4), seed=5)
    print(f"{'budget':>7s} {'scheme':>8s} {'EE':>7s} {'downtime':>9s} "
          f"{'unserved':>9s}")
    for budget in (260.0, 250.0, 240.0):
        for scheme in ("BaOnly", "HEB-D"):
            cluster = dataclasses.replace(prototype_cluster(),
                                          utility_budget_w=budget)
            policy = make_policy(scheme, hybrid=hybrid)
            buffers = HybridBuffers(hybrid, include_sc=scheme != "BaOnly")
            result = Simulation(trace, policy, buffers,
                                cluster_config=cluster).run()
            print(f"{budget:>6.0f}W {scheme:>8s} "
                  f"{result.metrics.energy_efficiency:>7.3f} "
                  f"{result.metrics.server_downtime_s:>8.0f}s "
                  f"{result.metrics.unserved_energy_j / 3600:>8.1f}Wh")
    print("-> the hybrid buffer holds the same budget with a fraction of "
          "the downtime.")


def roi_section() -> None:
    print()
    print("=== 3. Is the buffer cheaper than more infrastructure? ===")
    for capex in (6.0, 12.0, 20.0):
        for duration_h in (0.5, 1.0, 2.0):
            value = roi(capex, duration_h)
            verdict = "worth it" if value > 0 else "build wires instead"
            print(f"C_cap ${capex:>4.1f}/W, {duration_h:>3.1f} h peaks: "
                  f"ROI {value:+6.2f}  ({verdict})")


def main() -> None:
    provisioning_section()
    stress_section()
    roi_section()


if __name__ == "__main__":
    main()
