"""Tests for the experiment-runner scaffolding (fast configurations)."""

import pytest

from repro.experiments import (
    ExperimentSetup,
    format_fig01,
    format_fig04,
    format_fig06,
    format_fig07,
    format_fig15,
    format_table,
    run_fig01,
    run_fig04,
    run_fig06,
    run_fig07,
    run_fig15,
    run_renewable,
    run_scheme,
    run_all_schemes,
)
from repro.experiments.fig06_assignment import optimal_assignment


class TestSetup:
    def test_defaults(self):
        setup = ExperimentSetup()
        assert setup.cluster().utility_budget_w == 260.0
        assert setup.hybrid().sc_fraction == 0.3

    def test_budget_override(self):
        setup = ExperimentSetup(budget_w=240.0)
        assert setup.cluster().utility_budget_w == 240.0

    def test_dod_passthrough(self):
        setup = ExperimentSetup(battery_dod=0.5, sc_dod=0.6)
        assert setup.battery_dod == 0.5
        assert setup.sc_dod == 0.6


class TestRunners:
    def test_run_scheme_returns_result(self):
        result = run_scheme("SCFirst", "TS",
                            ExperimentSetup(duration_h=0.5))
        assert result.scheme == "SCFirst"
        assert result.workload == "TS"
        assert 0.0 < result.metrics.energy_efficiency <= 1.0

    def test_run_all_schemes_grid(self):
        results = run_all_schemes(
            workloads=["TS"], schemes=["BaOnly", "SCFirst"],
            setup=ExperimentSetup(duration_h=0.5))
        assert len(results) == 2
        assert {r.scheme for r in results} == {"BaOnly", "SCFirst"}

    def test_run_renewable_sets_reu(self):
        result = run_renewable("SCFirst", "TS",
                               ExperimentSetup(duration_h=0.5))
        assert result.metrics.reu is not None
        assert result.metrics.renewable_capture is not None

    def test_baonly_gets_no_sc_pool(self):
        result = run_scheme("BaOnly", "TS",
                            ExperimentSetup(duration_h=0.5))
        # BaOnly's lifetime reflects the full-capacity battery; the run
        # must work with no SC pool present.
        assert result.metrics.battery_lifetime_years > 0


class TestFormatters:
    def test_format_table_renders_rows(self):
        text = format_table({"A": {"x": 1.0}, "B": {"x": 2.0, "y": None}},
                            columns=["x", "y"], title="T")
        assert "T" in text
        assert "A" in text and "B" in text
        assert "-" in text  # the None cell

    def test_fig01_format(self):
        text = format_fig01(run_fig01(duration_days=1.0))
        assert "P1" in text and "P4" in text

    def test_fig04_format(self):
        text = format_fig04(run_fig04())
        assert "supercapacitor" in text

    def test_fig06_format_marks_optimum(self):
        points = run_fig06(dt=20.0)
        text = format_fig06(points)
        assert "<- optimum" in text
        assert optimal_assignment(points).runtime_s > 0

    def test_fig07_format(self):
        architectures = run_fig07()
        # Use a fast fig08 substitute: format accepts any mapping of rows.
        from repro.experiments.fig07_architecture import run_fig08
        deployments = run_fig08(duration_h=0.5)
        text = format_fig07(architectures, deployments)
        assert "centralized" in text
        assert "rack-level" in text

    def test_fig15_format(self):
        text = format_fig15(run_fig15())
        assert "break-even" in text
        assert "esd" in text
