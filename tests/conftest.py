"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings as hypothesis_settings

from repro.config import (
    BatteryConfig,
    ClusterConfig,
    ControllerConfig,
    HybridBufferConfig,
    ServerConfig,
    SupercapConfig,
    prototype_battery,
    prototype_buffer,
    prototype_cluster,
    prototype_supercap,
)
from repro.storage import LeadAcidBattery, Supercapacitor
from repro.units import hours, minutes
from repro.workloads import get_workload

# Property tests must not flake in CI: the "ci" profile derandomizes
# hypothesis (examples are derived from each test's code, so every run
# of the same tree sees the same storms).  Locally the "dev" profile
# keeps random exploration but drops the wall-clock deadline — chaos
# examples each run a full simulation and easily exceed the default
# 200 ms on a loaded machine.  Select with HYPOTHESIS_PROFILE=ci.
hypothesis_settings.register_profile("ci", derandomize=True,
                                     deadline=None)
hypothesis_settings.register_profile("dev", deadline=None)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(autouse=True)
def isolated_result_cache(tmp_path, monkeypatch):
    """Point the runner's default cache at a per-test directory so no
    test (CLI tests included) ever writes to the user's real cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture
def battery_config() -> BatteryConfig:
    return prototype_battery()


@pytest.fixture
def supercap_config() -> SupercapConfig:
    return prototype_supercap()


@pytest.fixture
def battery(battery_config) -> LeadAcidBattery:
    return LeadAcidBattery(battery_config)


@pytest.fixture
def supercap(supercap_config) -> Supercapacitor:
    return Supercapacitor(supercap_config)


@pytest.fixture
def cluster_config() -> ClusterConfig:
    return prototype_cluster()


@pytest.fixture
def hybrid_config() -> HybridBufferConfig:
    return prototype_buffer()


@pytest.fixture
def controller_config() -> ControllerConfig:
    return ControllerConfig()


@pytest.fixture
def server_config() -> ServerConfig:
    return ServerConfig()


@pytest.fixture(scope="session")
def short_large_trace():
    """One hour of a large-peak workload (session-cached for speed)."""
    return get_workload("PR", duration_s=hours(1), seed=11)


@pytest.fixture(scope="session")
def short_small_trace():
    """One hour of a small-peak workload (session-cached for speed)."""
    return get_workload("TS", duration_s=hours(1), seed=11)


@pytest.fixture(scope="session")
def tiny_trace():
    """Twenty minutes of workload for fast engine tests."""
    return get_workload("WS", duration_s=minutes(20), seed=11)
