"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import (
    BatteryConfig,
    ControllerConfig,
    PATConfig,
    PredictorConfig,
    SupercapConfig,
)
from repro.core import (
    HoltWintersPredictor,
    LoadScheduler,
    PowerAllocationTable,
    analyze_slot,
    classify_peak,
)
from repro.server import PowerSource
from repro.storage import LeadAcidBattery, Supercapacitor
from repro.units import wh_to_joules
from repro.workloads import PowerTrace


demands_strategy = st.lists(
    st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=12)


class TestSchedulerProperties:
    @given(demands_strategy,
           st.floats(min_value=0.0, max_value=600.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=120, deadline=None)
    def test_accounting_always_balances(self, demands, budget, r_lambda):
        """utility + sc + battery always equals total active demand."""
        scheduler = LoadScheduler()
        available = [True] * len(demands)
        assignment = scheduler.assign(demands, available, budget, r_lambda)
        total = sum(demands)
        accounted = (assignment.utility_draw_w + assignment.sc_draw_w
                     + assignment.battery_draw_w)
        assert abs(accounted - total) < 1e-6

    @given(demands_strategy,
           st.floats(min_value=0.0, max_value=600.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=120, deadline=None)
    def test_utility_within_budget_when_pools_exist(self, demands, budget,
                                                    r_lambda):
        scheduler = LoadScheduler()
        available = [True] * len(demands)
        assignment = scheduler.assign(demands, available, budget, r_lambda)
        # Either we fit the budget, or every server is buffered already.
        active = sum(1 for d in demands)
        assert (assignment.utility_draw_w <= budget + 1e-9
                or assignment.n_buffered == active)

    @given(demands_strategy, st.floats(min_value=0.0, max_value=600.0))
    @settings(max_examples=80, deadline=None)
    def test_sources_match_draw_totals(self, demands, budget):
        scheduler = LoadScheduler()
        available = [True] * len(demands)
        assignment = scheduler.assign(demands, available, budget, 0.5)
        sc_total = sum(d for d, s in zip(demands, assignment.sources)
                       if s is PowerSource.SUPERCAP)
        assert abs(sc_total - assignment.sc_draw_w) < 1e-6


class TestPATProperties:
    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=200),    # sc Wh
        st.floats(min_value=0, max_value=400),    # battery Wh
        st.floats(min_value=0, max_value=300),    # power W
        st.floats(min_value=0, max_value=1)),     # ratio
        min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_lookup_never_fails_on_populated_table(self, entries):
        pat = PowerAllocationTable(PATConfig(max_entries=64))
        for sc_wh, ba_wh, power, ratio in entries:
            pat.add(wh_to_joules(sc_wh), wh_to_joules(ba_wh), power, ratio)
        entry = pat.lookup(wh_to_joules(37.0), wh_to_joules(91.0), 143.0)
        assert entry is not None
        assert 0.0 <= entry.r_lambda <= 1.0

    @given(st.floats(min_value=0, max_value=1),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_repeated_nudges_stay_in_unit_interval(self, start_ratio,
                                                   nudges):
        pat = PowerAllocationTable()
        pat.add(wh_to_joules(40), wh_to_joules(100), 100.0, start_ratio)
        for _ in range(nudges):
            matched = pat.lookup(wh_to_joules(40), wh_to_joules(100), 100.0)
            pat.record_outcome(wh_to_joules(40), wh_to_joules(100), 100.0,
                               matched.r_lambda,
                               sc_end_j=wh_to_joules(39),
                               battery_end_j=wh_to_joules(50),
                               matched_entry=matched)
        final = pat.lookup(wh_to_joules(40), wh_to_joules(100), 100.0)
        assert 0.0 <= final.r_lambda <= 1.0


class TestPredictorProperties:
    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=500),
        st.floats(min_value=0, max_value=500)), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_predictions_always_sane(self, observations):
        predictor = HoltWintersPredictor(PredictorConfig(season_length=4))
        for peak, valley in observations:
            predictor.observe_slot(peak, valley)
        prediction = predictor.predict()
        assert prediction.peak_w >= 0.0
        assert 0.0 <= prediction.valley_w <= prediction.peak_w
        assert prediction.mismatch_w >= 0.0


class TestPeakProperties:
    @given(st.lists(st.floats(min_value=0, max_value=600),
                    min_size=2, max_size=400),
           st.floats(min_value=1, max_value=500))
    @settings(max_examples=80, deadline=None)
    def test_slot_analysis_invariants(self, values, budget):
        trace = PowerTrace(np.asarray(values), 1.0)
        analysis = analyze_slot(trace, budget)
        assert analysis.peak_w >= analysis.valley_w
        assert analysis.mismatch_w >= 0.0
        assert 0.0 <= analysis.time_over_budget_s <= trace.duration_s
        assert analysis.excess_energy_j >= 0.0
        # Event durations sum to the over-budget time (> vs >= boundary
        # means the equality is within one sample).
        event_time = sum(e.duration_s for e in analysis.events)
        assert abs(event_time - analysis.time_over_budget_s) <= len(values)

    @given(st.floats(min_value=0, max_value=1000),
           st.floats(min_value=0, max_value=7200))
    @settings(max_examples=80, deadline=None)
    def test_classification_total(self, mismatch, duration):
        """Every (mismatch, duration) pair classifies to exactly one
        class, monotone in both arguments."""
        config = ControllerConfig()
        result = classify_peak(mismatch, duration, config)
        bigger = classify_peak(mismatch + 100.0, duration, config)
        from repro.workloads.synthetic import PeakClass
        assert result in (PeakClass.SMALL, PeakClass.LARGE)
        if result is PeakClass.LARGE:
            assert bigger is PeakClass.LARGE


class TestDeviceCrossProperties:
    @given(st.floats(min_value=0.05, max_value=1.0),
           st.lists(st.floats(min_value=1.0, max_value=300.0),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_battery_energy_conservation_sequence(self, soc, powers):
        """Over any operation sequence, delivered energy never exceeds
        what was stored plus what was charged."""
        battery = LeadAcidBattery(BatteryConfig())
        battery.reset(soc)
        initial = battery.stored_energy_j
        for index, power in enumerate(powers):
            if index % 3 == 2:
                battery.charge(power, 10.0)
            else:
                battery.discharge(power, 10.0)
        out = battery.telemetry.energy_out_j
        in_ = battery.telemetry.energy_in_j
        assert out <= initial + in_ + 1e-6

    @given(st.floats(min_value=0.05, max_value=1.0),
           st.lists(st.floats(min_value=1.0, max_value=400.0),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_supercap_energy_conservation_sequence(self, soc, powers):
        sc = Supercapacitor(SupercapConfig())
        sc.reset(soc)
        initial = sc.stored_energy_j
        for index, power in enumerate(powers):
            if index % 3 == 2:
                sc.charge(power, 5.0)
            else:
                sc.discharge(power, 5.0)
        assert sc.telemetry.energy_out_j <= (
            initial + sc.telemetry.energy_in_j + 1e-6)
