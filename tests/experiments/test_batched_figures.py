"""The paper figures through the batched runner, against the scalar path.

The experiment drivers call ``get_runner().map(...)``, so with batching
enabled (the default) the golden figures execute through
``BatchSimulation`` grouping.  These tests pin the router-level
contract: the batched and scalar execution paths produce the same
figures — identical values, identical cache keys — including the
resilience sweep whose fault-injected requests must fall back to
scalar execution inside the batched runner.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig12, run_fig13, run_resilience
from repro.runner import ExperimentRunner, ResultCache, using_runner

#: The satellites' acceptance bound; the engines are in fact bit-exact,
#: so any measurable drift is a real regression.
TOLERANCE = 1e-9

FIG12_PARAMS = dict(duration_h=0.5, seed=1, workloads=("TS", "PR"),
                    renewable_workloads=("TS",))
FIG13_PARAMS = dict(duration_h=0.5, seed=1, workloads=("DA",),
                    ratios=(0.1, 0.3))
RESILIENCE_PARAMS = dict(duration_h=0.25, seed=1,
                         schemes=("BaOnly", "HEB-D"),
                         intensities=(0.0, 1.0))


def assert_rows_close(batched_rows, scalar_rows, label):
    assert set(batched_rows) == set(scalar_rows), label
    for key, scalar_row in scalar_rows.items():
        batched_row = batched_rows[key]
        assert set(batched_row) == set(scalar_row), f"{label} {key}"
        for metric, expected in scalar_row.items():
            actual = batched_row[metric]
            if isinstance(expected, float):
                assert abs(actual - expected) <= TOLERANCE, (
                    f"{label} {key}.{metric}: batched {actual!r} vs "
                    f"scalar {expected!r}")
            else:
                assert actual == expected, f"{label} {key}.{metric}"


class TestFiguresBatchedVsScalar:
    def test_fig12_identical_through_batched_runner(self):
        with using_runner(ExperimentRunner(jobs=1, batch=True)) as runner:
            batched = run_fig12(**FIG12_PARAMS)
            assert runner.batched > 0, (
                "fig12's compatible requests must route through the "
                "batched engine")
        with using_runner(ExperimentRunner(jobs=1, batch=False)):
            scalar = run_fig12(**FIG12_PARAMS)
        assert_rows_close(batched.scheme_rows(), scalar.scheme_rows(),
                          "fig12")

    def test_fig13_identical_through_batched_runner(self):
        with using_runner(ExperimentRunner(jobs=1, batch=True)):
            batched = run_fig13(**FIG13_PARAMS)
        with using_runner(ExperimentRunner(jobs=1, batch=False)):
            scalar = run_fig13(**FIG13_PARAMS)
        assert set(batched) == set(scalar)
        for ratio, scalar_point in scalar.items():
            batched_point = batched[ratio]
            for metric in ("energy_efficiency", "downtime_s",
                           "lifetime_years", "reu"):
                actual = getattr(batched_point, metric)
                expected = getattr(scalar_point, metric)
                assert abs(actual - expected) <= TOLERANCE, (
                    f"fig13 ratio {ratio} {metric}: {actual!r} vs "
                    f"{expected!r}")

    def test_resilience_sweep_identical_with_fault_fallback(self):
        """Faulted lanes run scalar inside the batched runner; the
        zero-intensity lanes batch — the sweep must not notice."""
        with using_runner(ExperimentRunner(jobs=1, batch=True)):
            batched = run_resilience(**RESILIENCE_PARAMS)
        with using_runner(ExperimentRunner(jobs=1, batch=False)):
            scalar = run_resilience(**RESILIENCE_PARAMS)
        assert set(batched) == set(scalar)
        for scheme, scalar_points in scalar.items():
            batched_points = batched[scheme]
            assert len(batched_points) == len(scalar_points)
            for got, want in zip(batched_points, scalar_points):
                assert got == want, f"resilience {scheme}: {got} != {want}"


class TestFigureCacheInterop:
    def test_fig12_cache_keys_shared_across_paths(self, tmp_path):
        """Entries written by the batched path satisfy the scalar path
        (and vice versa): cache keys are request-content-addressed and
        results are interchangeable."""
        cache = ResultCache(tmp_path / "cache")
        with using_runner(ExperimentRunner(jobs=1, cache=cache,
                                           batch=True)) as writer:
            run_fig12(**FIG12_PARAMS)
            writes = writer.misses
            assert writes > 0 and writer.hits == 0
        with using_runner(ExperimentRunner(jobs=1, cache=cache,
                                           batch=False)) as reader:
            run_fig12(**FIG12_PARAMS)
            assert reader.hits == writes
            assert reader.misses == 0
