"""The resilience sweep: downtime vs fault intensity per scheme."""

import pytest

from repro.experiments import (
    fault_schedule_for,
    format_resilience,
    run_resilience,
)
from repro.faults import FaultSchedule
from repro.units import hours


class TestFaultScheduleFor:
    def test_zero_intensity_is_empty(self):
        assert fault_schedule_for(0.0, hours(1.0)) == FaultSchedule.empty()

    def test_positive_intensity_builds_the_storm(self):
        schedule = fault_schedule_for(1.0, hours(1.0), seed=5)
        assert schedule.classes_present() == (
            "battery_aging", "brownout", "outage", "sensor_noise")
        assert schedule.seed == 5

    def test_intensity_scales_monotonically(self):
        mild = fault_schedule_for(0.25, hours(1.0))
        harsh = fault_schedule_for(1.0, hours(1.0))

        def by_kind(schedule):
            return {e["kind"]: e for e in schedule.to_dict()["events"]}

        mild_events, harsh_events = by_kind(mild), by_kind(harsh)
        assert (harsh_events["brownout"]["budget_fraction"]
                < mild_events["brownout"]["budget_fraction"])
        assert (harsh_events["outage"]["duration_s"]
                > mild_events["outage"]["duration_s"])
        assert (harsh_events["battery_aging"]["fade_fraction"]
                > mild_events["battery_aging"]["fade_fraction"])

    def test_deterministic(self):
        assert fault_schedule_for(0.5, hours(2.0)) == fault_schedule_for(
            0.5, hours(2.0))


class TestRunResilience:
    @pytest.fixture(scope="class")
    def points(self):
        return run_resilience(duration_h=0.25, seed=1,
                              schemes=("BaOnly", "HEB-D"),
                              intensities=(0.0, 1.0))

    def test_shape(self, points):
        assert set(points) == {"BaOnly", "HEB-D"}
        for rows in points.values():
            assert [row.intensity for row in rows] == [0.0, 1.0]

    def test_zero_intensity_is_fault_free(self, points):
        for rows in points.values():
            baseline = rows[0]
            assert baseline.fault_downtime_s is None

    def test_downtime_never_negative_and_monotone_from_zero(self, points):
        for rows in points.values():
            assert rows[0].downtime_s >= 0.0
            assert rows[-1].downtime_s >= rows[0].downtime_s - 1e-9

    def test_format_renders_every_scheme_and_intensity(self, points):
        text = format_resilience(points)
        assert "BaOnly" in text and "HEB-D" in text
        assert "0.00" in text and "1.00" in text
        assert "attribution" in text
