"""Regenerate the golden-figure fixtures.

Run from the repository root after an *intentional* change to simulation
behavior::

    PYTHONPATH=src python tests/experiments/golden/generate.py

The fixtures pin every headline metric of fig12/fig13/fig15 at small,
fixed-seed configurations; the golden tests fail when any metric drifts
by more than 1e-9, so unintentional numeric changes to the hot path are
caught immediately.  Floats are stored at full shortest-repr precision.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import run_fig12, run_fig13, run_fig15

GOLDEN_DIR = Path(__file__).resolve().parent

# Small but representative: one small-peak (TS) and one large-peak (PR)
# workload, half an hour, seed 1.
FIG12_PARAMS = {
    "duration_h": 0.5,
    "seed": 1,
    "workloads": ["TS", "PR"],
    "renewable_workloads": ["TS"],
}
# DA (data analytics) differentiates the ratio sweep even at 0.5 h:
# energy efficiency and battery lifetime vary strongly with the SC share.
FIG13_PARAMS = {
    "duration_h": 0.5,
    "seed": 1,
    "workloads": ["DA"],
    "ratios": [0.1, 0.3, 0.5],
}


def generate_fig12() -> dict:
    results = run_fig12(**FIG12_PARAMS)
    return {
        "params": FIG12_PARAMS,
        "rows": results.scheme_rows(),
        "split": results.small_large_split(),
    }


def generate_fig13() -> dict:
    points = run_fig13(**FIG13_PARAMS)
    return {
        "params": FIG13_PARAMS,
        "points": {
            str(ratio): {
                "energy_efficiency": point.energy_efficiency,
                "downtime_s": point.downtime_s,
                "lifetime_years": point.lifetime_years,
                "reu": point.reu,
            }
            for ratio, point in points.items()
        },
    }


def generate_fig15() -> dict:
    results = run_fig15()
    best = max(results.roi_points, key=lambda p: p.roi)
    worst = min(results.roi_points, key=lambda p: p.roi)
    return {
        "breakdown": {
            "fractions": results.breakdown.fractions(),
            "total": results.breakdown.total,
            "server_cost": results.server_cost,
        },
        "roi": {
            "points": len(results.roi_points),
            "positive": sum(1 for p in results.roi_points if p.worthwhile),
            "best": best.roi,
            "worst": worst.roi,
        },
        "peak_shaving": results.peak_shaving,
    }


def main() -> None:
    for name, generator in (("fig12", generate_fig12),
                            ("fig13", generate_fig13),
                            ("fig15", generate_fig15)):
        path = GOLDEN_DIR / f"{name}.json"
        payload = generator()
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
