"""Tests for the load scheduler (R_lambda -> relay assignments)."""

import pytest

from repro.core import LoadScheduler
from repro.errors import SimulationError
from repro.server import PowerSource


@pytest.fixture
def scheduler():
    return LoadScheduler()


DEMANDS = [40.0, 50.0, 60.0, 45.0, 55.0, 65.0]  # total 315
ALL_ON = [True] * 6


class TestNoDeficit:
    def test_everyone_on_utility(self, scheduler):
        assignment = scheduler.assign(DEMANDS, ALL_ON, 400.0, 0.5)
        assert all(s is PowerSource.UTILITY for s in assignment.sources)
        assert assignment.n_buffered == 0
        assert assignment.utility_draw_w == pytest.approx(315.0)

    def test_unavailable_servers_get_none(self, scheduler):
        available = [True, False, True, True, True, True]
        assignment = scheduler.assign(DEMANDS, available, 400.0, 0.5)
        assert assignment.sources[1] is PowerSource.NONE
        assert assignment.utility_draw_w == pytest.approx(315.0 - 50.0)


class TestDeficit:
    def test_moves_minimum_servers(self, scheduler):
        assignment = scheduler.assign(DEMANDS, ALL_ON, 260.0, 1.0)
        assert assignment.n_buffered == 1
        assert assignment.utility_draw_w <= 260.0

    def test_moves_hungriest_first(self, scheduler):
        assignment = scheduler.assign(DEMANDS, ALL_ON, 260.0, 1.0)
        # Server 5 (65 W) is the hungriest.
        assert assignment.sources[5] is PowerSource.SUPERCAP

    def test_r_lambda_one_all_to_sc(self, scheduler):
        assignment = scheduler.assign(DEMANDS, ALL_ON, 100.0, 1.0)
        assert assignment.battery_draw_w == 0.0
        assert assignment.sc_draw_w > 0.0

    def test_r_lambda_zero_all_to_battery(self, scheduler):
        assignment = scheduler.assign(DEMANDS, ALL_ON, 100.0, 0.0)
        assert assignment.sc_draw_w == 0.0
        assert assignment.battery_draw_w > 0.0

    def test_r_lambda_splits_count(self, scheduler):
        assignment = scheduler.assign(DEMANDS, ALL_ON, 50.0, 0.5)
        n_sc = sum(1 for s in assignment.sources
                   if s is PowerSource.SUPERCAP)
        n_battery = sum(1 for s in assignment.sources
                        if s is PowerSource.BATTERY)
        assert assignment.n_buffered == n_sc + n_battery
        assert n_sc == round(0.5 * assignment.n_buffered)

    def test_sc_gets_hungriest_of_buffered(self, scheduler):
        assignment = scheduler.assign(DEMANDS, ALL_ON, 50.0, 0.5)
        sc_draws = [DEMANDS[i] for i, s in enumerate(assignment.sources)
                    if s is PowerSource.SUPERCAP]
        battery_draws = [DEMANDS[i] for i, s in enumerate(assignment.sources)
                         if s is PowerSource.BATTERY]
        assert min(sc_draws) >= max(battery_draws)

    def test_draw_bookkeeping_consistent(self, scheduler):
        assignment = scheduler.assign(DEMANDS, ALL_ON, 100.0, 0.4)
        total = (assignment.utility_draw_w + assignment.sc_draw_w
                 + assignment.battery_draw_w)
        assert total == pytest.approx(315.0)


class TestPoolRestrictions:
    def test_no_sc_routes_to_battery(self, scheduler):
        assignment = scheduler.assign(DEMANDS, ALL_ON, 100.0, 1.0,
                                      use_sc=False)
        assert assignment.sc_draw_w == 0.0
        assert assignment.battery_draw_w > 0.0

    def test_no_battery_routes_to_sc(self, scheduler):
        assignment = scheduler.assign(DEMANDS, ALL_ON, 100.0, 0.0,
                                      use_battery=False)
        assert assignment.battery_draw_w == 0.0
        assert assignment.sc_draw_w > 0.0

    def test_no_pools_leaves_overdraw_on_utility(self, scheduler):
        assignment = scheduler.assign(DEMANDS, ALL_ON, 100.0, 0.5,
                                      use_sc=False, use_battery=False)
        assert assignment.n_buffered == 0
        assert assignment.utility_draw_w == pytest.approx(315.0)


class TestValidation:
    def test_rejects_negative_budget(self, scheduler):
        with pytest.raises(SimulationError):
            scheduler.assign(DEMANDS, ALL_ON, -1.0, 0.5)

    def test_rejects_length_mismatch(self, scheduler):
        with pytest.raises(SimulationError):
            scheduler.assign(DEMANDS, [True], 100.0, 0.5)

    def test_r_lambda_clamped(self, scheduler):
        assignment = scheduler.assign(DEMANDS, ALL_ON, 100.0, 7.5)
        assert assignment.battery_draw_w == 0.0
