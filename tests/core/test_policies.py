"""Tests for the six Table 2 power-management schemes."""

import pytest

from repro.config import ControllerConfig, prototype_buffer
from repro.core import (
    POLICY_NAMES,
    BaFirstPolicy,
    BaOnlyPolicy,
    HebDPolicy,
    HebFPolicy,
    HebSPolicy,
    SCFirstPolicy,
    SlotObservation,
    SlotResult,
    make_policy,
)
from repro.errors import ConfigurationError
from repro.units import minutes, wh_to_joules

WH = wh_to_joules(1.0)


def obs(sc_wh=45.0, ba_wh=105.0, last_peak=400.0, last_valley=200.0,
        duration=minutes(8), budget=260.0, index=0):
    return SlotObservation(
        index=index, start_s=index * 600.0, budget_w=budget,
        sc_usable_j=sc_wh * WH, battery_usable_j=ba_wh * WH,
        sc_nominal_j=45.0 * WH, battery_nominal_j=105.0 * WH,
        last_peak_w=last_peak, last_valley_w=last_valley,
        last_peak_duration_s=duration, num_servers=6)


def result_for(observation, plan, sc_end_wh=20.0, ba_end_wh=90.0,
               peak=400.0, valley=200.0, duration=minutes(8)):
    return SlotResult(
        observation=observation, plan=plan,
        sc_usable_end_j=sc_end_wh * WH, battery_usable_end_j=ba_end_wh * WH,
        actual_peak_w=peak, actual_valley_w=valley,
        actual_peak_duration_s=duration, downtime_s=0.0)


class TestFactory:
    def test_all_names_construct(self):
        hybrid = prototype_buffer()
        for name in POLICY_NAMES:
            policy = make_policy(name, hybrid=hybrid)
            assert policy.name == name

    def test_case_insensitive(self):
        assert make_policy("baonly").name == "BaOnly"
        assert make_policy("heb_d", hybrid=prototype_buffer()).name == "HEB-D"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("heb-x")


class TestBaOnly:
    def test_never_uses_sc(self):
        plan = BaOnlyPolicy().begin_slot(obs())
        assert not plan.use_sc
        assert plan.r_lambda == 0.0
        assert not plan.fallback

    def test_charges_battery_only(self):
        plan = BaOnlyPolicy().begin_slot(obs())
        assert plan.charge_order == ("battery",)


class TestBaFirst:
    def test_battery_priority_when_charged(self):
        plan = BaFirstPolicy().begin_slot(obs())
        assert plan.r_lambda == 0.0
        assert plan.charge_order[0] == "battery"

    def test_flips_to_sc_when_battery_dry(self):
        plan = BaFirstPolicy().begin_slot(obs(ba_wh=0.5))
        assert plan.r_lambda == 1.0

    def test_fallback_enabled(self):
        assert BaFirstPolicy().begin_slot(obs()).fallback


class TestSCFirst:
    def test_sc_priority_when_charged(self):
        plan = SCFirstPolicy().begin_slot(obs())
        assert plan.r_lambda == 1.0
        assert plan.charge_order[0] == "sc"

    def test_flips_to_battery_when_sc_dry(self):
        plan = SCFirstPolicy().begin_slot(obs(sc_wh=0.2))
        assert plan.r_lambda == 0.0


class TestHebPlanning:
    @pytest.fixture
    def heb_d(self):
        return make_policy("HEB-D", hybrid=prototype_buffer())

    def test_small_deficit_goes_two_tier(self, heb_d):
        plan = heb_d.begin_slot(obs(last_peak=290.0, duration=minutes(2)))
        assert plan.note.startswith("small-peak")
        assert plan.r_lambda == 1.0

    def test_large_peak_covered_by_sc_when_energy_fits(self, heb_d):
        # 150 W deficit for ~4 min = 10 Wh << 45 Wh of SC.
        plan = heb_d.begin_slot(obs(last_peak=410.0, duration=minutes(4)))
        assert plan.note.startswith("large-peak sc-covered")
        assert plan.r_lambda == 1.0

    def test_long_large_peak_uses_pat_split(self, heb_d):
        # 150 W for 30 min = 75 Wh > 45 Wh of SC: must split.
        plan = heb_d.begin_slot(obs(last_peak=410.0, duration=minutes(30)))
        assert plan.note.startswith("large-peak (")
        assert 0.0 <= plan.r_lambda <= 1.0

    def test_depleted_sc_forces_pat_path(self, heb_d):
        plan = heb_d.begin_slot(obs(sc_wh=2.0, last_peak=410.0,
                                    duration=minutes(8)))
        assert plan.note.startswith("large-peak (")

    def test_charges_sc_first(self, heb_d):
        plan = heb_d.begin_slot(obs())
        assert plan.charge_order[0] == "sc"


class TestHebF:
    def test_uses_last_slot_peak(self):
        policy = HebFPolicy()
        quiet = policy.begin_slot(obs(last_peak=250.0, duration=0.0))
        assert quiet.note.startswith("small-peak")
        busy = policy.begin_slot(obs(last_peak=420.0,
                                     duration=minutes(30), index=1))
        assert busy.note.startswith("large-peak")

    def test_ratio_is_energy_proportional(self):
        policy = HebFPolicy()
        plan = policy.begin_slot(obs(sc_wh=50.0, ba_wh=50.0,
                                     last_peak=420.0, duration=minutes(30)))
        assert plan.r_lambda == pytest.approx(0.5)

    def test_handles_empty_buffers(self):
        policy = HebFPolicy()
        plan = policy.begin_slot(obs(sc_wh=0.0, ba_wh=0.0,
                                     last_peak=420.0, duration=minutes(30)))
        assert plan.r_lambda == pytest.approx(0.5)


class TestHebSD:
    def test_heb_s_predicts_after_observation(self):
        policy = make_policy("HEB-S", hybrid=prototype_buffer())
        observation = obs(last_peak=410.0, duration=minutes(30))
        plan = policy.begin_slot(observation)
        policy.end_slot(result_for(observation, plan))
        assert policy.predictor.observations == 1

    def test_heb_d_learns_new_pat_entries(self):
        policy = make_policy("HEB-D", hybrid=prototype_buffer())
        before = len(policy.pat)
        observation = obs(sc_wh=3.0, ba_wh=12.0, last_peak=460.0,
                          duration=minutes(30))
        plan = policy.begin_slot(observation)
        assert plan.note.startswith("large-peak (")
        policy.end_slot(result_for(observation, plan, sc_end_wh=1.0,
                                   ba_end_wh=5.0, peak=460.0))
        assert len(policy.pat) >= before

    def test_heb_d_small_slot_does_not_touch_pat(self):
        policy = make_policy("HEB-D", hybrid=prototype_buffer())
        lookups_before = policy.pat.lookups
        observation = obs(last_peak=280.0, duration=minutes(2))
        plan = policy.begin_slot(observation)
        policy.end_slot(result_for(observation, plan, peak=280.0))
        assert policy.pat.lookups == lookups_before

    def test_reset_clears_predictor(self):
        policy = make_policy("HEB-D", hybrid=prototype_buffer())
        observation = obs()
        plan = policy.begin_slot(observation)
        policy.end_slot(result_for(observation, plan))
        policy.reset()
        assert policy.predictor.observations == 0

    def test_dense_pat_larger_than_coarse(self):
        hybrid = prototype_buffer()
        dense = make_policy("HEB-D", hybrid=hybrid)
        coarse = make_policy("HEB-S", hybrid=hybrid)
        assert len(dense.pat) > len(coarse.pat)
