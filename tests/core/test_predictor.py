"""Tests for the Holt-Winters predictor."""

import math

import pytest

from repro.config import PredictorConfig
from repro.core import HoltWintersPredictor
from repro.errors import PredictionError


@pytest.fixture
def predictor():
    return HoltWintersPredictor(PredictorConfig(season_length=4))


class TestBasics:
    def test_predict_before_data_raises(self, predictor):
        with pytest.raises(PredictionError):
            predictor.predict()

    def test_last_value_fallback_before_warmup(self, predictor):
        predictor.observe_slot(100.0, 50.0)
        prediction = predictor.predict()
        assert not prediction.warmed_up
        assert prediction.peak_w == pytest.approx(100.0)
        assert prediction.valley_w == pytest.approx(50.0)

    def test_warms_up_after_one_season(self, predictor):
        for _ in range(4):
            predictor.observe_slot(100.0, 50.0)
        assert predictor.predict().warmed_up

    def test_rejects_negative_observations(self, predictor):
        with pytest.raises(PredictionError):
            predictor.observe_slot(-1.0, 0.0)

    def test_swaps_inverted_peak_valley(self, predictor):
        predictor.observe_slot(50.0, 100.0)
        prediction = predictor.predict()
        assert prediction.peak_w >= prediction.valley_w

    def test_mismatch_is_nonnegative(self, predictor):
        for peak, valley in ((100, 90), (95, 80), (105, 95), (98, 85)):
            predictor.observe_slot(peak, valley)
        assert predictor.predict().mismatch_w >= 0.0


class TestAccuracy:
    def test_constant_series_predicted_exactly(self, predictor):
        for _ in range(20):
            predictor.observe_slot(300.0, 200.0)
        prediction = predictor.predict()
        assert prediction.peak_w == pytest.approx(300.0, rel=0.01)
        assert prediction.valley_w == pytest.approx(200.0, rel=0.01)

    def test_learns_seasonal_pattern(self):
        """A square-wave peak series must be anticipated, which is exactly
        what separates HEB-D from the last-value HEB-F."""
        predictor = HoltWintersPredictor(PredictorConfig(season_length=4))
        pattern = [400.0, 400.0, 250.0, 250.0]
        for cycle in range(12):
            for value in pattern:
                predictor.observe_slot(value, 200.0)
        # Next observation would be pattern[0] = 400; a last-value
        # predictor would say 250.
        prediction = predictor.predict()
        assert abs(prediction.peak_w - 400.0) < abs(prediction.peak_w - 250.0)

    def test_tracks_linear_trend(self):
        predictor = HoltWintersPredictor(PredictorConfig(season_length=4))
        for step in range(40):
            predictor.observe_slot(100.0 + 5.0 * step, 50.0)
        prediction = predictor.predict()
        assert prediction.peak_w > 100.0 + 5.0 * 36

    def test_beats_last_value_on_seasonal_series(self):
        """In-sample MAE of Holt-Winters < naive persistence error."""
        config = PredictorConfig(season_length=4)
        predictor = HoltWintersPredictor(config)
        pattern = [400.0, 300.0, 250.0, 350.0]
        series = pattern * 15
        naive_errors = [abs(series[i] - series[i - 1])
                        for i in range(1, len(series))]
        for value in series:
            predictor.observe_slot(value, 100.0)
        assert predictor.mean_absolute_error() < (
            sum(naive_errors) / len(naive_errors))


class TestPredictionClamping:
    def test_never_negative(self):
        predictor = HoltWintersPredictor(PredictorConfig(season_length=3))
        for value in (50.0, 5.0, 0.0, 0.0, 0.0, 0.0):
            predictor.observe_slot(value, 0.0)
        prediction = predictor.predict()
        assert prediction.peak_w >= 0.0
        assert prediction.valley_w >= 0.0

    def test_valley_never_above_peak(self):
        predictor = HoltWintersPredictor(PredictorConfig(season_length=3))
        for __ in range(9):
            predictor.observe_slot(100.0, 99.0)
        prediction = predictor.predict()
        assert prediction.valley_w <= prediction.peak_w

    def test_mae_empty_history(self, predictor):
        assert predictor.mean_absolute_error() == 0.0
        assert math.isfinite(predictor.mean_absolute_error())


class TestInputShapes:
    """Degenerate input series: single slot, constants, pure ramps."""

    def test_single_slot_mismatch(self, predictor):
        predictor.observe_slot(100.0, 50.0)
        prediction = predictor.predict()
        assert not prediction.warmed_up
        assert prediction.mismatch_w == pytest.approx(50.0)

    def test_single_zero_power_slot(self, predictor):
        predictor.observe_slot(0.0, 0.0)
        prediction = predictor.predict()
        assert prediction.peak_w == pytest.approx(0.0)
        assert prediction.valley_w == pytest.approx(0.0)
        assert prediction.mismatch_w == pytest.approx(0.0)

    def test_constant_flat_series_has_no_mismatch(self, predictor):
        """peak == valley forever => the buffers owe nothing."""
        for _ in range(12):
            predictor.observe_slot(250.0, 250.0)
        prediction = predictor.predict()
        assert prediction.warmed_up
        assert prediction.mismatch_w == pytest.approx(0.0, abs=1e-6)

    def test_ramp_during_warmup_falls_back_to_last_value(self, predictor):
        # Fewer than season_length observations: strict persistence.
        for step in range(3):
            predictor.observe_slot(100.0 + 10.0 * step, 50.0)
        prediction = predictor.predict()
        assert not prediction.warmed_up
        assert prediction.peak_w == pytest.approx(120.0)

    def test_ramp_after_warmup_extrapolates(self, predictor):
        """On a pure ramp the trend term must look past the last value."""
        last = 0.0
        for step in range(30):
            last = 100.0 + 10.0 * step
            predictor.observe_slot(last, 50.0)
        prediction = predictor.predict()
        assert prediction.warmed_up
        assert prediction.peak_w > last

    def test_downward_ramp_never_goes_negative(self, predictor):
        for step in range(30):
            predictor.observe_slot(max(0.0, 300.0 - 20.0 * step), 0.0)
        prediction = predictor.predict()
        assert prediction.peak_w >= 0.0
        assert prediction.valley_w >= 0.0
