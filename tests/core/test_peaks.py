"""Tests for peak detection and classification."""

import numpy as np
import pytest

from repro.config import ControllerConfig
from repro.core import analyze_slot, classify_peak
from repro.core.peaks import expected_peak_duration_s
from repro.units import minutes
from repro.workloads import PowerTrace
from repro.workloads.synthetic import PeakClass


def trace_of(values, dt=1.0):
    return PowerTrace(np.asarray(values, dtype=float), dt)


class TestClassification:
    @pytest.fixture
    def config(self):
        return ControllerConfig(small_peak_power_w=60.0,
                                small_peak_duration_s=minutes(5))

    def test_mild_and_short_is_small(self, config):
        assert classify_peak(30.0, minutes(2), config) is PeakClass.SMALL

    def test_tall_is_large(self, config):
        assert classify_peak(150.0, minutes(2), config) is PeakClass.LARGE

    def test_long_is_large(self, config):
        """Conservative: long even if mild counts as large."""
        assert classify_peak(30.0, minutes(8), config) is PeakClass.LARGE

    def test_boundary_is_small(self, config):
        assert classify_peak(60.0, minutes(5), config) is PeakClass.SMALL


class TestAnalyzeSlot:
    def test_no_peaks(self):
        analysis = analyze_slot(trace_of([100, 120, 110]), 200.0)
        assert analysis.time_over_budget_s == 0.0
        assert analysis.excess_energy_j == 0.0
        assert analysis.events == ()

    def test_basic_stats(self):
        analysis = analyze_slot(trace_of([100, 300, 150]), 200.0)
        assert analysis.peak_w == 300.0
        assert analysis.valley_w == 100.0
        assert analysis.mismatch_w == 200.0

    def test_excess_energy(self):
        analysis = analyze_slot(trace_of([250, 250], dt=2.0), 200.0)
        assert analysis.excess_energy_j == pytest.approx(200.0)

    def test_surplus_energy(self):
        analysis = analyze_slot(trace_of([150, 150], dt=2.0), 200.0)
        assert analysis.surplus_energy_j == pytest.approx(200.0)

    def test_counts_events(self):
        values = [100, 300, 300, 100, 300, 100]
        analysis = analyze_slot(trace_of(values), 200.0)
        assert len(analysis.events) == 2
        assert analysis.time_over_budget_s == 3.0

    def test_event_at_trace_end(self):
        analysis = analyze_slot(trace_of([100, 300, 300]), 200.0)
        assert len(analysis.events) == 1
        assert analysis.events[0].duration_s == 2.0

    def test_event_excess_stats(self):
        analysis = analyze_slot(trace_of([100, 250, 350, 100]), 200.0)
        event = analysis.events[0]
        assert event.max_excess_w == 150.0
        assert event.mean_excess_w == pytest.approx(100.0)

    def test_mean_event_duration(self):
        values = [300] * 4 + [100] + [300] * 2 + [100]
        analysis = analyze_slot(trace_of(values), 200.0)
        assert expected_peak_duration_s(analysis) == pytest.approx(3.0)

    def test_mean_duration_no_events(self):
        analysis = analyze_slot(trace_of([10, 20]), 200.0)
        assert expected_peak_duration_s(analysis) == 0.0
