"""Tests for the Power Allocation Table (Figure 10)."""

import pytest

from repro.config import PATConfig
from repro.core import PowerAllocationTable
from repro.errors import ConfigurationError
from repro.units import wh_to_joules


@pytest.fixture
def pat():
    return PowerAllocationTable(PATConfig(
        energy_quantum_j=wh_to_joules(5.0), power_quantum_w=10.0,
        delta_r=0.01, max_entries=16))


WH = wh_to_joules(1.0)


class TestQuantization:
    def test_rounds_to_grid(self, pat):
        key = pat.quantize(12.4 * WH, 47.6 * WH, 83.0)
        assert key[0] == pytest.approx(10 * WH)
        assert key[1] == pytest.approx(50 * WH)
        assert key[2] == pytest.approx(80.0)

    def test_nearby_states_share_a_key(self, pat):
        one = pat.quantize(11.0 * WH, 30.0 * WH, 81.0)
        two = pat.quantize(12.0 * WH, 31.0 * WH, 84.0)
        assert one == two


class TestAddLookup:
    def test_empty_lookup_returns_none(self, pat):
        assert pat.lookup(10 * WH, 50 * WH, 100.0) is None

    def test_exact_hit(self, pat):
        pat.add(10 * WH, 50 * WH, 100.0, 0.4)
        entry = pat.lookup(10 * WH, 50 * WH, 100.0)
        assert entry.r_lambda == pytest.approx(0.4)
        assert pat.exact_hits == 1

    def test_quantized_hit(self, pat):
        pat.add(10 * WH, 50 * WH, 100.0, 0.4)
        entry = pat.lookup(11.0 * WH, 51.0 * WH, 103.0)
        assert entry.r_lambda == pytest.approx(0.4)

    def test_nearest_neighbour_fallback(self, pat):
        """The paper's Similar() search (Figure 10, line 8)."""
        pat.add(10 * WH, 50 * WH, 40.0, 0.9)
        pat.add(10 * WH, 50 * WH, 160.0, 0.3)
        entry = pat.lookup(10 * WH, 50 * WH, 70.0)
        assert entry.r_lambda == pytest.approx(0.9)
        entry = pat.lookup(10 * WH, 50 * WH, 140.0)
        assert entry.r_lambda == pytest.approx(0.3)

    def test_rejects_bad_ratio(self, pat):
        with pytest.raises(ConfigurationError):
            pat.add(WH, WH, 10.0, 1.5)

    def test_add_overwrites_same_key(self, pat):
        pat.add(10 * WH, 50 * WH, 100.0, 0.4)
        pat.add(10 * WH, 50 * WH, 100.0, 0.7)
        assert len(pat) == 1
        assert pat.lookup(10 * WH, 50 * WH, 100.0).r_lambda == 0.7

    def test_entries_sorted_and_stable(self, pat):
        pat.add(20 * WH, 50 * WH, 100.0, 0.5)
        pat.add(10 * WH, 50 * WH, 100.0, 0.4)
        entries = pat.entries()
        assert entries[0].sc_energy_j < entries[1].sc_energy_j


class TestEviction:
    def test_bounded_growth(self):
        pat = PowerAllocationTable(PATConfig(max_entries=4))
        for i in range(10):
            pat.add(i * 100 * WH, 0.0, 10.0 * i, 0.5, source="online")
        assert len(pat) <= 4

    def test_profile_entries_survive_online_eviction(self):
        pat = PowerAllocationTable(PATConfig(max_entries=3))
        pat.add(0.0, 0.0, 10.0, 0.5, source="profile")
        for i in range(1, 6):
            pat.add(i * 100 * WH, 0.0, 10.0, 0.5, source="online")
        sources = {entry.source for entry in pat.entries()}
        assert "profile" in sources


class TestOnlineOptimization:
    def test_new_state_adds_entry(self, pat):
        entry = pat.record_outcome(
            sc_start_j=10 * WH, battery_start_j=50 * WH, power_w=100.0,
            r_lambda_used=0.5, sc_end_j=5 * WH, battery_end_j=40 * WH,
            matched_entry=None)
        assert entry.source == "online"
        assert len(pat) == 1

    def test_battery_declining_faster_raises_r(self, pat):
        """Figure 10, line 17-18: battery fell faster -> use more SC."""
        pat.add(10 * WH, 50 * WH, 100.0, 0.5)
        matched = pat.lookup(10 * WH, 50 * WH, 100.0)
        updated = pat.record_outcome(
            10 * WH, 50 * WH, 100.0, 0.5,
            sc_end_j=9 * WH, battery_end_j=30 * WH,  # ratio rose
            matched_entry=matched)
        assert updated.r_lambda == pytest.approx(0.51)
        assert updated.updates == 1

    def test_sc_declining_faster_lowers_r(self, pat):
        pat.add(10 * WH, 50 * WH, 100.0, 0.5)
        matched = pat.lookup(10 * WH, 50 * WH, 100.0)
        updated = pat.record_outcome(
            10 * WH, 50 * WH, 100.0, 0.5,
            sc_end_j=2 * WH, battery_end_j=48 * WH,  # ratio fell
            matched_entry=matched)
        assert updated.r_lambda == pytest.approx(0.49)

    def test_balanced_decline_leaves_r(self, pat):
        pat.add(10 * WH, 50 * WH, 100.0, 0.5)
        matched = pat.lookup(10 * WH, 50 * WH, 100.0)
        updated = pat.record_outcome(
            10 * WH, 50 * WH, 100.0, 0.5,
            sc_end_j=5 * WH, battery_end_j=25 * WH,  # same ratio
            matched_entry=matched)
        assert updated.r_lambda == pytest.approx(0.5)

    def test_r_clamped_to_unit_interval(self, pat):
        pat.add(10 * WH, 50 * WH, 100.0, 1.0)
        matched = pat.lookup(10 * WH, 50 * WH, 100.0)
        updated = pat.record_outcome(
            10 * WH, 50 * WH, 100.0, 1.0,
            sc_end_j=9 * WH, battery_end_j=30 * WH,
            matched_entry=matched)
        assert updated.r_lambda <= 1.0

    def test_repeated_updates_converge_ratio(self, pat):
        """Self-optimization: repeated nudges accumulate (Section 5.3)."""
        pat.add(10 * WH, 50 * WH, 100.0, 0.5)
        for _ in range(10):
            matched = pat.lookup(10 * WH, 50 * WH, 100.0)
            pat.record_outcome(10 * WH, 50 * WH, 100.0, matched.r_lambda,
                               sc_end_j=9 * WH, battery_end_j=30 * WH,
                               matched_entry=matched)
        assert pat.lookup(10 * WH, 50 * WH, 100.0).r_lambda == pytest.approx(
            0.6)

    def test_empty_battery_end_handled(self, pat):
        pat.add(10 * WH, 50 * WH, 100.0, 0.5)
        matched = pat.lookup(10 * WH, 50 * WH, 100.0)
        updated = pat.record_outcome(
            10 * WH, 50 * WH, 100.0, 0.5,
            sc_end_j=5 * WH, battery_end_j=0.0,
            matched_entry=matched)
        # Battery hit empty -> ratio "rose" to infinity -> more SC load.
        assert updated.r_lambda == pytest.approx(0.51)


class TestLookupEdgeCases:
    def test_empty_table_counts_lookup_without_hit(self, pat):
        assert pat.lookup(0.0, 0.0, 0.0) is None
        assert pat.lookups == 1
        assert pat.exact_hits == 0

    def test_exact_match_preferred_over_similar(self, pat):
        """A quantized exact hit never falls through to Similar()."""
        pat.add(10 * WH, 50 * WH, 100.0, 0.2)
        pat.add(10 * WH, 50 * WH, 110.0, 0.8)
        entry = pat.lookup(10 * WH, 50 * WH, 98.0)  # quantizes to 100
        assert entry.r_lambda == pytest.approx(0.2)
        assert pat.exact_hits == 1

    def test_tie_distance_resolves_to_lowest_key(self, pat):
        """Equidistant neighbours must break ties deterministically
        (lowest sorted key wins), or runs stop being reproducible."""
        pat.add(10 * WH, 50 * WH, 40.0, 0.9)
        pat.add(10 * WH, 50 * WH, 80.0, 0.3)
        entry = pat.lookup(10 * WH, 50 * WH, 60.0)  # 2 quanta from both
        assert entry.power_w == pytest.approx(40.0)
        # And stably so across repeated lookups.
        again = pat.lookup(10 * WH, 50 * WH, 60.0)
        assert again is entry

    def test_tie_in_energy_dimension(self, pat):
        pat.add(0.0, 50 * WH, 100.0, 0.1)
        pat.add(10 * WH, 50 * WH, 100.0, 0.7)
        entry = pat.lookup(5 * WH, 50 * WH, 100.0)  # 1 quantum from both
        assert entry.sc_energy_j == pytest.approx(0.0)


class TestDeltaRClamping:
    def test_increment_clamped_at_one(self, pat):
        pat.add(10 * WH, 50 * WH, 100.0, 1.0)
        matched = pat.lookup(10 * WH, 50 * WH, 100.0)
        updated = pat.record_outcome(
            10 * WH, 50 * WH, 100.0, 1.0,
            sc_end_j=9 * WH, battery_end_j=30 * WH,  # push up
            matched_entry=matched)
        assert updated.r_lambda == pytest.approx(1.0)
        assert updated.updates == 1

    def test_decrement_clamped_at_zero(self, pat):
        pat.add(10 * WH, 50 * WH, 100.0, 0.0)
        matched = pat.lookup(10 * WH, 50 * WH, 100.0)
        updated = pat.record_outcome(
            10 * WH, 50 * WH, 100.0, 0.0,
            sc_end_j=2 * WH, battery_end_j=48 * WH,  # push down
            matched_entry=matched)
        assert updated.r_lambda == pytest.approx(0.0)
        assert updated.updates == 1

    def test_partial_step_clamps_not_wraps(self, pat):
        """A Δr step from within Δr of a bound lands exactly on the
        bound, never past it."""
        pat.add(10 * WH, 50 * WH, 100.0, 0.005)  # delta_r is 0.01
        matched = pat.lookup(10 * WH, 50 * WH, 100.0)
        updated = pat.record_outcome(
            10 * WH, 50 * WH, 100.0, 0.005,
            sc_end_j=2 * WH, battery_end_j=48 * WH,
            matched_entry=matched)
        assert updated.r_lambda == pytest.approx(0.0)

    def test_unmatched_outcome_ratio_is_clamped(self, pat):
        """A brand-new online entry stores the used ratio clamped to
        [0, 1] rather than rejecting it."""
        entry = pat.record_outcome(
            10 * WH, 50 * WH, 100.0, 1.2,
            sc_end_j=5 * WH, battery_end_j=40 * WH, matched_entry=None)
        assert entry.r_lambda == pytest.approx(1.0)
        assert entry.source == "online"
