"""Tests for pilot-run profiling (the Figure 6 experiment)."""

import pytest

from repro.config import BatteryConfig, SupercapConfig, prototype_buffer
from repro.core import PowerAllocationTable, profile_optimal_ratio, seed_pat
from repro.core.profiling import runtime_for_ratio
from repro.errors import ConfigurationError
from repro.storage import LeadAcidBattery, Supercapacitor


def sc_factory():
    return Supercapacitor(
        SupercapConfig().scaled_to_energy(prototype_buffer().sc_energy_j))


def battery_factory():
    return LeadAcidBattery(
        BatteryConfig().scaled_to_energy(prototype_buffer().battery_energy_j))


class TestRuntime:
    def test_positive_runtime(self):
        runtime = runtime_for_ratio(sc_factory, battery_factory,
                                    deficit_w=120.0, r_lambda=0.5, dt=10.0)
        assert runtime > 0

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            runtime_for_ratio(sc_factory, battery_factory, 0.0, 0.5)
        with pytest.raises(ConfigurationError):
            runtime_for_ratio(sc_factory, battery_factory, 100.0, 1.5)

    def test_failover_extends_runtime(self):
        """r=1 drains the SC first but the battery takes over, so runtime
        exceeds the SC-alone duration."""
        deficit_w = 120.0
        sc_alone_s = prototype_buffer().sc_energy_j / deficit_w
        runtime = runtime_for_ratio(sc_factory, battery_factory,
                                    deficit_w=deficit_w, r_lambda=1.0,
                                    dt=10.0)
        assert runtime > sc_alone_s


class TestOptimum:
    def test_interior_optimum_exists(self):
        """Figure 6: at a high deficit, leaning fully on either device is
        worse than a split."""
        best, runtimes = profile_optimal_ratio(
            sc_factory, battery_factory, deficit_w=160.0,
            ratios=(0.0, 0.25, 0.5, 0.75, 1.0), dt=10.0)
        assert runtimes[best] >= runtimes[0.0]
        assert runtimes[best] >= runtimes[1.0]

    def test_rejects_empty_ratio_grid(self):
        with pytest.raises(ConfigurationError):
            profile_optimal_ratio(sc_factory, battery_factory, 100.0,
                                  ratios=())


class TestSeeding:
    def test_seed_fills_grid(self):
        pat = PowerAllocationTable()
        hybrid = prototype_buffer()
        count = seed_pat(pat, sc_factory, battery_factory,
                         hybrid.sc_energy_j, hybrid.battery_energy_j,
                         soc_levels=(0.5, 1.0), power_levels_w=(80.0, 160.0),
                         ratios=(0.0, 0.5, 1.0), dt=20.0)
        # soc_levels applies to SC and battery independently: 2*2*2 = 8.
        assert count == 8
        assert len(pat) >= 1  # quantization may merge nearby states

    def test_seeded_lookup_usable(self):
        pat = PowerAllocationTable()
        hybrid = prototype_buffer()
        seed_pat(pat, sc_factory, battery_factory,
                 hybrid.sc_energy_j, hybrid.battery_energy_j,
                 soc_levels=(1.0,), power_levels_w=(120.0,),
                 ratios=(0.0, 0.5, 1.0), dt=20.0)
        entry = pat.lookup(hybrid.sc_energy_j, hybrid.battery_energy_j,
                           120.0)
        assert entry is not None
        assert 0.0 <= entry.r_lambda <= 1.0
