"""Tests for the capacity right-sizing advisor."""

import dataclasses

import numpy as np
import pytest

from repro.config import prototype_cluster
from repro.core import right_size_buffer
from repro.errors import ConfigurationError
from repro.workloads import ClusterTrace


def stress_trace(per_server_w=60.0, seconds=2400, num_servers=6):
    """Constant overload: 360 W demand vs the budget set by the caller."""
    return ClusterTrace(
        np.full((num_servers, seconds), float(per_server_w)), 1.0,
        name="stress")


@pytest.fixture
def cluster():
    return dataclasses.replace(prototype_cluster(), utility_budget_w=260.0)


class TestSearch:
    def test_finds_feasible_capacity(self, cluster):
        result = right_size_buffer(
            stress_trace(seconds=1800), cluster,
            downtime_target_s=0.0, min_wh=20.0, max_wh=400.0,
            tolerance_wh=40.0)
        assert result.feasible
        assert result.downtime_s <= result.downtime_target_s
        assert 20.0 <= result.total_energy_wh <= 400.0

    def test_harder_target_needs_more_capacity(self, cluster):
        trace = stress_trace(seconds=2400)
        strict = right_size_buffer(trace, cluster, downtime_target_s=0.0,
                                   min_wh=20.0, max_wh=400.0,
                                   tolerance_wh=20.0)
        lax = right_size_buffer(trace, cluster,
                                downtime_target_s=3600.0,
                                min_wh=20.0, max_wh=400.0,
                                tolerance_wh=20.0)
        assert strict.feasible and lax.feasible
        assert strict.total_energy_wh >= lax.total_energy_wh

    def test_infeasible_when_even_max_fails(self, cluster):
        # Hours of heavy overload cannot be bridged by 60 Wh.
        result = right_size_buffer(
            stress_trace(per_server_w=70.0, seconds=3 * 3600), cluster,
            downtime_target_s=0.0, min_wh=20.0, max_wh=60.0,
            tolerance_wh=10.0)
        assert not result.feasible
        assert result.capex_dollars is None

    def test_min_suffices_short_circuit(self, cluster):
        # A trivial demand needs no search at all.
        calm = stress_trace(per_server_w=30.0, seconds=600)
        result = right_size_buffer(calm, cluster, downtime_target_s=0.0,
                                   min_wh=50.0, max_wh=400.0)
        assert result.feasible
        assert result.total_energy_wh == 50.0
        assert result.evaluations == 2  # upper probe + lower probe

    def test_capex_prices_the_blend(self, cluster):
        result = right_size_buffer(
            stress_trace(seconds=1200), cluster, downtime_target_s=0.0,
            min_wh=100.0, max_wh=200.0, tolerance_wh=100.0,
            sc_fraction=0.3)
        kwh = result.total_energy_wh / 1000.0
        expected = kwh * (0.7 * 300.0 + 0.3 * 10_000.0)
        assert result.capex_dollars == pytest.approx(expected, rel=1e-6)


class TestValidation:
    def test_rejects_bad_bracket(self, cluster):
        with pytest.raises(ConfigurationError):
            right_size_buffer(stress_trace(), cluster, min_wh=100.0,
                              max_wh=50.0)

    def test_rejects_negative_target(self, cluster):
        with pytest.raises(ConfigurationError):
            right_size_buffer(stress_trace(), cluster,
                              downtime_target_s=-1.0)

    def test_rejects_bad_tolerance(self, cluster):
        with pytest.raises(ConfigurationError):
            right_size_buffer(stress_trace(), cluster, tolerance_wh=0.0)
