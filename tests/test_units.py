"""Tests for unit conversions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestEnergyConversions:
    def test_wh_to_joules(self):
        assert units.wh_to_joules(1.0) == 3600.0

    def test_kwh_to_joules(self):
        assert units.kwh_to_joules(1.0) == 3_600_000.0

    def test_joules_to_wh(self):
        assert units.joules_to_wh(3600.0) == 1.0

    def test_joules_to_kwh(self):
        assert units.joules_to_kwh(3_600_000.0) == 1.0

    @given(st.floats(min_value=0.0, max_value=1e9))
    def test_wh_roundtrip(self, value):
        assert math.isclose(units.joules_to_wh(units.wh_to_joules(value)),
                            value, rel_tol=1e-12, abs_tol=1e-12)

    @given(st.floats(min_value=0.0, max_value=1e9))
    def test_kwh_roundtrip(self, value):
        assert math.isclose(units.joules_to_kwh(units.kwh_to_joules(value)),
                            value, rel_tol=1e-12, abs_tol=1e-12)


class TestChargeConversions:
    def test_ah_to_coulombs(self):
        assert units.ah_to_coulombs(1.0) == 3600.0

    def test_coulombs_to_ah(self):
        assert units.coulombs_to_ah(7200.0) == 2.0

    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_roundtrip(self, value):
        assert math.isclose(
            units.coulombs_to_ah(units.ah_to_coulombs(value)), value,
            rel_tol=1e-12, abs_tol=1e-12)


class TestTimeHelpers:
    def test_minutes(self):
        assert units.minutes(10) == 600.0

    def test_hours(self):
        assert units.hours(2) == 7200.0

    def test_days(self):
        assert units.days(1) == 86400.0

    def test_years(self):
        assert units.years(1) == 365.0 * 86400.0

    def test_hours_per_year_consistent(self):
        assert units.HOURS_PER_YEAR == 8760.0
        assert units.years(1) / units.hours(1) == pytest.approx(8760.0)


class TestClamp:
    def test_inside(self):
        assert units.clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert units.clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert units.clamp(2.0, 0.0, 1.0) == 1.0

    def test_at_bounds(self):
        assert units.clamp(0.0, 0.0, 1.0) == 0.0
        assert units.clamp(1.0, 0.0, 1.0) == 1.0

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError):
            units.clamp(0.5, 1.0, 0.0)

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.floats(min_value=-100, max_value=0),
           st.floats(min_value=0, max_value=100))
    def test_result_always_in_bounds(self, value, low, high):
        result = units.clamp(value, low, high)
        assert low <= result <= high
