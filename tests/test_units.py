"""Tests for unit conversions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestEnergyConversions:
    def test_wh_to_joules(self):
        assert units.wh_to_joules(1.0) == 3600.0

    def test_kwh_to_joules(self):
        assert units.kwh_to_joules(1.0) == 3_600_000.0

    def test_joules_to_wh(self):
        assert units.joules_to_wh(3600.0) == 1.0

    def test_joules_to_kwh(self):
        assert units.joules_to_kwh(3_600_000.0) == 1.0

    @given(st.floats(min_value=0.0, max_value=1e9))
    def test_wh_roundtrip(self, value):
        assert math.isclose(units.joules_to_wh(units.wh_to_joules(value)),
                            value, rel_tol=1e-12, abs_tol=1e-12)

    @given(st.floats(min_value=0.0, max_value=1e9))
    def test_kwh_roundtrip(self, value):
        assert math.isclose(units.joules_to_kwh(units.kwh_to_joules(value)),
                            value, rel_tol=1e-12, abs_tol=1e-12)


class TestChargeConversions:
    def test_ah_to_coulombs(self):
        assert units.ah_to_coulombs(1.0) == 3600.0

    def test_coulombs_to_ah(self):
        assert units.coulombs_to_ah(7200.0) == 2.0

    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_roundtrip(self, value):
        assert math.isclose(
            units.coulombs_to_ah(units.ah_to_coulombs(value)), value,
            rel_tol=1e-12, abs_tol=1e-12)


#: Finite floats spanning the magnitudes the models actually use,
#: including negative flows (discharge vs charge sign conventions).
_quantities = st.floats(min_value=-1e12, max_value=1e12,
                        allow_nan=False, allow_infinity=False)


class TestRoundTripProperties:
    """Exhaustive round trips in *both* directions for every pair."""

    @given(_quantities)
    def test_wh_joules_wh(self, value):
        assert math.isclose(units.joules_to_wh(units.wh_to_joules(value)),
                            value, rel_tol=1e-12, abs_tol=1e-12)

    @given(_quantities)
    def test_joules_wh_joules(self, value):
        assert math.isclose(units.wh_to_joules(units.joules_to_wh(value)),
                            value, rel_tol=1e-12, abs_tol=1e-12)

    @given(_quantities)
    def test_kwh_joules_kwh(self, value):
        assert math.isclose(units.joules_to_kwh(units.kwh_to_joules(value)),
                            value, rel_tol=1e-12, abs_tol=1e-12)

    @given(_quantities)
    def test_joules_kwh_joules(self, value):
        assert math.isclose(units.kwh_to_joules(units.joules_to_kwh(value)),
                            value, rel_tol=1e-12, abs_tol=1e-12)

    @given(_quantities)
    def test_ah_coulombs_ah(self, value):
        assert math.isclose(
            units.coulombs_to_ah(units.ah_to_coulombs(value)), value,
            rel_tol=1e-12, abs_tol=1e-12)

    @given(_quantities)
    def test_coulombs_ah_coulombs(self, value):
        assert math.isclose(
            units.ah_to_coulombs(units.coulombs_to_ah(value)), value,
            rel_tol=1e-12, abs_tol=1e-12)

    @given(_quantities)
    def test_kwh_is_thousand_wh(self, value):
        assert math.isclose(units.kwh_to_joules(value),
                            units.wh_to_joules(value * 1000.0),
                            rel_tol=1e-12, abs_tol=1e-12)

    @given(_quantities)
    def test_wh_and_ah_share_the_hour(self, value):
        # 1 Wh at 1 V moves exactly 1 Ah of charge: both scale by 3600 s.
        assert units.wh_to_joules(value) == units.ah_to_coulombs(value)

    @given(st.floats(min_value=0.0, max_value=1e9))
    def test_conversions_preserve_sign_and_monotonicity(self, value):
        assert units.wh_to_joules(value) >= 0.0
        assert units.wh_to_joules(-value) == -units.wh_to_joules(value)
        assert units.kwh_to_joules(value + 1.0) > units.kwh_to_joules(value)


class TestConversionConstantSanity:
    """The constants must stay mutually consistent, not just well-known."""

    def test_hour_is_sixty_minutes(self):
        assert units.SECONDS_PER_HOUR == 60.0 * units.SECONDS_PER_MINUTE

    def test_day_is_twenty_four_hours(self):
        assert units.SECONDS_PER_DAY == 24.0 * units.SECONDS_PER_HOUR

    def test_year_is_365_days(self):
        assert units.SECONDS_PER_YEAR == 365.0 * units.SECONDS_PER_DAY

    def test_hours_per_year_matches_seconds_per_year(self):
        assert (units.HOURS_PER_YEAR * units.SECONDS_PER_HOUR
                == units.SECONDS_PER_YEAR)

    def test_wh_is_watt_times_hour(self):
        assert units.wh_to_joules(1.0) == units.SECONDS_PER_HOUR
        assert units.ah_to_coulombs(1.0) == units.SECONDS_PER_HOUR

    def test_time_helpers_agree_with_constants(self):
        assert units.minutes(1.0) == units.SECONDS_PER_MINUTE
        assert units.hours(1.0) == units.SECONDS_PER_HOUR
        assert units.days(1.0) == units.SECONDS_PER_DAY
        assert units.years(1.0) == units.SECONDS_PER_YEAR


class TestTimeHelpers:
    def test_minutes(self):
        assert units.minutes(10) == 600.0

    def test_hours(self):
        assert units.hours(2) == 7200.0

    def test_days(self):
        assert units.days(1) == 86400.0

    def test_years(self):
        assert units.years(1) == 365.0 * 86400.0

    def test_hours_per_year_consistent(self):
        assert units.HOURS_PER_YEAR == 8760.0
        assert units.years(1) / units.hours(1) == pytest.approx(8760.0)


class TestClamp:
    def test_inside(self):
        assert units.clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert units.clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert units.clamp(2.0, 0.0, 1.0) == 1.0

    def test_at_bounds(self):
        assert units.clamp(0.0, 0.0, 1.0) == 0.0
        assert units.clamp(1.0, 0.0, 1.0) == 1.0

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError):
            units.clamp(0.5, 1.0, 0.0)

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.floats(min_value=-100, max_value=0),
           st.floats(min_value=0, max_value=100))
    def test_result_always_in_bounds(self, value, low, high):
        result = units.clamp(value, low, high)
        assert low <= result <= high
