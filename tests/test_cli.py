"""Tests for the command-line entry point."""

import pytest

from repro.__main__ import FIGURES, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert "HEB-D" in out

    def test_every_figure_has_a_subcommand(self):
        parser = build_parser()
        for name in FIGURES:
            args = parser.parse_args([name])
            assert args.command == name

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_run_requires_valid_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NOPE", "PR"])


class TestExecution:
    def test_fig04_runs(self, capsys):
        assert main(["fig04"]) == 0
        assert "lead-acid" in capsys.readouterr().out

    def test_fig15_runs(self, capsys):
        assert main(["fig15"]) == 0
        out = capsys.readouterr().out
        assert "break-even" in out

    def test_single_run(self, capsys):
        assert main(["run", "SCFirst", "TS", "--hours", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "energy efficiency" in out

    def test_single_run_with_budget(self, capsys):
        assert main(["run", "BaOnly", "TS", "--hours", "0.5",
                     "--budget", "240"]) == 0
        assert "SCFirst" not in capsys.readouterr().out
