"""Tests for the command-line entry point."""

import pytest

from repro.__main__ import FIGURES, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert "HEB-D" in out

    def test_every_figure_has_a_subcommand(self):
        parser = build_parser()
        for name in FIGURES:
            args = parser.parse_args([name])
            assert args.command == name

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_run_requires_valid_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "NOPE", "PR"])


class TestExecution:
    def test_fig04_runs(self, capsys):
        assert main(["fig04"]) == 0
        assert "lead-acid" in capsys.readouterr().out

    def test_fig15_runs(self, capsys):
        assert main(["fig15"]) == 0
        out = capsys.readouterr().out
        assert "break-even" in out

    def test_single_run(self, capsys):
        assert main(["run", "SCFirst", "TS", "--hours", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "energy efficiency" in out

    def test_single_run_with_budget(self, capsys):
        assert main(["run", "BaOnly", "TS", "--hours", "0.5",
                     "--budget", "240"]) == 0
        assert "SCFirst" not in capsys.readouterr().out


class TestRunnerFlags:
    def test_figure_subcommands_accept_runner_flags(self):
        parser = build_parser()
        args = parser.parse_args(["fig12", "--jobs", "4",
                                  "--cache", "/tmp/c", "--no-cache"])
        assert args.jobs == 4
        assert args.cache == "/tmp/c"
        assert args.no_cache

    def test_run_populates_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cli-cache"
        argv = ["run", "SCFirst", "TS", "--hours", "0.25",
                "--cache", str(cache_dir)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", str(cache_dir)]) == 0
        assert "entries         : 1" in capsys.readouterr().out

    def test_no_cache_leaves_directory_empty(self, tmp_path, capsys):
        cache_dir = tmp_path / "cli-cache"
        assert main(["run", "SCFirst", "TS", "--hours", "0.25",
                     "--cache", str(cache_dir), "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", str(cache_dir)]) == 0
        assert "entries         : 0" in capsys.readouterr().out

    def test_warm_rerun_matches_cold_output(self, tmp_path, capsys):
        argv = ["run", "BaFirst", "PR", "--hours", "0.25",
                "--cache", str(tmp_path / "c")]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == cold

    def test_cache_clear_empties_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cli-cache"
        assert main(["run", "SCFirst", "TS", "--hours", "0.25",
                     "--cache", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache", str(cache_dir)]) == 0
        assert "removed 1 cached result(s)" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache", str(cache_dir)]) == 0
        assert "entries         : 0" in capsys.readouterr().out

    def test_parallel_figure_run(self, capsys):
        assert main(["fig12", "--hours", "0.25", "--jobs", "2",
                     "--no-cache"]) == 0
        assert "HEB-D" in capsys.readouterr().out

    def test_invalid_jobs_is_a_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "SCFirst", "TS", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_uncreatable_cache_dir_is_a_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "SCFirst", "TS", "--cache", "/proc/nope/deeper"])
        assert excinfo.value.code == 2
