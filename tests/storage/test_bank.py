"""Tests for DeviceBank pooling."""

import pytest

from repro.config import BatteryConfig, SupercapConfig
from repro.errors import ConfigurationError
from repro.storage import DeviceBank, LeadAcidBattery, Supercapacitor


def make_bank(n=2, soc=1.0):
    return DeviceBank([Supercapacitor(SupercapConfig(), name=f"sc{i}",
                                      soc=soc) for i in range(n)])


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            DeviceBank([])

    def test_nominal_energy_sums(self):
        bank = make_bank(3)
        assert bank.nominal_energy_j == pytest.approx(
            3 * SupercapConfig().nominal_energy_j)

    def test_mixed_bank_allowed(self):
        bank = DeviceBank([Supercapacitor(SupercapConfig()),
                           LeadAcidBattery(BatteryConfig())])
        assert bank.stored_energy_j > 0


class TestFlows:
    def test_discharge_splits_across_members(self):
        bank = make_bank(2)
        result = bank.discharge(200.0, 1.0)
        assert result.achieved_w == pytest.approx(200.0, rel=1e-3)
        for device in bank.devices:
            assert device.telemetry.energy_out_j > 0

    def test_pool_outlasts_single_device(self):
        single = Supercapacitor(SupercapConfig())
        bank = make_bank(2)
        single_time = bank_time = 0
        while not single.discharge(150.0, 5.0).limited:
            single_time += 5
            if single_time > 40000:
                break
        while not bank.discharge(150.0, 5.0).limited:
            bank_time += 5
            if bank_time > 40000:
                break
        assert bank_time > single_time * 1.5

    def test_unbalanced_members_share_by_capability(self):
        strong = Supercapacitor(SupercapConfig(), name="strong", soc=1.0)
        weak = Supercapacitor(SupercapConfig(), name="weak", soc=0.05)
        bank = DeviceBank([strong, weak])
        bank.discharge(100.0, 1.0)
        assert (strong.telemetry.energy_out_j
                > weak.telemetry.energy_out_j)

    def test_charge_splits(self):
        bank = make_bank(2, soc=0.2)
        result = bank.charge(200.0, 1.0)
        assert result.achieved_w > 0
        for device in bank.devices:
            assert device.telemetry.energy_in_j > 0

    def test_depleted_bank_is_limited(self):
        bank = make_bank(2, soc=0.0)
        result = bank.discharge(100.0, 1.0)
        assert result.limited
        assert result.achieved_w == 0.0

    def test_rest_propagates(self):
        bank = DeviceBank([LeadAcidBattery(BatteryConfig())])
        bank.rest(100.0)
        assert bank.devices[0].telemetry.rest_time_s == pytest.approx(100.0)


class TestAggregation:
    def test_usable_energy_sums_members(self):
        bank = make_bank(2, soc=0.5)
        assert bank.usable_energy_j == pytest.approx(
            sum(d.usable_energy_j for d in bank.devices))

    def test_dod_propagates(self):
        bank = make_bank(2)
        bank.set_depth_of_discharge(0.5)
        for device in bank.devices:
            assert device.soc_floor == pytest.approx(0.5)

    def test_reset_refills_everyone(self):
        bank = make_bank(2, soc=0.3)
        bank.discharge(100.0, 10.0)
        bank.reset(1.0)
        assert bank.soc == pytest.approx(1.0)
        assert bank.telemetry.energy_out_j == 0.0

    def test_max_powers_sum(self):
        single_power = Supercapacitor(SupercapConfig()).max_discharge_power_w(1.0)
        bank = make_bank(2)
        assert bank.max_discharge_power_w(1.0) == pytest.approx(
            2 * single_power, rel=1e-6)
