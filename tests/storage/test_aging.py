"""Tests for battery aging (capacity fade + resistance growth)."""

import pytest

from repro.config import prototype_buffer
from repro.core import make_policy
from repro.errors import ConfigurationError
from repro.storage import LeadAcidBattery


@pytest.fixture
def battery(battery_config):
    return LeadAcidBattery(battery_config)


class TestAging:
    def test_fresh_battery_has_zero_age(self, battery):
        assert battery.age_fraction == 0.0

    def test_fade_shrinks_capacity(self, battery):
        fresh_nominal = battery.nominal_energy_j
        battery.apply_aging(0.2)
        assert battery.nominal_energy_j == pytest.approx(
            0.8 * fresh_nominal)

    def test_fade_preserves_soc(self, battery):
        battery.reset(0.5)
        battery.apply_aging(0.2)
        assert battery.soc == pytest.approx(0.5, abs=0.01)

    def test_resistance_growth(self, battery, battery_config):
        battery.apply_aging(0.2, resistance_growth=2.0)
        assert battery.internal_resistance_ohm == pytest.approx(
            battery_config.internal_resistance_ohm * 1.2)

    def test_aged_battery_delivers_less_energy(self, battery_config):
        fresh = LeadAcidBattery(battery_config)
        aged = LeadAcidBattery(battery_config)
        aged.apply_aging(0.25, resistance_growth=2.0)

        def drain(device):
            total = 0.0
            for _ in range(30000):
                result = device.discharge(140.0, 1.0)
                total += result.energy_j
                if result.limited:
                    break
            return total

        assert drain(aged) < drain(fresh)

    def test_aging_monotone(self, battery):
        battery.apply_aging(0.2)
        with pytest.raises(ConfigurationError):
            battery.apply_aging(0.1)

    def test_rejects_bad_fade(self, battery):
        with pytest.raises(ConfigurationError):
            battery.apply_aging(1.0)
        with pytest.raises(ConfigurationError):
            battery.apply_aging(-0.1)
        with pytest.raises(ConfigurationError):
            battery.apply_aging(0.1, resistance_growth=0.5)

    def test_reset_keeps_age(self, battery):
        fresh_nominal = battery.nominal_energy_j
        battery.apply_aging(0.2)
        battery.reset(1.0)
        assert battery.age_fraction == 0.2
        assert battery.nominal_energy_j == pytest.approx(
            0.8 * fresh_nominal)

    def test_incremental_aging(self, battery):
        battery.apply_aging(0.1)
        battery.apply_aging(0.2)
        assert battery.age_fraction == 0.2


class TestAgingAdaptation:
    def test_heb_d_adapts_pat_to_aged_battery(self):
        """Section 5.3: the online optimizer corrects for aging — a
        fresh-profiled PAT fed aged-battery outcomes shifts load onto
        the SCs."""
        import dataclasses

        from repro.config import prototype_cluster
        from repro.sim import HybridBuffers, Simulation
        from repro.units import hours
        from repro.workloads import get_workload

        hybrid = prototype_buffer()
        policy = make_policy("HEB-D", hybrid=hybrid)
        buffers = HybridBuffers(hybrid)
        buffers.battery.apply_aging(0.3, resistance_growth=2.5)
        cluster = dataclasses.replace(prototype_cluster(),
                                      utility_budget_w=242.0)
        trace = get_workload("DA", duration_s=hours(4), seed=2)
        result = Simulation(trace, policy, buffers,
                            cluster_config=cluster).run()
        # The run completes and the table learned from the aged outcomes
        # (new online entries and/or r-nudges).
        online = [e for e in policy.pat.entries() if e.source == "online"]
        nudged = [e for e in policy.pat.entries() if e.updates > 0]
        assert online or nudged
        assert result.metrics.energy_efficiency > 0.6
