"""Device-protocol conformance: every storage type obeys the same rules.

The engine treats batteries, supercapacitors and banks uniformly through
:class:`EnergyStorageDevice`; this suite runs one set of invariants
against every concrete implementation so interface drift is caught at the
protocol level rather than deep inside a simulation.
"""

import pytest

from repro.config import BatteryConfig, SupercapConfig
from repro.errors import ConfigurationError
from repro.storage import DeviceBank, LeadAcidBattery, Supercapacitor


def make_battery():
    return LeadAcidBattery(BatteryConfig())


def make_supercap():
    return Supercapacitor(SupercapConfig())


def make_battery_bank():
    return DeviceBank([LeadAcidBattery(BatteryConfig(), name=f"b{i}")
                       for i in range(2)])


def make_sc_bank():
    return DeviceBank([Supercapacitor(SupercapConfig(), name=f"s{i}")
                       for i in range(2)])


def make_mixed_bank():
    return DeviceBank([LeadAcidBattery(BatteryConfig()),
                       Supercapacitor(SupercapConfig())])


FACTORIES = {
    "battery": make_battery,
    "supercap": make_supercap,
    "battery-bank": make_battery_bank,
    "sc-bank": make_sc_bank,
    "mixed-bank": make_mixed_bank,
}


@pytest.fixture(params=list(FACTORIES), ids=list(FACTORIES))
def device(request):
    return FACTORIES[request.param]()


class TestProtocolConformance:
    def test_fresh_device_is_full(self, device):
        assert device.soc == pytest.approx(1.0, abs=0.01)
        assert device.is_full
        assert not device.is_depleted or device.usable_energy_j <= 1e-9

    def test_nominal_positive(self, device):
        assert device.nominal_energy_j > 0
        assert device.stored_energy_j > 0

    def test_voltage_positive(self, device):
        assert device.open_circuit_voltage() > 0

    def test_discharge_returns_truthful_result(self, device):
        result = device.discharge(50.0, 1.0)
        assert 0.0 <= result.achieved_w <= 50.0 + 1e-6
        assert result.energy_j == pytest.approx(result.achieved_w * 1.0,
                                                rel=1e-6)
        assert result.loss_j >= 0.0

    def test_discharge_reduces_stored_energy(self, device):
        before = device.stored_energy_j
        device.discharge(50.0, 10.0)
        assert device.stored_energy_j < before

    def test_max_discharge_power_w_is_achievable(self, device):
        limit = device.max_discharge_power_w(1.0)
        result = device.discharge(limit, 1.0)
        assert result.achieved_w >= 0.5 * limit

    def test_charge_when_not_full_accepts_something(self, device):
        device.reset(0.5)
        result = device.charge(20.0, 1.0)
        assert result.achieved_w > 0.0

    def test_charge_when_full_accepts_nothing(self, device):
        result = device.charge(20.0, 1.0)
        assert result.achieved_w == pytest.approx(0.0, abs=1e-6)

    def test_rest_preserves_or_recovers(self, device):
        device.discharge(100.0, 30.0)
        stored = device.stored_energy_j
        device.rest(600.0)
        # Resting never loses energy in these models (no self-discharge).
        assert device.stored_energy_j >= stored - 1e-6

    def test_dod_floor_restricts_usable(self, device):
        device.reset(1.0)
        unrestricted = device.usable_energy_j
        device.set_depth_of_discharge(0.5)
        assert device.usable_energy_j <= unrestricted
        assert device.usable_energy_j == pytest.approx(
            device.stored_energy_j - 0.5 * device.nominal_energy_j,
            rel=0.1)

    def test_reset_restores_soc_and_telemetry(self, device):
        device.discharge(80.0, 10.0)
        device.reset(1.0)
        assert device.soc == pytest.approx(1.0, abs=0.01)
        assert device.telemetry.energy_out_j == 0.0

    def test_validation_shared(self, device):
        with pytest.raises(ConfigurationError):
            device.discharge(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            device.charge(10.0, 0.0)
        with pytest.raises(ConfigurationError):
            device.set_depth_of_discharge(2.0)

    def test_telemetry_accumulates_both_directions(self, device):
        device.reset(0.5)
        device.discharge(30.0, 5.0)
        device.charge(20.0, 5.0)
        assert device.telemetry.energy_out_j > 0.0
        assert device.telemetry.energy_in_j > 0.0

    def test_repeated_discharge_eventually_limits(self, device):
        limited = False
        for _ in range(100000):
            result = device.discharge(200.0, 10.0)
            if result.limited:
                limited = True
                break
        assert limited

    def test_depleted_device_reports_depleted(self, device):
        for _ in range(100000):
            if device.discharge(200.0, 10.0).limited:
                break
        # After hitting the limit at high power the device may still hold
        # usable energy (voltage limits); drain gently to the floor.
        for _ in range(100000):
            if device.discharge(5.0, 60.0).limited:
                break
        assert device.usable_energy_j < 0.1 * device.nominal_energy_j
