"""Tests for the Ah-throughput lifetime model."""

import pytest

from repro.config import BatteryConfig
from repro.errors import ConfigurationError
from repro.storage import AhThroughputLifetimeModel
from repro.units import SECONDS_PER_YEAR


@pytest.fixture
def model(battery_config):
    return AhThroughputLifetimeModel(battery_config)


class TestTotals:
    def test_total_life_throughput(self, model, battery_config):
        expected = (battery_config.rated_cycles * battery_config.rated_dod
                    * battery_config.capacity_ah)
        assert model.total_life_throughput_ah == pytest.approx(expected)

    def test_fresh_model_has_no_wear(self, model):
        assert model.life_consumed_fraction == 0.0
        assert model.report().estimated_lifetime_years == float("inf")


class TestWeights:
    def test_gentle_discharge_weight_is_soc_only(self, model,
                                                 battery_config):
        weight = model.weight(battery_config.reference_current_a, 1.0)
        assert weight == pytest.approx(1.0)

    def test_high_current_raises_weight(self, model, battery_config):
        low = model.weight(battery_config.reference_current_a, 1.0)
        high = model.weight(5.0 * battery_config.reference_current_a, 1.0)
        assert high > low

    def test_low_soc_raises_weight(self, model):
        assert model.weight(1.0, 0.2) > model.weight(1.0, 0.9)

    def test_zero_stress_exponent_ignores_current(self, battery_config):
        model = AhThroughputLifetimeModel(battery_config,
                                          current_stress_exponent=0.0)
        assert model.weight(100.0, 1.0) == pytest.approx(1.0)

    def test_rejects_negative_stress(self, battery_config):
        with pytest.raises(ConfigurationError):
            AhThroughputLifetimeModel(battery_config,
                                      current_stress_exponent=-1.0)
        with pytest.raises(ConfigurationError):
            AhThroughputLifetimeModel(battery_config, low_soc_stress=-0.5)


class TestObservation:
    def test_observe_accumulates_raw_throughput(self, model):
        model.observe_discharge(3.6, 1000.0, soc=1.0)
        assert model.report().raw_throughput_ah == pytest.approx(1.0)

    def test_effective_at_least_raw(self, model):
        model.observe_discharge(10.0, 600.0, soc=0.5)
        report = model.report()
        assert report.effective_throughput_ah >= report.raw_throughput_ah

    def test_rejects_bad_args(self, model):
        with pytest.raises(ConfigurationError):
            model.observe_discharge(-1.0, 10.0, 0.5)
        with pytest.raises(ConfigurationError):
            model.observe_discharge(1.0, 0.0, 0.5)
        with pytest.raises(ConfigurationError):
            model.observe_idle(0.0)

    def test_idle_extends_window_without_wear(self, model):
        model.observe_discharge(1.0, 600.0, 1.0)
        wear_before = model.life_consumed_fraction
        lifetime_before = model.report().estimated_lifetime_years
        model.observe_idle(6000.0)
        assert model.life_consumed_fraction == wear_before
        assert model.report().estimated_lifetime_years > lifetime_before


class TestLifetimeEstimate:
    def test_lifetime_scales_inversely_with_usage(self, battery_config):
        light = AhThroughputLifetimeModel(battery_config)
        heavy = AhThroughputLifetimeModel(battery_config)
        window = 3600.0
        light.observe_discharge(1.0, window, 1.0)
        heavy.observe_discharge(4.0, window, 1.0)
        assert (light.report().estimated_lifetime_years
                > heavy.report().estimated_lifetime_years)

    def test_continuous_rated_usage_lifetime(self, battery_config):
        """Discharging the full life throughput in one year -> one year."""
        model = AhThroughputLifetimeModel(battery_config,
                                          current_stress_exponent=0.0,
                                          low_soc_stress=0.0)
        total_ah = model.total_life_throughput_ah
        current = total_ah * 3600.0 / SECONDS_PER_YEAR  # amps for 1 year
        model.observe_discharge(current, SECONDS_PER_YEAR, soc=1.0)
        assert model.report().estimated_lifetime_years == pytest.approx(
            1.0, rel=0.01)

    def test_equivalent_full_cycles(self, battery_config):
        model = AhThroughputLifetimeModel(battery_config,
                                          current_stress_exponent=0.0,
                                          low_soc_stress=0.0)
        cycle_ah = battery_config.rated_dod * battery_config.capacity_ah
        model.observe_discharge(1.0, cycle_ah * 3600.0, soc=1.0)
        assert model.report().equivalent_full_cycles == pytest.approx(
            1.0, rel=1e-6)

    def test_reset_clears_state(self, model):
        model.observe_discharge(2.0, 600.0, 0.8)
        model.reset()
        assert model.life_consumed_fraction == 0.0
        assert model.report().observation_seconds == 0.0
