"""Tests for the supercapacitor model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SupercapConfig
from repro.errors import ConfigurationError
from repro.storage import Supercapacitor


@pytest.fixture
def fresh(supercap_config):
    return Supercapacitor(supercap_config)


class TestState:
    def test_starts_at_max_voltage(self, fresh, supercap_config):
        assert fresh.voltage == pytest.approx(supercap_config.max_voltage_v)

    def test_nominal_energy_is_usable_window(self, fresh, supercap_config):
        assert fresh.nominal_energy_j == pytest.approx(
            supercap_config.nominal_energy_j)

    def test_reset_to_soc_inverts_stored_energy(self, fresh):
        fresh.reset(0.5)
        assert fresh.stored_energy_j == pytest.approx(
            0.5 * fresh.nominal_energy_j, rel=1e-9)

    def test_empty_at_min_voltage(self, supercap_config):
        sc = Supercapacitor(supercap_config, soc=0.0)
        assert sc.voltage == pytest.approx(supercap_config.min_voltage_v)
        assert sc.stored_energy_j == pytest.approx(0.0, abs=1e-6)

    def test_energy_below_cutoff_is_unusable(self, supercap_config):
        sc = Supercapacitor(supercap_config, soc=0.0)
        # Physical charge remains on the cap (q = C * Vmin) but none of it
        # is usable.
        assert sc.is_depleted


class TestDischarge:
    def test_meets_modest_request(self, fresh):
        result = fresh.discharge(140.0, 1.0)
        assert result.achieved_w == pytest.approx(140.0, rel=1e-4)
        assert not result.limited

    def test_linear_voltage_decline(self, fresh):
        """Figure 5: SC voltage declines linearly under constant power...
        (approximately — constant power gives slight curvature; we check
        monotone decline with near-constant slope)."""
        voltages = []
        for _ in range(300):
            result = fresh.discharge(100.0, 1.0)
            voltages.append(result.terminal_voltage_v)
        diffs = np.diff(voltages)
        assert np.all(diffs < 0)
        # Slope variation stays small over the usable window.
        assert abs(diffs[-1]) < 3.0 * abs(diffs[0])

    def test_stops_near_cutoff_voltage(self, fresh, supercap_config):
        # Delivery becomes power-limited slightly above the cut-off (the
        # ESR max-power point), never below it.
        for _ in range(10000):
            result = fresh.discharge(200.0, 1.0)
            if result.limited:
                break
        assert (supercap_config.min_voltage_v * 0.999
                <= fresh.voltage
                <= supercap_config.min_voltage_v * 1.15)

    def test_depleted_delivers_nothing(self, supercap_config):
        sc = Supercapacitor(supercap_config, soc=0.0)
        result = sc.discharge(50.0, 1.0)
        assert result.achieved_w == 0.0
        assert result.limited

    def test_rejects_negative_power(self, fresh):
        with pytest.raises(ConfigurationError):
            fresh.discharge(-1.0, 1.0)

    def test_high_current_allowed(self, fresh):
        """SCs deliver high currents without a chemistry limit."""
        result = fresh.discharge(800.0, 1.0)
        assert result.achieved_w > 500.0

    def test_dod_floor_respected(self, fresh):
        fresh.set_depth_of_discharge(0.5)
        for _ in range(5000):
            result = fresh.discharge(100.0, 1.0)
            if result.limited:
                break
        assert fresh.soc >= 0.5 - 0.02


class TestCharge:
    def test_fast_charging_accepted(self, supercap_config):
        """No upper-bound charging current (relative to batteries)."""
        sc = Supercapacitor(supercap_config, soc=0.1)
        result = sc.charge(500.0, 1.0)
        assert result.achieved_w == pytest.approx(500.0, rel=1e-3)

    def test_stops_at_max_voltage(self, supercap_config):
        sc = Supercapacitor(supercap_config, soc=0.9)
        for _ in range(10000):
            result = sc.charge(300.0, 1.0)
            if result.achieved_w <= 0.0:
                break
        assert sc.voltage <= supercap_config.max_voltage_v * 1.001

    def test_full_accepts_nothing(self, fresh):
        result = fresh.charge(100.0, 1.0)
        assert result.achieved_w == 0.0

    def test_esr_loss_recorded(self, supercap_config):
        sc = Supercapacitor(supercap_config, soc=0.2)
        result = sc.charge(200.0, 1.0)
        assert result.loss_j > 0.0


class TestEfficiency:
    def test_round_trip_efficiency_high(self, supercap_config):
        """Section 3.1: SCs achieve 90-95% round-trip efficiency.  A single
        module at prototype loads lands in/near that band; the pooled
        prototype configuration lands inside it (see benchmarks)."""
        from repro.storage import round_trip_efficiency
        sc = Supercapacitor(supercap_config)
        efficiency = round_trip_efficiency(sc, 140.0, 200.0)
        assert 0.85 <= efficiency <= 1.0

    def test_sc_beats_battery_efficiency(self, supercap_config,
                                         battery_config):
        from repro.storage import LeadAcidBattery, round_trip_efficiency
        sc_eff = round_trip_efficiency(
            Supercapacitor(supercap_config), 140.0, 200.0)
        battery_eff = round_trip_efficiency(
            LeadAcidBattery(battery_config), 140.0, 25.0)
        assert sc_eff > battery_eff


class TestConservation:
    def test_energy_balance_over_cycle(self, supercap_config):
        """Energy out + losses == energy in + drawdown over a full cycle."""
        sc = Supercapacitor(supercap_config, soc=1.0)
        out = loss = 0.0
        while True:
            result = sc.discharge(150.0, 1.0)
            out += result.energy_j
            loss += result.loss_j
            if result.limited:
                break
        stored_after = sc.stored_energy_j
        drawdown = sc.nominal_energy_j - stored_after
        assert out + loss == pytest.approx(drawdown, rel=0.02)


class TestProperties:
    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=1.0, max_value=600.0),
           st.floats(min_value=0.1, max_value=30.0))
    @settings(max_examples=60, deadline=None)
    def test_discharge_bounded_by_request(self, soc, power, dt):
        sc = Supercapacitor(SupercapConfig(), soc=soc)
        result = sc.discharge(power, dt)
        assert result.achieved_w <= power * (1.0 + 1e-6)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=1.0, max_value=600.0))
    @settings(max_examples=60, deadline=None)
    def test_voltage_stays_in_window(self, soc, power):
        config = SupercapConfig()
        sc = Supercapacitor(config, soc=soc)
        sc.discharge(power, 10.0)
        sc.charge(power, 10.0)
        assert (config.min_voltage_v - 1e-6 <= sc.voltage
                <= config.max_voltage_v + 1e-6)

    @given(st.floats(min_value=0.1, max_value=0.9),
           st.floats(min_value=10.0, max_value=300.0))
    @settings(max_examples=60, deadline=None)
    def test_stored_energy_bounded_by_charge_input(self, soc, power):
        """Second law: stored energy cannot grow by more than was put in."""
        sc = Supercapacitor(SupercapConfig(), soc=soc)
        before = sc.stored_energy_j
        charge = sc.charge(power, 5.0)
        after = sc.stored_energy_j
        assert after - before <= charge.energy_j + 1e-6
