"""Tests for the lead-acid battery model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import BatteryConfig
from repro.errors import ConfigurationError
from repro.storage import LeadAcidBattery


@pytest.fixture
def fresh(battery_config):
    return LeadAcidBattery(battery_config)


class TestState:
    def test_starts_full(self, fresh):
        assert fresh.soc == pytest.approx(1.0)
        assert not fresh.is_depleted

    def test_nominal_energy_matches_config(self, fresh, battery_config):
        assert fresh.nominal_energy_j == battery_config.nominal_energy_j

    def test_dod_floor_from_config(self, fresh, battery_config):
        assert fresh.soc_floor == pytest.approx(1.0 - battery_config.rated_dod)

    def test_usable_excludes_floor(self, fresh):
        expected = fresh.stored_energy_j - fresh.soc_floor * fresh.nominal_energy_j
        assert fresh.usable_energy_j == pytest.approx(expected)

    def test_reset_to_partial_soc(self, fresh):
        fresh.reset(0.5)
        assert fresh.soc == pytest.approx(0.5)

    def test_set_dod_rejects_out_of_range(self, fresh):
        with pytest.raises(ConfigurationError):
            fresh.set_depth_of_discharge(0.0)
        with pytest.raises(ConfigurationError):
            fresh.set_depth_of_discharge(1.1)


class TestVoltage:
    def test_full_battery_at_nominal_voltage(self, fresh, battery_config):
        assert fresh.open_circuit_voltage() == pytest.approx(
            battery_config.nominal_voltage_v)

    def test_voltage_sags_under_sustained_load(self, fresh):
        v_before = fresh.open_circuit_voltage()
        for _ in range(600):
            fresh.discharge(140.0, 1.0)
        assert fresh.open_circuit_voltage() < v_before

    def test_voltage_recovers_after_rest(self, fresh):
        for _ in range(600):
            fresh.discharge(140.0, 1.0)
        v_loaded = fresh.open_circuit_voltage()
        fresh.rest(1800.0)
        assert fresh.open_circuit_voltage() > v_loaded

    def test_heavier_load_sags_faster(self, battery_config):
        """Figure 5: batteries show sharper drops at larger demands."""
        light = LeadAcidBattery(battery_config)
        heavy = LeadAcidBattery(battery_config)
        for _ in range(300):
            light.discharge(70.0, 1.0)
            heavy.discharge(280.0, 1.0)
        assert (heavy.open_circuit_voltage()
                < light.open_circuit_voltage())


class TestDischarge:
    def test_meets_modest_request(self, fresh):
        result = fresh.discharge(70.0, 1.0)
        assert result.achieved_w == pytest.approx(70.0, rel=1e-6)
        assert not result.limited

    def test_energy_equals_power_times_dt(self, fresh):
        result = fresh.discharge(100.0, 5.0)
        assert result.energy_j == pytest.approx(result.achieved_w * 5.0)

    def test_reduces_stored_energy(self, fresh):
        before = fresh.stored_energy_j
        fresh.discharge(100.0, 10.0)
        assert fresh.stored_energy_j < before

    def test_zero_power_is_noop_flow(self, fresh):
        result = fresh.discharge(0.0, 1.0)
        assert result.achieved_w == 0.0
        assert not result.limited

    def test_rejects_negative_power(self, fresh):
        with pytest.raises(ConfigurationError):
            fresh.discharge(-1.0, 1.0)

    def test_rejects_nonpositive_dt(self, fresh):
        with pytest.raises(ConfigurationError):
            fresh.discharge(10.0, 0.0)

    def test_absurd_request_is_limited(self, fresh):
        result = fresh.discharge(100_000.0, 1.0)
        assert result.limited
        assert result.achieved_w < 100_000.0

    def test_depleted_battery_delivers_nothing(self, fresh):
        fresh.reset(0.0)
        result = fresh.discharge(50.0, 1.0)
        assert result.achieved_w == 0.0
        assert result.limited

    def test_respects_dod_floor(self, fresh):
        fresh.set_depth_of_discharge(0.3)
        for _ in range(3000):
            fresh.discharge(100.0, 10.0)
        assert fresh.soc >= 0.7 - 0.02

    def test_terminal_voltage_below_ocv(self, fresh):
        result = fresh.discharge(140.0, 1.0)
        assert result.terminal_voltage_v < fresh.config.nominal_voltage_v

    def test_peukert_less_usable_energy_at_high_current(self, battery_config):
        """Peukert's law: large discharge current -> less usable capacity."""
        slow = LeadAcidBattery(battery_config)
        fast = LeadAcidBattery(battery_config)
        slow_energy = 0.0
        fast_energy = 0.0
        for _ in range(40000):
            result = slow.discharge(50.0, 1.0)
            slow_energy += result.energy_j
            if result.limited:
                break
        for _ in range(40000):
            result = fast.discharge(250.0, 1.0)
            fast_energy += result.energy_j
            if result.limited:
                break
        assert fast_energy < slow_energy


class TestCharge:
    def test_accepts_power_when_empty(self, fresh):
        fresh.reset(0.3)
        result = fresh.charge(20.0, 1.0)
        assert result.achieved_w > 0.0

    def test_respects_charge_current_limit(self, fresh, battery_config):
        fresh.reset(0.2)
        result = fresh.charge(10_000.0, 1.0)
        max_power = battery_config.max_charge_current_a * (
            result.terminal_voltage_v)
        assert result.achieved_w <= max_power * 1.01

    def test_full_battery_accepts_nothing(self, fresh):
        result = fresh.charge(50.0, 1.0)
        assert result.achieved_w == 0.0

    def test_increases_stored_energy(self, fresh):
        fresh.reset(0.4)
        before = fresh.stored_energy_j
        for _ in range(60):
            fresh.charge(25.0, 10.0)
        assert fresh.stored_energy_j > before

    def test_charge_has_losses(self, fresh):
        fresh.reset(0.4)
        result = fresh.charge(25.0, 10.0)
        assert result.loss_j > 0.0

    def test_rejects_negative_power(self, fresh):
        with pytest.raises(ConfigurationError):
            fresh.charge(-5.0, 1.0)


class TestTelemetry:
    def test_counts_discharge_energy(self, fresh):
        fresh.discharge(100.0, 10.0)
        assert fresh.telemetry.energy_out_j == pytest.approx(1000.0, rel=1e-6)

    def test_counts_throughput(self, fresh):
        result = fresh.discharge(100.0, 10.0)
        assert fresh.telemetry.discharge_throughput_c == pytest.approx(
            result.current_a * 10.0)

    def test_tracks_peak_current(self, fresh):
        fresh.discharge(70.0, 1.0)
        fresh.discharge(200.0, 1.0)
        small = fresh.telemetry.peak_discharge_current_a
        fresh.discharge(70.0, 1.0)
        assert fresh.telemetry.peak_discharge_current_a == small

    def test_reset_clears_telemetry(self, fresh):
        fresh.discharge(100.0, 10.0)
        fresh.reset()
        assert fresh.telemetry.energy_out_j == 0.0


class TestRoundTrip:
    def test_round_trip_efficiency_below_085(self, battery_config):
        """The paper: lead-acid is below 80% 'even in the best case'.
        We allow a small margin above to avoid over-fitting."""
        from repro.storage import round_trip_efficiency
        battery = LeadAcidBattery(battery_config)
        efficiency = round_trip_efficiency(battery, 70.0, 25.0)
        assert efficiency < 0.85

    def test_efficiency_decreases_with_load(self, battery_config):
        """Figure 3: one-time discharge efficiency drops with more servers."""
        from repro.storage import round_trip_efficiency
        efficiencies = []
        for power in (70.0, 140.0, 280.0):
            battery = LeadAcidBattery(battery_config)
            efficiencies.append(round_trip_efficiency(battery, power, 25.0))
        assert efficiencies[0] > efficiencies[1] > efficiencies[2]


class TestProperties:
    @given(st.floats(min_value=1.0, max_value=400.0),
           st.floats(min_value=0.1, max_value=60.0))
    @settings(max_examples=50, deadline=None)
    def test_discharge_energy_never_exceeds_request(self, power, dt):
        battery = LeadAcidBattery(BatteryConfig())
        result = battery.discharge(power, dt)
        assert result.achieved_w <= power * (1.0 + 1e-9)
        assert result.energy_j <= power * dt * (1.0 + 1e-9)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=1.0, max_value=300.0))
    @settings(max_examples=50, deadline=None)
    def test_soc_stays_in_unit_interval(self, soc, power):
        battery = LeadAcidBattery(BatteryConfig())
        battery.reset(soc)
        battery.discharge(power, 30.0)
        battery.charge(power, 30.0)
        assert 0.0 <= battery.soc <= 1.0 + 1e-9
