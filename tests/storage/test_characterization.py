"""Tests for the characterization (test-bed) experiments of Section 3.1."""

import pytest

from repro.config import BatteryConfig, SupercapConfig
from repro.errors import ConfigurationError
from repro.storage import (
    LeadAcidBattery,
    Supercapacitor,
    constant_power_charge,
    constant_power_discharge,
    discharge_voltage_curve,
    recovery_experiment,
    round_trip_efficiency,
)


class TestConstantPowerDischarge:
    def test_runs_until_limited(self, supercap_config):
        sc = Supercapacitor(supercap_config)
        result = constant_power_discharge(sc, 140.0, dt=1.0)
        assert result.runtime_s > 0
        assert result.energy_delivered_j > 0

    def test_higher_power_shorter_runtime(self, supercap_config):
        fast = constant_power_discharge(
            Supercapacitor(supercap_config), 280.0)
        slow = constant_power_discharge(
            Supercapacitor(supercap_config), 70.0)
        assert fast.runtime_s < slow.runtime_s

    def test_rejects_nonpositive_power(self, supercap_config):
        with pytest.raises(ConfigurationError):
            constant_power_discharge(Supercapacitor(supercap_config), 0.0)

    def test_respects_max_time(self, battery_config):
        battery = LeadAcidBattery(battery_config)
        result = constant_power_discharge(battery, 10.0, dt=1.0,
                                          max_time_s=30.0)
        assert result.runtime_s <= 30.0


class TestConstantPowerCharge:
    def test_fills_device(self, supercap_config):
        sc = Supercapacitor(supercap_config, soc=0.2)
        constant_power_charge(sc, 200.0, dt=1.0)
        assert sc.soc > 0.99

    def test_battery_charge_limited_by_current_ceiling(self, battery_config):
        battery = LeadAcidBattery(battery_config)
        battery.reset(0.2)
        result = constant_power_charge(battery, 500.0, dt=1.0,
                                       max_time_s=60.0)
        # At ~26 V and 1.1 A the battery can accept only ~30 W.
        assert max(result.powers_w) < 60.0


class TestRoundTrip:
    def test_sc_in_paper_band_for_pooled_module(self):
        """The prototype SC pool (scaled) lands in the 90-95% band."""
        config = SupercapConfig().scaled_to_energy(
            2.5 * SupercapConfig().nominal_energy_j)
        efficiency = round_trip_efficiency(
            Supercapacitor(config), 280.0, 300.0)
        assert 0.90 <= efficiency <= 0.97

    def test_battery_below_sc(self, battery_config, supercap_config):
        battery_eff = round_trip_efficiency(
            LeadAcidBattery(battery_config), 140.0, 25.0)
        sc_eff = round_trip_efficiency(
            Supercapacitor(supercap_config), 140.0, 200.0)
        assert battery_eff < sc_eff


class TestRecovery:
    def test_recovery_gain_in_paper_band(self, battery_config):
        """Section 3.1: rest-interleaved discharge recovers 6-24%."""
        result = recovery_experiment(
            lambda: LeadAcidBattery(battery_config),
            power_w=140.0, burst_s=300.0, rest_s=900.0, cycles=10)
        assert 0.03 <= result.recovery_gain <= 0.40
        assert result.rested_energy_j >= result.one_shot_energy_j

    def test_onoff_overhead_accounted(self, battery_config):
        result = recovery_experiment(
            lambda: LeadAcidBattery(battery_config),
            power_w=140.0, burst_s=300.0, rest_s=600.0, cycles=4,
            restart_energy_j=3000.0)
        assert result.onoff_overhead_j > 0


class TestVoltageCurves:
    def test_battery_sharper_drop_at_higher_power(self, battery_config):
        """Figure 5's battery panel."""
        drops = []
        for power in (70.0, 280.0):
            curve = discharge_voltage_curve(
                LeadAcidBattery(battery_config), power, max_time_s=120.0)
            drops.append(curve.voltages_v[0] - curve.voltages_v[-1])
        assert drops[1] > drops[0]

    def test_sc_curve_independent_shape(self, supercap_config):
        """Figure 5's SC panel: decline is linear at any power."""
        curve = discharge_voltage_curve(
            Supercapacitor(supercap_config), 140.0)
        assert curve.voltages_v[0] > curve.voltages_v[-1]
        assert len(curve.voltages_v) > 10
