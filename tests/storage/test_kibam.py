"""Tests for the KiBaM two-well core."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.storage.kibam import (
    KiBaMState,
    kibam_max_charge_current,
    kibam_max_discharge_current,
    kibam_step,
)

CAPACITY = 4.4 * 3600.0  # coulombs
C_FRACTION = 0.62
K_RATE = 4.5e-4


def full_state(soc: float = 1.0) -> KiBaMState:
    return KiBaMState.at_soc(CAPACITY, C_FRACTION, K_RATE, soc)


class TestState:
    def test_at_soc_splits_by_c(self):
        state = full_state(1.0)
        assert state.available_c == pytest.approx(CAPACITY * C_FRACTION)
        assert state.bound_c == pytest.approx(CAPACITY * (1 - C_FRACTION))

    def test_soc_of_full_state(self):
        assert full_state(1.0).soc == pytest.approx(1.0)

    def test_soc_of_half_state(self):
        assert full_state(0.5).soc == pytest.approx(0.5)

    def test_available_fraction_full(self):
        assert full_state(1.0).available_fraction == pytest.approx(1.0)

    def test_rejects_bad_c(self):
        with pytest.raises(ConfigurationError):
            KiBaMState(1.0, 1.0, 2.0, c=0.0, k=K_RATE)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            KiBaMState(1.0, 1.0, 2.0, c=0.5, k=0.0)

    def test_rejects_bad_soc(self):
        with pytest.raises(ConfigurationError):
            KiBaMState.at_soc(CAPACITY, C_FRACTION, K_RATE, 1.5)


class TestStep:
    def test_zero_current_conserves_charge(self):
        state = full_state(0.7)
        after = kibam_step(state, 0.0, 600.0)
        assert after.total_c == pytest.approx(state.total_c, rel=1e-9)

    def test_discharge_removes_charge(self):
        state = full_state(1.0)
        after = kibam_step(state, 2.0, 60.0)
        assert after.total_c == pytest.approx(state.total_c - 2.0 * 60.0,
                                              rel=1e-6)

    def test_charge_adds_charge(self):
        state = full_state(0.5)
        after = kibam_step(state, -1.0, 60.0)
        assert after.total_c == pytest.approx(state.total_c + 60.0, rel=1e-6)

    def test_rest_recovers_available_well(self):
        """The recovery effect: bound charge migrates back during rest."""
        state = full_state(1.0)
        drained = kibam_step(state, 10.0, 600.0)
        rested = kibam_step(drained, 0.0, 1800.0)
        assert rested.available_c > drained.available_c
        assert rested.total_c == pytest.approx(drained.total_c, rel=1e-9)

    def test_high_current_depletes_available_faster_than_total(self):
        """Rate-capacity effect: available empties while bound remains."""
        state = full_state(1.0)
        after = kibam_step(state, 12.0, 600.0)
        assert after.available_fraction < after.soc

    def test_wells_never_negative(self):
        state = full_state(0.05)
        after = kibam_step(state, 100.0, 3600.0)
        assert after.available_c >= 0.0
        assert after.bound_c >= 0.0

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ConfigurationError):
            kibam_step(full_state(), 1.0, 0.0)

    def test_two_short_steps_equal_one_long_step(self):
        """The closed form must compose across step boundaries."""
        state = full_state(0.9)
        one = kibam_step(state, 3.0, 120.0)
        two = kibam_step(kibam_step(state, 3.0, 60.0), 3.0, 60.0)
        assert two.available_c == pytest.approx(one.available_c, rel=1e-9)
        assert two.bound_c == pytest.approx(one.bound_c, rel=1e-9)


class TestMaxCurrents:
    def test_max_discharge_empties_available_exactly(self):
        state = full_state(1.0)
        dt = 300.0
        i_max = kibam_max_discharge_current(state, dt)
        after = kibam_step(state, i_max, dt)
        assert after.available_c == pytest.approx(0.0, abs=1e-6 * CAPACITY)

    def test_max_discharge_is_zero_when_empty(self):
        assert kibam_max_discharge_current(full_state(0.0), 60.0) == 0.0

    def test_max_charge_fills_available_exactly(self):
        state = full_state(0.2)
        dt = 300.0
        i_max = kibam_max_charge_current(state, dt)
        after = kibam_step(state, -i_max, dt)
        assert after.available_c == pytest.approx(
            CAPACITY * C_FRACTION, rel=1e-6)

    def test_max_charge_is_zero_when_full(self):
        assert kibam_max_charge_current(full_state(1.0), 60.0) == pytest.approx(
            0.0, abs=1e-9)

    def test_longer_window_allows_more_total_charge_but_less_current(self):
        state = full_state(1.0)
        short = kibam_max_discharge_current(state, 10.0)
        long = kibam_max_discharge_current(state, 600.0)
        assert long < short  # sustained current is lower
        assert long * 600.0 > short * 10.0  # but total charge is higher


@st.composite
def states(draw):
    soc = draw(st.floats(min_value=0.0, max_value=1.0))
    return full_state(soc)


class TestProperties:
    @given(states(), st.floats(min_value=0.0, max_value=20.0),
           st.floats(min_value=1.0, max_value=1800.0))
    @settings(max_examples=80, deadline=None)
    def test_discharge_never_creates_charge(self, state, current, dt):
        after = kibam_step(state, current, dt)
        assert after.total_c <= state.total_c + 1e-6

    @given(states(), st.floats(min_value=1.0, max_value=1800.0))
    @settings(max_examples=80, deadline=None)
    def test_max_discharge_current_is_feasible(self, state, dt):
        i_max = kibam_max_discharge_current(state, dt)
        after = kibam_step(state, i_max, dt)
        assert after.available_c >= -1e-6

    @given(states(), st.floats(min_value=1.0, max_value=1800.0))
    @settings(max_examples=80, deadline=None)
    def test_rest_moves_towards_equilibrium(self, state, dt):
        after = kibam_step(state, 0.0, dt)
        # Equilibrium has available/bound = c/(1-c); resting must not
        # increase the imbalance.
        target = state.total_c * C_FRACTION
        assert (abs(after.available_c - target)
                <= abs(state.available_c - target) + 1e-6)

    @given(states(), st.floats(min_value=0.1, max_value=20.0),
           st.floats(min_value=1.0, max_value=600.0))
    @settings(max_examples=80, deadline=None)
    def test_wells_stay_in_bounds(self, state, current, dt):
        after = kibam_step(state, current, dt)
        assert -1e-9 <= after.available_c <= CAPACITY * C_FRACTION + 1e-6
        assert -1e-9 <= after.bound_c <= CAPACITY * (1 - C_FRACTION) + 1e-6
