"""Chaos suite: engine invariants under hypothesis-generated fault storms.

Every property here runs a full (small) simulation with a randomized
:class:`~repro.faults.FaultSchedule` injected and asserts the invariants
that no fault is allowed to break:

* energy accounting still balances (served + unserved == demand, buffer
  contribution == device outflow x converter efficiency);
* pool SoC stays in [0, 1];
* downtime is non-negative, and the per-fault-class attribution buckets
  sum to the run's total downtime;
* downtime is monotone non-decreasing in outage duration;
* the zero-fault schedule is bit-identical to a run with no injector.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig, prototype_buffer
from repro.core import POLICY_NAMES, make_policy
from repro.faults import (
    BatteryCellAging,
    BatteryOpenCircuit,
    ConverterDropout,
    FaultInjector,
    FaultSchedule,
    SensorNoise,
    SupercapESRDrift,
    SupercapLeakage,
    UtilityBrownout,
    UtilityOutage,
)
from repro.sim import HybridBuffers, Simulation
from repro.workloads.base import ClusterTrace

#: Simulated seconds per chaos run (kept small: every example is a full
#: engine run).
HORIZON_S = 600

#: Ceiling of the uniform per-server demand the chaos traces draw from
#: (bounds the demand a downed server could have asked for).
_MAX_SERVER_W = 150.0

_starts = st.floats(min_value=0.0, max_value=float(HORIZON_S))
_durations = st.floats(min_value=0.0, max_value=float(HORIZON_S))

event_strategy = st.one_of(
    st.builds(UtilityBrownout, start_s=_starts, duration_s=_durations,
              budget_fraction=st.floats(min_value=0.0, max_value=1.0)),
    st.builds(UtilityOutage, start_s=_starts, duration_s=_durations),
    st.builds(BatteryCellAging, start_s=_starts,
              fade_fraction=st.floats(min_value=0.0, max_value=0.9),
              resistance_growth=st.floats(min_value=1.0, max_value=5.0)),
    st.builds(BatteryOpenCircuit, start_s=_starts, duration_s=_durations),
    st.builds(SupercapESRDrift, start_s=_starts,
              esr_multiplier=st.floats(min_value=1.0, max_value=10.0)),
    st.builds(SupercapLeakage, start_s=_starts, duration_s=_durations,
              leakage_w=st.floats(min_value=0.0, max_value=50.0)),
    st.builds(ConverterDropout, start_s=_starts, duration_s=_durations),
    st.builds(SensorNoise, start_s=_starts, duration_s=_durations,
              sigma_fraction=st.floats(min_value=0.0, max_value=1.0)),
)

schedule_strategy = st.builds(
    lambda events, seed: FaultSchedule.of(*events, seed=seed),
    st.lists(event_strategy, min_size=0, max_size=5),
    st.integers(min_value=0, max_value=2**31 - 1))


def run_chaos(scheme, schedule, trace_seed=11, budget_w=260.0):
    """One small simulation with the schedule injected; returns
    (result, buffers, demand_j, cluster)."""
    rng = np.random.default_rng(trace_seed)
    cluster = ClusterConfig(utility_budget_w=budget_w)
    demands = rng.uniform(0.0, 150.0,
                          size=(cluster.num_servers, HORIZON_S))
    trace = ClusterTrace(demands, 1.0)
    hybrid = prototype_buffer()
    policy = make_policy(scheme, hybrid=hybrid)
    buffers = HybridBuffers(hybrid, include_sc=scheme != "BaOnly")
    injector = (FaultInjector(schedule)
                if schedule is not None and not schedule.is_empty
                else None)
    result = Simulation(trace, policy, buffers, cluster_config=cluster,
                        injector=injector).run()
    return result, buffers, float(demands.sum()) * trace.dt_s, cluster


@pytest.mark.parametrize("scheme", POLICY_NAMES)
class TestChaosInvariants:
    @given(schedule=schedule_strategy)
    @settings(max_examples=8, deadline=None)
    def test_invariants_hold_under_any_storm(self, scheme, schedule):
        result, buffers, demand_j, cluster = run_chaos(scheme, schedule)
        metrics = result.metrics

        # Energy accounting balances: demand is either served or shed.
        # Two engine semantics (pre-dating fault injection, surfaced by
        # it because faults make shedding and restarting common) bound
        # the permitted gap:
        # * a RESTARTING server draws restart power instead of its
        #   workload and serves nothing (gap <= the restart ledger plus
        #   the unavailable demand, itself <= max draw x downtime);
        # * shed_lru shuts whole servers down, so the freed draw can
        #   overshoot the shortfall by at most one server's draw per
        #   shed event, and every shed event costs >= 1 s of downtime.
        # A run with no downtime and no restarts must balance exactly.
        total = metrics.served_energy_j + metrics.unserved_energy_j
        slack = (metrics.restart_energy_j
                 + _MAX_SERVER_W * metrics.server_downtime_s)
        assert abs(total - demand_j) <= slack + 1e-6
        buffered = metrics.served_energy_j - metrics.utility_energy_j
        assert buffered == pytest.approx(
            metrics.buffer_energy_out_j * cluster.converter_efficiency,
            rel=1e-9, abs=1e-6)

        # Faults only ever *shrink* the budget, so the nominal cap holds.
        assert metrics.utility_energy_j <= (
            cluster.utility_budget_w * metrics.duration_s + 1e-6)

        # SoC confined to [0, 1] on every pool, aged or not.
        assert -1e-9 <= buffers.battery.soc <= 1.0 + 1e-9
        if buffers.sc is not None:
            assert -1e-9 <= buffers.sc.soc <= 1.0 + 1e-9

        # Downtime sane, and the attribution buckets account for all of
        # it (None when no injector ran or nothing accrued).
        assert metrics.server_downtime_s >= 0.0
        assert 0.0 <= metrics.downtime_fraction <= 1.0
        buckets = metrics.fault_downtime_s
        if schedule.is_empty or metrics.server_downtime_s == 0.0:
            assert buckets is None
        else:
            assert buckets is not None
            assert sum(buckets.values()) == pytest.approx(
                metrics.server_downtime_s, abs=1e-6)

    @given(schedule=schedule_strategy)
    @settings(max_examples=4, deadline=None)
    def test_fault_runs_are_deterministic(self, scheme, schedule):
        first, _, _, _ = run_chaos(scheme, schedule)
        second, _, _, _ = run_chaos(scheme, schedule)
        assert first == second


@pytest.mark.parametrize("scheme", POLICY_NAMES)
def test_zero_fault_schedule_bit_identical(scheme):
    """An injector built from the empty schedule must be invisible: the
    engine's fault hooks may not perturb a single bit of the result."""
    rng = np.random.default_rng(11)
    cluster = ClusterConfig()
    demands = rng.uniform(0.0, 150.0,
                          size=(cluster.num_servers, HORIZON_S))
    trace = ClusterTrace(demands, 1.0)
    hybrid = prototype_buffer()

    def run(injector):
        policy = make_policy(scheme, hybrid=hybrid)
        buffers = HybridBuffers(hybrid, include_sc=scheme != "BaOnly")
        return Simulation(trace, policy, buffers, cluster_config=cluster,
                          injector=injector).run()

    baseline = run(None)
    with_empty = run(FaultInjector(FaultSchedule.empty()))
    assert baseline == with_empty


def test_request_level_empty_schedule_identity():
    """Through the runner: a request carrying the empty schedule
    normalizes to the same cache key and the same bits as one that never
    mentioned faults."""
    from repro.runner.keys import cache_key
    from repro.runner.request import (
        ExperimentSetup,
        RunRequest,
        execute_request,
    )

    setup = ExperimentSetup(duration_h=0.25, seed=3)
    plain = RunRequest("HEB-D", "PR", setup=setup)
    with_empty = RunRequest("HEB-D", "PR", setup=setup,
                            faults=FaultSchedule.empty())
    assert with_empty.faults is None
    assert cache_key(plain) == cache_key(with_empty)
    assert execute_request(plain) == execute_request(with_empty)


@pytest.mark.parametrize("scheme", ["BaOnly", "SCFirst", "HEB-D"])
class TestOutageMonotonicity:
    @given(durations=st.tuples(
        st.floats(min_value=0.0, max_value=400.0),
        st.floats(min_value=0.0, max_value=400.0)))
    @settings(max_examples=6, deadline=None)
    def test_downtime_monotone_in_outage_duration(self, scheme,
                                                  durations):
        """Extending an outage (same start) never *reduces* downtime."""
        short_s, long_s = sorted(durations)

        def downtime(duration_s):
            schedule = FaultSchedule.of(
                UtilityOutage(start_s=150.0, duration_s=duration_s))
            result, _, _, _ = run_chaos(scheme, schedule)
            return result.metrics.server_downtime_s

        assert downtime(long_s) >= downtime(short_s) - 1e-9
