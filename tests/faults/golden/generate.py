"""Regenerate the golden fault-scenario fixtures.

Run from the repository root after an *intentional* change to fault
injection or downtime accounting::

    PYTHONPATH=src python tests/faults/golden/generate.py

Each fixture pins the headline metrics (downtime, its per-fault-class
attribution, energy efficiency, battery lifetime, and the energy ledger)
of one canonical fault scenario — a utility brownout, a hard outage, and
battery aging — for each of BaOnly / SCFirst / HEB-D at a small
fixed-seed configuration.  The golden tests fail when any metric drifts
by more than 1e-9.  Floats are stored at full shortest-repr precision.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import quick_run
from repro.faults import (
    BatteryCellAging,
    FaultSchedule,
    SupercapESRDrift,
    UtilityBrownout,
    UtilityOutage,
    schedule_from_dict,
)

GOLDEN_DIR = Path(__file__).resolve().parent

SCHEMES = ("BaOnly", "SCFirst", "HEB-D")

#: Shared run parameters: half an hour of the PR (peak-rich) workload.
RUN_PARAMS = {"workload": "PR", "hours": 0.5, "seed": 1}

SCENARIOS = {
    # Twenty minutes at a tenth of the utility budget, starting five
    # minutes in: the buffers carry the gap until they can't, the
    # schemes split three ways on how long that takes, and the recovery
    # tail after the window closes lands in the "baseline" bucket.
    "brownout": FaultSchedule.of(
        UtilityBrownout(start_s=300.0, duration_s=1200.0,
                        budget_fraction=0.1)),
    # A hard outage covering the whole second half of the run drains
    # whatever the policy kept in reserve, then starts shedding.
    "outage": FaultSchedule.of(
        UtilityOutage(start_s=900.0, duration_s=900.0)),
    # Permanent degradation five minutes in — half the battery capacity
    # gone, internal resistance tripled, SC ESR doubled — followed by a
    # six-minute outage the aged buffers must ride through.  Downtime
    # during the overlap is attributed to aging and outage evenly.
    "aging": FaultSchedule.of(
        BatteryCellAging(start_s=300.0, fade_fraction=0.5,
                         resistance_growth=3.0),
        SupercapESRDrift(start_s=300.0, esr_multiplier=2.0),
        UtilityOutage(start_s=1200.0, duration_s=360.0)),
}


def metrics_row(metrics) -> dict:
    return {
        "energy_efficiency": metrics.energy_efficiency,
        "server_downtime_s": metrics.server_downtime_s,
        "downtime_fraction": metrics.downtime_fraction,
        "battery_lifetime_years": metrics.battery_lifetime_years,
        "served_energy_j": metrics.served_energy_j,
        "unserved_energy_j": metrics.unserved_energy_j,
        "utility_energy_j": metrics.utility_energy_j,
        "fault_downtime_s": metrics.fault_downtime_s,
    }


def generate(name: str, schedule: FaultSchedule) -> None:
    rows = {}
    for scheme in SCHEMES:
        result = quick_run(scheme, faults=schedule, **RUN_PARAMS)
        rows[scheme] = metrics_row(result.metrics)
    payload = {
        "params": RUN_PARAMS,
        "schedule": schedule.to_dict(),
        "rows": rows,
    }
    path = GOLDEN_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def main() -> None:
    for name, schedule in SCENARIOS.items():
        # Round-trip through the JSON spec so the fixture's embedded
        # schedule is guaranteed to rebuild the exact schedule used.
        rebuilt = schedule_from_dict(schedule.to_dict())
        assert rebuilt == schedule
        generate(name, schedule)


if __name__ == "__main__":
    main()
