"""Tests for fault events and schedule specs (validation, round-trip)."""

import json

import pytest

from repro.errors import FaultSpecError, ReproError
from repro.faults import (
    EVENT_REGISTRY,
    EVENT_TYPES,
    FAULT_CLASSES,
    BatteryCellAging,
    FaultSchedule,
    SensorNoise,
    SupercapESRDrift,
    SupercapLeakage,
    UtilityBrownout,
    UtilityOutage,
    dump_schedule,
    event_from_dict,
    load_schedule,
    schedule_from_dict,
)


class TestEventValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(FaultSpecError):
            UtilityOutage(start_s=-1.0, duration_s=10.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(FaultSpecError):
            UtilityOutage(start_s=0.0, duration_s=-5.0)

    @pytest.mark.parametrize("fraction", [-0.1, 1.5])
    def test_brownout_fraction_bounds(self, fraction):
        with pytest.raises(FaultSpecError):
            UtilityBrownout(start_s=0.0, duration_s=10.0,
                            budget_fraction=fraction)

    @pytest.mark.parametrize("fade", [-0.01, 1.0])
    def test_aging_fade_bounds(self, fade):
        with pytest.raises(FaultSpecError):
            BatteryCellAging(start_s=0.0, fade_fraction=fade)

    def test_aging_resistance_growth_floor(self):
        with pytest.raises(FaultSpecError):
            BatteryCellAging(start_s=0.0, resistance_growth=0.5)

    def test_esr_multiplier_floor(self):
        with pytest.raises(FaultSpecError):
            SupercapESRDrift(start_s=0.0, esr_multiplier=0.9)

    def test_negative_leakage_rejected(self):
        with pytest.raises(FaultSpecError):
            SupercapLeakage(start_s=0.0, duration_s=10.0, leakage_w=-1.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(FaultSpecError):
            SensorNoise(start_s=0.0, duration_s=10.0, sigma_fraction=-0.1)

    def test_spec_error_is_repro_error(self):
        assert issubclass(FaultSpecError, ReproError)


class TestEventWindows:
    def test_windowed_half_open_interval(self):
        event = UtilityOutage(start_s=100.0, duration_s=50.0)
        assert not event.active_at(99.0)
        assert event.active_at(100.0)
        assert event.active_at(149.0)
        assert not event.active_at(150.0)

    def test_step_event_persists(self):
        event = BatteryCellAging(start_s=100.0)
        assert not event.active_at(99.0)
        assert event.active_at(100.0)
        assert event.active_at(1e9)

    def test_registry_covers_every_type(self):
        assert set(EVENT_REGISTRY.values()) == set(EVENT_TYPES)
        assert set(FAULT_CLASSES) == set(EVENT_REGISTRY)

    def test_event_dict_round_trip(self):
        for cls in EVENT_TYPES:
            if cls.persistent:
                event = cls(start_s=30.0)
            else:
                event = cls(start_s=30.0, duration_s=60.0)
            assert event_from_dict(event.to_dict()) == event


class TestEventFromDict:
    def test_missing_kind(self):
        with pytest.raises(FaultSpecError, match="kind"):
            event_from_dict({"start_s": 0.0})

    def test_unknown_kind(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            event_from_dict({"kind": "gremlins", "start_s": 0.0})

    def test_unknown_field(self):
        with pytest.raises(FaultSpecError, match="bad fields"):
            event_from_dict({"kind": "outage", "start_s": 0.0,
                             "duration_s": 1.0, "strength": 3.0})

    def test_non_dict_payload(self):
        with pytest.raises(FaultSpecError):
            event_from_dict(["outage"])


class TestScheduleConstruction:
    def test_canonical_ordering(self):
        a = UtilityOutage(start_s=200.0, duration_s=10.0)
        b = UtilityBrownout(start_s=100.0, duration_s=10.0)
        c = SensorNoise(start_s=100.0, duration_s=10.0)
        assert (FaultSchedule.of(a, b, c).events
                == FaultSchedule.of(c, a, b).events
                == (b, c, a))

    def test_same_scenario_same_schedule(self):
        """Equal schedules regardless of construction order — the
        property that keeps cache keys canonical."""
        a = UtilityOutage(start_s=200.0, duration_s=10.0)
        b = UtilityBrownout(start_s=100.0, duration_s=10.0)
        assert FaultSchedule.of(a, b) == FaultSchedule.of(b, a)

    def test_non_event_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultSchedule(events=("outage",))

    def test_empty_properties(self):
        schedule = FaultSchedule.empty()
        assert schedule.is_empty
        assert len(schedule) == 0
        assert schedule.classes_present() == ()
        assert schedule.last_start_s() == 0.0

    def test_inspection(self):
        schedule = FaultSchedule.of(
            UtilityOutage(start_s=50.0, duration_s=10.0),
            UtilityOutage(start_s=300.0, duration_s=10.0),
            SensorNoise(start_s=100.0, duration_s=10.0))
        assert schedule.classes_present() == ("outage", "sensor_noise")
        assert schedule.last_start_s() == 300.0
        assert len(schedule) == 3

    def test_schedule_is_hashable(self):
        schedule = FaultSchedule.of(
            UtilityOutage(start_s=1.0, duration_s=2.0), seed=3)
        assert hash(schedule) == hash(
            FaultSchedule.of(UtilityOutage(start_s=1.0, duration_s=2.0),
                             seed=3))


class TestScheduleSpec:
    def test_dict_round_trip(self):
        schedule = FaultSchedule.of(
            UtilityBrownout(start_s=10.0, duration_s=60.0,
                            budget_fraction=0.7),
            BatteryCellAging(start_s=0.0, fade_fraction=0.15),
            seed=42)
        assert schedule_from_dict(schedule.to_dict()) == schedule

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown"):
            schedule_from_dict({"seed": 1, "events": [], "extra": True})

    @pytest.mark.parametrize("seed", ["7", 1.5, True, None])
    def test_bad_seed_rejected(self, seed):
        with pytest.raises(FaultSpecError):
            schedule_from_dict({"seed": seed, "events": []})

    def test_events_must_be_list(self):
        with pytest.raises(FaultSpecError):
            schedule_from_dict({"events": {"kind": "outage"}})

    def test_non_dict_rejected(self):
        with pytest.raises(FaultSpecError):
            schedule_from_dict([])

    def test_file_round_trip(self, tmp_path):
        schedule = FaultSchedule.of(
            UtilityOutage(start_s=1800.0, duration_s=120.0),
            SensorNoise(start_s=0.0, duration_s=600.0,
                        sigma_fraction=0.3),
            seed=7)
        path = tmp_path / "spec.json"
        dump_schedule(schedule, path)
        assert load_schedule(path) == schedule

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FaultSpecError, match="cannot read"):
            load_schedule(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(FaultSpecError, match="invalid JSON"):
            load_schedule(path)

    def test_docstring_spec_format_parses(self):
        """The exact example from the module docstring must load."""
        payload = json.loads("""
        {
          "seed": 7,
          "events": [
            {"kind": "outage", "start_s": 1800.0, "duration_s": 120.0},
            {"kind": "brownout", "start_s": 3600.0, "duration_s": 600.0,
             "budget_fraction": 0.6},
            {"kind": "battery_aging", "start_s": 0.0,
             "fade_fraction": 0.15}
          ]
        }
        """)
        schedule = schedule_from_dict(payload)
        assert len(schedule) == 3
        assert schedule.seed == 7
