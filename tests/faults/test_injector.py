"""Unit tests for the FaultInjector tick protocol and its engine hooks."""

import pytest

from repro.config import prototype_buffer
from repro.core.policies.base import SlotObservation
from repro.errors import SimulationError
from repro.faults import (
    BASELINE_CLASS,
    BatteryCellAging,
    BatteryOpenCircuit,
    ConverterDropout,
    FaultInjector,
    FaultSchedule,
    SensorNoise,
    SupercapESRDrift,
    SupercapLeakage,
    UtilityBrownout,
    UtilityOutage,
)
from repro.sim import HybridBuffers


def make_buffers():
    return HybridBuffers(prototype_buffer())


def make_injector(*events, seed=0):
    return FaultInjector(FaultSchedule.of(*events, seed=seed))


def observation(**overrides):
    defaults = dict(index=1, start_s=600.0, budget_w=260.0,
                    sc_usable_j=1000.0, battery_usable_j=2000.0,
                    sc_nominal_j=1500.0, battery_nominal_j=3000.0,
                    last_peak_w=300.0, last_valley_w=200.0,
                    last_peak_duration_s=30.0, num_servers=6)
    defaults.update(overrides)
    return SlotObservation(**defaults)


class TestTickProtocol:
    def test_time_must_not_go_backwards(self):
        injector = make_injector()
        buffers = make_buffers()
        injector.begin_tick(10.0, 1.0, buffers)
        with pytest.raises(SimulationError):
            injector.begin_tick(5.0, 1.0, buffers)

    def test_empty_schedule_is_inert(self):
        injector = make_injector()
        buffers = make_buffers()
        before = buffers.total_stored_j
        for now in (0.0, 1.0, 2.0):
            injector.begin_tick(now, 1.0, buffers)
        assert injector.sc_available and injector.battery_available
        assert injector.transform_budget(260.0) == 260.0
        assert injector.active_classes == ()
        assert buffers.total_stored_j == before
        obs = observation()
        assert injector.observe(obs) is obs


class TestSupplyFaults:
    def test_outage_zeroes_budget(self):
        injector = make_injector(UtilityOutage(start_s=5.0, duration_s=10.0))
        buffers = make_buffers()
        injector.begin_tick(0.0, 1.0, buffers)
        assert injector.transform_budget(260.0) == 260.0
        injector.begin_tick(5.0, 1.0, buffers)
        assert injector.transform_budget(260.0) == 0.0
        injector.begin_tick(15.0, 1.0, buffers)
        assert injector.transform_budget(260.0) == 260.0

    def test_overlapping_brownouts_take_deepest(self):
        injector = make_injector(
            UtilityBrownout(start_s=0.0, duration_s=10.0,
                            budget_fraction=0.8),
            UtilityBrownout(start_s=0.0, duration_s=10.0,
                            budget_fraction=0.5))
        injector.begin_tick(0.0, 1.0, make_buffers())
        assert injector.transform_budget(100.0) == pytest.approx(50.0)

    def test_outage_beats_brownout(self):
        injector = make_injector(
            UtilityBrownout(start_s=0.0, duration_s=10.0,
                            budget_fraction=0.8),
            UtilityOutage(start_s=0.0, duration_s=10.0))
        injector.begin_tick(0.0, 1.0, make_buffers())
        assert injector.transform_budget(100.0) == 0.0


class TestPowerPathFaults:
    def test_battery_open_circuit_window(self):
        injector = make_injector(
            BatteryOpenCircuit(start_s=5.0, duration_s=5.0))
        buffers = make_buffers()
        injector.begin_tick(0.0, 1.0, buffers)
        assert injector.battery_available
        injector.begin_tick(5.0, 1.0, buffers)
        assert not injector.battery_available
        assert injector.sc_available
        injector.begin_tick(10.0, 1.0, buffers)
        assert injector.battery_available

    def test_converter_dropout_kills_both_pools(self):
        injector = make_injector(
            ConverterDropout(start_s=0.0, duration_s=5.0))
        injector.begin_tick(0.0, 1.0, make_buffers())
        assert not injector.sc_available
        assert not injector.battery_available


class TestDegradationSteps:
    def test_aging_applied_once(self):
        injector = make_injector(BatteryCellAging(start_s=5.0,
                                                  fade_fraction=0.2))
        buffers = make_buffers()
        fresh = buffers.battery_nominal_j
        injector.begin_tick(0.0, 1.0, buffers)
        assert buffers.battery_nominal_j == fresh
        injector.begin_tick(5.0, 1.0, buffers)
        aged = buffers.battery_nominal_j
        assert aged == pytest.approx(0.8 * fresh)
        injector.begin_tick(6.0, 1.0, buffers)
        assert buffers.battery_nominal_j == aged

    def test_repeated_aging_composes_on_remaining(self):
        injector = make_injector(
            BatteryCellAging(start_s=0.0, fade_fraction=0.5),
            BatteryCellAging(start_s=10.0, fade_fraction=0.5))
        buffers = make_buffers()
        fresh = buffers.battery_nominal_j
        injector.begin_tick(0.0, 1.0, buffers)
        injector.begin_tick(10.0, 1.0, buffers)
        assert buffers.battery_nominal_j == pytest.approx(0.25 * fresh)

    def test_esr_drift_raises_resistance(self):
        injector = make_injector(SupercapESRDrift(start_s=0.0,
                                                  esr_multiplier=3.0))
        buffers = make_buffers()
        base = [d.esr_ohm for d in _sc_leaves(buffers)]
        injector.begin_tick(0.0, 1.0, buffers)
        drifted = [d.esr_ohm for d in _sc_leaves(buffers)]
        assert drifted == pytest.approx([3.0 * r for r in base])

    def test_leakage_drains_sc_only(self):
        injector = make_injector(
            SupercapLeakage(start_s=0.0, duration_s=60.0, leakage_w=20.0))
        buffers = make_buffers()
        sc_before = buffers.sc.stored_energy_j
        battery_before = buffers.battery.stored_energy_j
        injector.begin_tick(0.0, 1.0, buffers)
        assert buffers.sc.stored_energy_j < sc_before
        assert buffers.battery.stored_energy_j == battery_before

    def test_leakage_counts_as_loss_not_output(self):
        injector = make_injector(
            SupercapLeakage(start_s=0.0, duration_s=60.0, leakage_w=20.0))
        buffers = make_buffers()
        out_before = buffers.energy_out_j()
        injector.begin_tick(0.0, 1.0, buffers)
        assert buffers.energy_out_j() == out_before


def _sc_leaves(buffers):
    from repro.faults.injector import _leaf_devices
    return _leaf_devices(buffers.sc)


class TestObserve:
    def test_noise_flags_and_perturbs(self):
        injector = make_injector(
            SensorNoise(start_s=0.0, duration_s=600.0,
                        sigma_fraction=0.5), seed=3)
        injector.begin_tick(0.0, 1.0, make_buffers())
        obs = injector.observe(observation())
        assert obs.predictor_corrupted
        assert obs.degraded
        assert obs.last_valley_w <= obs.last_peak_w
        assert obs.last_peak_w >= 0.0

    def test_noise_is_seed_deterministic(self):
        def perturbed(seed):
            injector = make_injector(
                SensorNoise(start_s=0.0, duration_s=600.0,
                            sigma_fraction=0.5), seed=seed)
            injector.begin_tick(0.0, 1.0, make_buffers())
            obs = injector.observe(observation())
            return (obs.last_peak_w, obs.last_valley_w)

        assert perturbed(3) == perturbed(3)
        assert perturbed(3) != perturbed(4)

    def test_availability_flags_without_noise(self):
        injector = make_injector(
            ConverterDropout(start_s=0.0, duration_s=600.0))
        injector.begin_tick(0.0, 1.0, make_buffers())
        obs = injector.observe(observation())
        assert not obs.sc_available
        assert not obs.battery_available
        assert not obs.predictor_corrupted
        # Telemetry untouched: only the availability flags changed.
        assert obs.last_peak_w == observation().last_peak_w


class TestDowntimeAttribution:
    def test_no_faults_goes_to_baseline(self):
        injector = make_injector()
        injector.begin_tick(0.0, 1.0, make_buffers())
        injector.attribute_downtime(10.0)
        assert injector.downtime_by_class() == {BASELINE_CLASS: 10.0}

    def test_split_evenly_among_active_classes(self):
        injector = make_injector(
            UtilityOutage(start_s=0.0, duration_s=10.0),
            ConverterDropout(start_s=0.0, duration_s=10.0))
        injector.begin_tick(0.0, 1.0, make_buffers())
        injector.attribute_downtime(10.0)
        assert injector.downtime_by_class() == {
            "converter_dropout": 5.0, "outage": 5.0}

    def test_duplicate_kinds_count_once(self):
        injector = make_injector(
            UtilityOutage(start_s=0.0, duration_s=10.0),
            UtilityOutage(start_s=5.0, duration_s=10.0))
        injector.begin_tick(6.0, 1.0, make_buffers())
        injector.attribute_downtime(8.0)
        assert injector.downtime_by_class() == {"outage": 8.0}

    def test_zero_delta_ignored(self):
        injector = make_injector()
        injector.begin_tick(0.0, 1.0, make_buffers())
        injector.attribute_downtime(0.0)
        assert injector.downtime_by_class() == {}

    def test_buckets_sum_to_total(self):
        injector = make_injector(
            UtilityOutage(start_s=5.0, duration_s=10.0))
        buffers = make_buffers()
        total = 0.0
        for now in range(0, 20):
            injector.begin_tick(float(now), 1.0, buffers)
            injector.attribute_downtime(2.0)
            total += 2.0
        assert sum(injector.downtime_by_class().values()) == (
            pytest.approx(total))
