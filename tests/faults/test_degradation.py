"""Graceful degradation of the HEB policies under fault flags."""

import dataclasses

import pytest

from repro.config import prototype_buffer
from repro.core import make_policy
from repro.core.policies.base import SlotObservation, SlotResult


def observation(**overrides):
    defaults = dict(index=3, start_s=1800.0, budget_w=260.0,
                    sc_usable_j=120000.0, battery_usable_j=300000.0,
                    sc_nominal_j=160000.0, battery_nominal_j=380000.0,
                    last_peak_w=340.0, last_valley_w=200.0,
                    last_peak_duration_s=45.0, num_servers=6)
    defaults.update(overrides)
    return SlotObservation(**defaults)


def heb(name="HEB-D"):
    return make_policy(name, hybrid=prototype_buffer())


@pytest.mark.parametrize("scheme", ["HEB-F", "HEB-S", "HEB-D"])
class TestDegradedPlans:
    def test_corrupted_telemetry_two_tier(self, scheme):
        plan = heb(scheme).begin_slot(
            observation(predictor_corrupted=True))
        assert plan.r_lambda == 1.0
        assert plan.use_sc and plan.use_battery
        assert plan.fallback
        assert "degraded" in plan.note

    def test_battery_out_sc_only(self, scheme):
        plan = heb(scheme).begin_slot(
            observation(battery_available=False))
        assert plan.r_lambda == 1.0
        assert plan.use_sc and not plan.use_battery
        assert plan.charge_order == ("sc",)

    def test_sc_out_battery_only(self, scheme):
        plan = heb(scheme).begin_slot(observation(sc_available=False))
        assert plan.r_lambda == 0.0
        assert not plan.use_sc and plan.use_battery
        assert plan.charge_order == ("battery",)

    def test_nothing_reachable_utility_only(self, scheme):
        plan = heb(scheme).begin_slot(
            observation(sc_available=False, battery_available=False))
        assert not plan.use_sc and not plan.use_battery
        assert plan.charge_order == ()

    def test_clean_observation_plans_normally(self, scheme):
        plan = heb(scheme).begin_slot(observation())
        assert "degraded" not in plan.note


@pytest.mark.parametrize("scheme", ["HEB-S", "HEB-D"])
class TestLearningGates:
    def test_corrupted_slot_skips_predictor(self, scheme):
        policy = heb(scheme)
        clean_obs = observation()
        plan = policy.begin_slot(clean_obs)
        corrupted = dataclasses.replace(clean_obs,
                                        predictor_corrupted=True,
                                        last_peak_w=9999.0)
        policy.end_slot(SlotResult(
            observation=corrupted, plan=plan,
            sc_usable_end_j=100000.0, battery_usable_end_j=250000.0,
            actual_peak_w=9999.0, actual_valley_w=100.0,
            actual_peak_duration_s=60.0, downtime_s=0.0))
        assert policy.predictor.observations == 0

    def test_clean_slot_feeds_predictor(self, scheme):
        policy = heb(scheme)
        obs = observation()
        plan = policy.begin_slot(obs)
        policy.end_slot(SlotResult(
            observation=obs, plan=plan,
            sc_usable_end_j=100000.0, battery_usable_end_j=250000.0,
            actual_peak_w=330.0, actual_valley_w=210.0,
            actual_peak_duration_s=60.0, downtime_s=0.0))
        assert policy.predictor.observations == 1


class TestHebDPatGate:
    def test_degraded_slot_never_teaches_pat(self):
        """A degraded plan is not a 'large-peak (' plan, so HEB-D must
        not record a PAT outcome for it even with realized deficit."""
        policy = heb("HEB-D")
        entries_before = len(policy.pat.entries())
        obs = observation(battery_available=False)
        plan = policy.begin_slot(obs)
        clean = dataclasses.replace(obs, battery_available=True)
        policy.end_slot(SlotResult(
            observation=clean, plan=plan,
            sc_usable_end_j=50000.0, battery_usable_end_j=250000.0,
            actual_peak_w=500.0, actual_valley_w=100.0,
            actual_peak_duration_s=120.0, downtime_s=0.0))
        assert len(policy.pat.entries()) == entries_before


class TestStaticPoliciesIgnoreFlags:
    """The non-HEB schemes have no PAT/predictor to poison; they must
    still return a usable plan under fault flags (the engine enforces
    availability regardless of the plan)."""

    @pytest.mark.parametrize("scheme", ["BaOnly", "BaFirst", "SCFirst"])
    def test_plan_still_produced(self, scheme):
        plan = make_policy(scheme, hybrid=prototype_buffer()).begin_slot(
            observation(sc_available=False, battery_available=False,
                        predictor_corrupted=True))
        assert plan is not None
