"""Tests for the single-server power model."""

import pytest

from repro.config import ServerConfig
from repro.errors import SimulationError
from repro.server import PowerSource, Server, ServerState


@pytest.fixture
def server(server_config):
    return Server(server_config, server_id=0)


class TestStates:
    def test_starts_on_utility(self, server):
        assert server.state is ServerState.ON
        assert server.source is PowerSource.UTILITY
        assert server.is_available

    def test_shutdown(self, server):
        server.shut_down()
        assert server.state is ServerState.OFF
        assert server.source is PowerSource.NONE
        assert not server.is_available

    def test_restart_only_from_off(self, server):
        with pytest.raises(SimulationError):
            server.begin_restart()

    def test_restart_cycle(self, server, server_config):
        server.shut_down()
        server.begin_restart()
        assert server.state is ServerState.RESTARTING
        assert server.restart_count == 1
        remaining = server_config.restart_duration_s
        while remaining > 0:
            server.tick(10.0, 0.0, 0.0)
            remaining -= 10.0
        assert server.state is ServerState.ON


class TestDraw:
    def test_on_server_draws_demand(self, server):
        assert server.draw_w(55.0) == 55.0

    def test_off_server_draws_nothing(self, server):
        server.shut_down()
        assert server.draw_w(55.0) == 0.0

    def test_restarting_draws_restart_power(self, server, server_config):
        server.shut_down()
        server.begin_restart()
        expected = (server_config.restart_energy_j
                    / server_config.restart_duration_s)
        assert server.draw_w(55.0) == pytest.approx(expected)

    def test_rejects_negative_demand(self, server):
        with pytest.raises(SimulationError):
            server.draw_w(-1.0)


class TestAccounting:
    def test_downtime_accrues_while_off(self, server):
        server.shut_down()
        server.tick(30.0, 0.0, 0.0)
        server.tick(30.0, 30.0, 0.0)
        assert server.downtime_s == 60.0

    def test_downtime_accrues_while_restarting(self, server):
        server.shut_down()
        server.begin_restart()
        server.tick(10.0, 0.0, 0.0)
        assert server.downtime_s == 10.0

    def test_restart_energy_tracked(self, server, server_config):
        server.shut_down()
        server.begin_restart()
        server.tick(server_config.restart_duration_s, 0.0, 0.0)
        assert server.restart_energy_used_j == pytest.approx(
            server_config.restart_energy_j, rel=0.01)

    def test_lru_timestamp_updates_only_when_busy(self, server,
                                                  server_config):
        server.tick(1.0, 100.0, server_config.idle_power_w)
        assert server.last_active_s == 0.0
        server.tick(1.0, 200.0, server_config.peak_power_w)
        assert server.last_active_s == 200.0

    def test_tick_rejects_bad_dt(self, server):
        with pytest.raises(SimulationError):
            server.tick(0.0, 0.0, 0.0)
