"""Tests for the server cluster."""

import pytest

from repro.config import ClusterConfig
from repro.errors import SimulationError
from repro.server import PowerSource, ServerCluster, ServerState


@pytest.fixture
def cluster(cluster_config):
    return ServerCluster(cluster_config)


DEMANDS = [40.0, 50.0, 60.0, 45.0, 55.0, 65.0]


class TestBasics:
    def test_size(self, cluster):
        assert cluster.num_servers == 6
        assert len(cluster.available_servers()) == 6

    def test_draws_match_demands_when_all_on(self, cluster):
        draws = cluster.draws_w(DEMANDS)
        assert list(draws) == DEMANDS

    def test_draws_validate_length(self, cluster):
        with pytest.raises(SimulationError):
            cluster.draws_w([1.0])

    def test_draws_by_source(self, cluster):
        cluster.assign_sources([PowerSource.UTILITY] * 3
                               + [PowerSource.SUPERCAP] * 2
                               + [PowerSource.BATTERY])
        totals = cluster.draws_by_source(DEMANDS)
        assert totals[PowerSource.UTILITY] == pytest.approx(150.0)
        assert totals[PowerSource.SUPERCAP] == pytest.approx(100.0)
        assert totals[PowerSource.BATTERY] == pytest.approx(65.0)


class TestAssignment:
    def test_assign_sources(self, cluster):
        sources = [PowerSource.SUPERCAP] * 6
        cluster.assign_sources(sources)
        assert all(s.source is PowerSource.SUPERCAP
                   for s in cluster.servers)

    def test_assign_skips_off_servers(self, cluster):
        cluster.servers[0].shut_down()
        cluster.assign_sources([PowerSource.BATTERY] * 6)
        assert cluster.servers[0].source is PowerSource.NONE

    def test_assign_all(self, cluster):
        cluster.assign_all(PowerSource.BATTERY)
        assert all(s.source is PowerSource.BATTERY
                   for s in cluster.available_servers())

    def test_assign_validates_length(self, cluster):
        with pytest.raises(SimulationError):
            cluster.assign_sources([PowerSource.UTILITY])


class TestShedding:
    def test_sheds_nothing_for_zero_need(self, cluster):
        assert cluster.shed_lru(0.0, DEMANDS) == []

    def test_sheds_enough_power(self, cluster):
        shed = cluster.shed_lru(80.0, DEMANDS)
        freed = sum(DEMANDS[s.server_id] for s in shed)
        assert freed >= 80.0
        for server in shed:
            assert server.state is ServerState.OFF

    def test_sheds_least_recently_used_first(self, cluster):
        # Server 3 was busy recently; it must survive a small shed.
        for server in cluster.servers:
            server.last_active_s = 0.0
        cluster.servers[3].last_active_s = 1000.0
        shed = cluster.shed_lru(40.0, DEMANDS)
        assert cluster.servers[3] not in shed

    def test_shed_respects_source_filter(self, cluster):
        cluster.assign_sources([PowerSource.SUPERCAP] * 3
                               + [PowerSource.BATTERY] * 3)
        shed = cluster.shed_lru(1000.0, DEMANDS,
                                from_sources=(PowerSource.BATTERY,))
        assert all(s.server_id >= 3 for s in shed)

    def test_downtime_metric_accumulates(self, cluster):
        cluster.shed_lru(1000.0, DEMANDS)
        cluster.tick(60.0, 0.0, DEMANDS)
        assert cluster.total_downtime_s() == pytest.approx(6 * 60.0)


class TestRestart:
    def test_restarts_within_budget(self, cluster, cluster_config):
        for server in cluster.servers[:3]:
            server.shut_down()
        restart_power = (cluster_config.server.restart_energy_j
                         / cluster_config.server.restart_duration_s)
        restarted = cluster.restart_offline(restart_power + 1.0)
        assert len(restarted) == 1
        assert restarted[0].state is ServerState.RESTARTING

    def test_no_budget_no_restart(self, cluster):
        cluster.servers[0].shut_down()
        assert cluster.restart_offline(1.0) == []

    def test_restart_counts(self, cluster, cluster_config):
        cluster.servers[0].shut_down()
        cluster.restart_offline(1e9)
        assert cluster.total_restarts() == 1

    def test_reset(self, cluster):
        cluster.servers[0].shut_down()
        cluster.tick(10.0, 0.0, DEMANDS)
        cluster.reset()
        assert cluster.total_downtime_s() == 0.0
        assert len(cluster.available_servers()) == 6
