"""End-to-end tests asserting the paper's qualitative results.

These are the acceptance tests of the reproduction: for every figure we
assert the *shape* of the paper's claim — who wins, in which direction,
and roughly by how much — not the absolute numbers (our substrate is a
simulator, not the authors' testbed).  Measured values are recorded in
EXPERIMENTS.md by the benchmark harness.
"""

import pytest

from repro.experiments import (
    run_fig01,
    run_fig03,
    run_fig04,
    run_fig05,
    run_fig06,
    run_fig12,
    run_fig15,
)
from repro.experiments.fig06_assignment import optimal_assignment
from repro.sim import compare_schemes


@pytest.fixture(scope="module")
def fig12():
    """A reduced Figure 12 grid (2 workloads x 6 schemes, 3 h runs)."""
    return run_fig12(duration_h=3.0, seed=1, workloads=["DA", "TS"],
                     renewable_workloads=["WS"])


class TestFig01Shape:
    def test_underprovisioning_raises_mppu_and_mismatches(self):
        levels = run_fig01(duration_days=3)
        mppus = [level.mppu for level in levels]
        assert mppus == sorted(mppus)
        assert levels[-1].mppu > 0.2  # P4 is heavily utilized
        assert levels[0].mppu < 0.05  # P1 almost never
        events = [level.mismatch_events for level in levels]
        assert events[-1] > events[0]


class TestFig03Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig03()

    def test_sc_in_90s_battery_below_80(self, rows):
        for row in rows.values():
            assert row.sc_efficiency >= 0.88
            assert row.battery_efficiency < 0.80

    def test_battery_efficiency_decreases_with_servers(self, rows):
        assert (rows[1].battery_efficiency > rows[2].battery_efficiency
                > rows[4].battery_efficiency)

    def test_recovery_gain_when_battery_saturates(self, rows):
        """At 2 and 4 servers the battery depletes and recovery pays."""
        assert rows[4].battery_recovery_gain > 0.05

    def test_onoff_waste_is_substantial(self, rows):
        """Section 3.1: the waste eats a large share of the recovery."""
        assert rows[4].onoff_waste_fraction > 0.3


class TestFig04Shape:
    def test_sc_amortized_competitive(self):
        rows = run_fig04()
        sc_mid = 0.5 * (rows["supercapacitor"].amortized_low
                        + rows["supercapacitor"].amortized_high)
        assert 0.2 <= sc_mid <= 0.7  # paper: ~0.4 $/kWh/cycle
        assert rows["lead-acid"].amortized_high < sc_mid
        assert rows["supercapacitor"].initial_low >= 30 * (
            rows["lead-acid"].initial_high)


class TestFig05Shape:
    @pytest.fixture(scope="class")
    def curves(self):
        return run_fig05()

    def test_battery_sag_grows_with_demand(self, curves):
        assert (curves["battery/4"].initial_drop_v
                > curves["battery/2"].initial_drop_v
                > curves["battery/1"].initial_drop_v)

    def test_battery_sags_more_than_sc(self, curves):
        for servers in (1, 2, 4):
            battery_rel = (curves[f"battery/{servers}"].initial_drop_v
                           / 25.6)
            sc_rel = curves[f"sc/{servers}"].initial_drop_v / 16.0
            assert battery_rel > sc_rel

    def test_sc_decline_is_linear(self, curves):
        for servers in (1, 2, 4):
            assert curves[f"sc/{servers}"].linearity_r2 > 0.95

    def test_battery_runtime_collapses_superlinearly(self, curves):
        """Peukert: 4x the power costs the battery >4x the runtime,
        while the SC scales nearly proportionally."""
        battery_ratio = (curves["battery/1"].runtime_s
                         / curves["battery/4"].runtime_s)
        sc_ratio = curves["sc/1"].runtime_s / curves["sc/4"].runtime_s
        assert battery_ratio > 4.5
        assert sc_ratio < battery_ratio


class TestFig06Shape:
    def test_interior_optimum(self):
        points = run_fig06()
        best = optimal_assignment(points)
        assert 0 < best.servers_on_sc < 6

    def test_heavy_sc_assignment_costs_runtime(self):
        """Paper: heavy load on SCs cuts uptime by ~25% on average."""
        points = run_fig06()
        best = optimal_assignment(points)
        heavy = points[5]
        assert heavy.runtime_s < 0.85 * best.runtime_s


class TestFig12Shape:
    def test_ee_ordering(self, fig12):
        """Figure 12(a): BaOnly ~ BaFirst < SCFirst <= HEB family,
        HEB-D on top."""
        rows = fig12.scheme_rows()
        assert rows["BaOnly"]["energy_efficiency"] < rows["SCFirst"][
            "energy_efficiency"]
        assert rows["BaFirst"]["energy_efficiency"] < rows["HEB-D"][
            "energy_efficiency"]
        assert rows["HEB-D"]["energy_efficiency"] >= rows["SCFirst"][
            "energy_efficiency"] - 0.01
        assert rows["HEB-D"]["ee_vs_baonly"] > 1.10

    def test_bafirst_close_to_baonly(self, fig12):
        """'BaFirst is very close to a battery only design'."""
        rows = fig12.scheme_rows()
        assert rows["BaFirst"]["ee_vs_baonly"] == pytest.approx(1.0,
                                                                abs=0.08)

    def test_downtime_ordering(self, fig12):
        """Figure 12(b): hybrids cut downtime; HEB-D cuts it the most."""
        rows = fig12.scheme_rows()
        assert rows["HEB-D"]["downtime_vs_baonly"] < 0.9
        assert (rows["HEB-D"]["downtime_s"]
                <= rows["BaFirst"]["downtime_s"])

    def test_lifetime_ordering(self, fig12):
        """Figure 12(c): SC-preferential schemes spare the battery."""
        rows = fig12.scheme_rows()
        assert rows["HEB-D"]["lifetime_vs_baonly"] > 1.5
        assert (rows["SCFirst"]["lifetime_years"]
                > rows["BaFirst"]["lifetime_years"])

    def test_reu_hybrids_beat_battery_only(self, fig12):
        """Figure 12(d): hybrids absorb renewable energy BaOnly cannot.

        Total REU improves, and the *surplus capture* gap — the quantity
        the battery's charge-current ceiling actually throttles — is
        large (the paper's +81.2% headline; see EXPERIMENTS.md on the
        accounting difference)."""
        rows = fig12.scheme_rows()
        assert rows["HEB-D"]["reu_vs_baonly"] > 1.08
        assert rows["SCFirst"]["reu_vs_baonly"] > 1.08
        assert rows["HEB-D"]["capture_vs_baonly"] > 1.5

    def test_scfirst_and_heb_similar_reu(self, fig12):
        """'SCFirst and HEB ... have very similar REU'."""
        rows = fig12.scheme_rows()
        assert rows["HEB-D"]["reu"] == pytest.approx(rows["SCFirst"]["reu"],
                                                     rel=0.1)

    def test_small_peaks_gain_more_than_large(self, fig12):
        """Paper: +52.5% on small peaks vs +27.1% on large peaks."""
        split = fig12.small_large_split()
        assert (split["small_peaks"]["heb_d_ee_gain"]
                > split["large_peaks"]["heb_d_ee_gain"] * 0.99)


class TestFig15Shape:
    @pytest.fixture(scope="class")
    def results(self):
        return run_fig15()

    def test_esd_dominates_cost(self, results):
        assert results.breakdown.fractions()["esd"] == pytest.approx(
            0.55, abs=0.05)

    def test_node_cheap_relative_to_servers(self, results):
        assert results.breakdown.total < 0.16 * results.server_cost

    def test_roi_positive_across_most_regions(self, results):
        positive = sum(1 for p in results.roi_points if p.worthwhile)
        assert positive / len(results.roi_points) > 0.5

    def test_break_even_ordering(self, results):
        table = results.peak_shaving
        assert (table["HEB"]["break_even_year"]
                < table["BaOnly"]["break_even_year"]
                < table["SCFirst"]["break_even_year"]
                < table["BaFirst"]["break_even_year"])

    def test_heb_revenue_1_9x(self, results):
        assert results.peak_shaving["HEB"]["net_vs_baonly"] >= 1.9

    def test_mismanaged_hybrid_loses_to_battery(self, results):
        table = results.peak_shaving
        assert table["BaFirst"]["final_net"] < table["BaOnly"]["final_net"]
