"""Tests for the solar generation model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.units import hours
from repro.workloads import SolarConfig, generate_solar_trace


class TestConfig:
    def test_defaults_valid(self):
        SolarConfig()

    def test_rejects_inverted_daylight(self):
        with pytest.raises(ConfigurationError):
            SolarConfig(sunrise_s=hours(20), sunset_s=hours(6))

    def test_rejects_bad_attenuation(self):
        with pytest.raises(ConfigurationError):
            SolarConfig(cloud_attenuation=1.5)


class TestGeneration:
    def test_nonnegative_and_bounded(self):
        config = SolarConfig(rated_power_w=400.0, noise_sigma=0.0)
        trace = generate_solar_trace(hours(10), config=config, seed=1)
        assert np.all(trace.values_w >= 0.0)
        assert np.all(trace.values_w <= 400.0 * 1.05)

    def test_zero_at_night(self):
        config = SolarConfig()
        trace = generate_solar_trace(hours(4), config=config, seed=1,
                                     start_time_s=hours(23))
        assert trace.stats().peak_w == pytest.approx(0.0, abs=1e-9)

    def test_daylight_generates(self):
        trace = generate_solar_trace(hours(4), seed=1,
                                     start_time_s=hours(10))
        assert trace.stats().mean_w > 50.0

    def test_deterministic(self):
        one = generate_solar_trace(hours(6), seed=9)
        two = generate_solar_trace(hours(6), seed=9)
        assert np.array_equal(one.values_w, two.values_w)

    def test_clouds_create_deep_valleys(self):
        """The REU experiments need fast, deep dips (Section 2.2)."""
        config = SolarConfig(cloud_attenuation=0.2, noise_sigma=0.0)
        trace = generate_solar_trace(hours(6), config=config, seed=3,
                                     start_time_s=hours(9))
        stats = trace.stats()
        assert stats.valley_w < 0.5 * stats.peak_w

    def test_no_clouds_smooth_envelope(self):
        config = SolarConfig(cloud_attenuation=1.0, noise_sigma=0.0)
        trace = generate_solar_trace(hours(6), config=config, seed=3,
                                     start_time_s=hours(9))
        diffs = np.abs(np.diff(trace.values_w))
        assert diffs.max() < 1.0  # watts per second

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            generate_solar_trace(0.0)
