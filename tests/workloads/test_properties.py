"""Property-based tests on workload generation invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import ServerConfig
from repro.units import minutes
from repro.workloads import generate_workload
from repro.workloads.synthetic import PeakClass, WorkloadSpec


@st.composite
def specs(draw):
    base = draw(st.floats(min_value=0.0, max_value=0.5))
    burst = draw(st.floats(min_value=base + 0.05, max_value=1.0))
    duration = draw(st.floats(min_value=30.0, max_value=minutes(10)))
    period = draw(st.floats(min_value=duration + 1.0,
                            max_value=minutes(40)))
    peak_class = draw(st.sampled_from(list(PeakClass)))
    return WorkloadSpec(
        name="HYP", full_name="hypothesis", category="generated",
        peak_class=peak_class, base_util=base, burst_util=burst,
        burst_period_s=period, burst_duration_s=duration,
        noise_sigma=draw(st.floats(min_value=0.0, max_value=0.1)))


class TestGenerationProperties:
    @given(specs(), st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_power_within_server_envelope(self, spec, servers, seed):
        server = ServerConfig()
        trace = generate_workload(spec, duration_s=600.0,
                                  num_servers=servers, seed=seed)
        assert trace.num_servers == servers
        assert np.all(trace.values_w >= server.idle_power_w - 1e-9)
        assert np.all(trace.values_w <= server.peak_power_w + 1e-9)

    @given(specs(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_per_seed(self, spec, seed):
        one = generate_workload(spec, duration_s=300.0, seed=seed)
        two = generate_workload(spec, duration_s=300.0, seed=seed)
        assert np.array_equal(one.values_w, two.values_w)

    @given(specs())
    @settings(max_examples=30, deadline=None)
    def test_low_frequency_class_never_hotter(self, spec):
        """For identical spec parameters, the small-peak (low frequency)
        variant draws no more power than the large-peak variant."""
        import dataclasses

        small = dataclasses.replace(spec, peak_class=PeakClass.SMALL)
        large = dataclasses.replace(spec, peak_class=PeakClass.LARGE)
        small_trace = generate_workload(small, duration_s=1200.0, seed=1)
        large_trace = generate_workload(large, duration_s=1200.0, seed=1)
        assert (small_trace.aggregate().stats().mean_w
                <= large_trace.aggregate().stats().mean_w + 1e-6)

    @given(specs(), st.floats(min_value=60.0, max_value=1800.0))
    @settings(max_examples=30, deadline=None)
    def test_duration_respected(self, spec, duration):
        trace = generate_workload(spec, duration_s=duration, seed=0)
        assert trace.num_samples == max(1, int(round(duration)))
