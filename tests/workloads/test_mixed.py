"""Tests for mixed and phased workload composition."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.units import minutes
from repro.workloads import mixed_workload, phased_workload


class TestMixed:
    def test_one_row_per_assignment(self):
        trace = mixed_workload(["TS", "MS", "PR"], duration_s=600)
        assert trace.num_servers == 3
        assert trace.num_samples == 600

    def test_rows_follow_their_workload_class(self):
        """A large-peak server must run hotter than a small-peak one."""
        trace = mixed_workload(["DA", "TS"], duration_s=3600, seed=2)
        da_mean = trace.server(0).stats().mean_w
        ts_mean = trace.server(1).stats().mean_w
        # DA runs at the high frequency with tall bursts.
        assert trace.server(0).stats().peak_w > trace.server(1).stats().peak_w

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            mixed_workload([], duration_s=60)

    def test_unknown_name_propagates(self):
        with pytest.raises(ConfigurationError):
            mixed_workload(["NOPE"], duration_s=60)

    def test_name_encodes_mix(self):
        trace = mixed_workload(["TS", "MS"], duration_s=60)
        assert trace.name == "mixed:TS+MS"


class TestPhased:
    def test_total_duration(self):
        trace = phased_workload(["TS", "DA"], phase_duration_s=minutes(5))
        assert trace.num_samples == 2 * int(minutes(5))

    def test_phases_have_distinct_statistics(self):
        trace = phased_workload(["TS", "DA"],
                                phase_duration_s=minutes(30), seed=3)
        half = trace.num_samples // 2
        first = trace.aggregate().values_w[:half]
        second = trace.aggregate().values_w[half:]
        assert second.max() > first.max()  # DA peaks above TS

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            phased_workload([], phase_duration_s=60)
        with pytest.raises(ConfigurationError):
            phased_workload(["TS"], phase_duration_s=0)

    def test_runs_through_engine(self):
        """A phased trace exercises the controller's re-classification."""
        from repro.config import prototype_buffer, prototype_cluster
        from repro.core import make_policy
        from repro.sim import HybridBuffers, Simulation

        trace = phased_workload(["TS", "DA"],
                                phase_duration_s=minutes(20), seed=3)
        hybrid = prototype_buffer()
        result = Simulation(trace, make_policy("HEB-D", hybrid=hybrid),
                            HybridBuffers(hybrid),
                            cluster_config=prototype_cluster()).run()
        notes = {record.note.split(" ")[0] for record in result.slots}
        assert len(result.slots) == 4
        assert result.metrics.energy_efficiency > 0.5
