"""Tests for PowerTrace / ClusterTrace containers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.workloads import ClusterTrace, PowerTrace


def make_trace(values, dt=1.0):
    return PowerTrace(np.asarray(values, dtype=float), dt)


class TestPowerTraceValidation:
    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            make_trace([])

    def test_rejects_negative_power(self):
        with pytest.raises(TraceError):
            make_trace([1.0, -2.0])

    def test_rejects_nan(self):
        with pytest.raises(TraceError):
            make_trace([1.0, float("nan")])

    def test_rejects_bad_dt(self):
        with pytest.raises(TraceError):
            make_trace([1.0], dt=0.0)

    def test_rejects_2d(self):
        with pytest.raises(TraceError):
            PowerTrace(np.ones((2, 2)), 1.0)

    def test_values_are_read_only(self):
        trace = make_trace([1.0, 2.0])
        with pytest.raises(ValueError):
            trace.values_w[0] = 5.0


class TestPowerTraceAccess:
    def test_len_and_duration(self):
        trace = make_trace([1, 2, 3], dt=2.0)
        assert len(trace) == 3
        assert trace.duration_s == 6.0

    def test_getitem(self):
        trace = make_trace([1, 2, 3])
        assert trace[1] == 2.0

    def test_stats(self):
        trace = make_trace([10, 30, 20])
        stats = trace.stats()
        assert stats.peak_w == 30
        assert stats.valley_w == 10
        assert stats.mean_w == pytest.approx(20)

    def test_energy(self):
        trace = make_trace([100, 100], dt=3.0)
        assert trace.energy_j() == pytest.approx(600.0)


class TestSlots:
    def test_num_slots_rounds_up(self):
        trace = make_trace(list(range(25)), dt=1.0)
        assert trace.num_slots(10.0) == 3

    def test_slot_extraction(self):
        trace = make_trace(list(range(25)), dt=1.0)
        slot = trace.slot(1, 10.0)
        assert len(slot) == 10
        assert slot[0] == 10.0

    def test_final_ragged_slot(self):
        trace = make_trace(list(range(25)), dt=1.0)
        slot = trace.slot(2, 10.0)
        assert len(slot) == 5

    def test_slot_out_of_range(self):
        trace = make_trace([1, 2, 3])
        with pytest.raises(TraceError):
            trace.slot(5, 2.0)

    def test_iter_slots_covers_everything(self):
        trace = make_trace(list(range(25)), dt=1.0)
        total = sum(len(s) for s in trace.iter_slots(10.0))
        assert total == 25


class TestTransforms:
    def test_resample_preserves_duration(self):
        trace = make_trace(list(range(100)), dt=1.0)
        coarse = trace.resample(5.0)
        assert coarse.duration_s == pytest.approx(trace.duration_s, abs=5.0)

    def test_scaled(self):
        trace = make_trace([1, 2]).scaled(3.0)
        assert trace[1] == 6.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(TraceError):
            make_trace([1]).scaled(-1.0)

    def test_clipped(self):
        trace = make_trace([10, 200]).clipped(50.0)
        assert trace[1] == 50.0

    def test_add(self):
        combined = make_trace([1, 2]) + make_trace([3, 4])
        assert combined[0] == 4.0

    def test_add_length_mismatch(self):
        with pytest.raises(TraceError):
            make_trace([1, 2]) + make_trace([1])

    @given(st.lists(st.floats(min_value=0, max_value=1e5),
                    min_size=1, max_size=200),
           st.floats(min_value=0.1, max_value=60.0))
    @settings(max_examples=50, deadline=None)
    def test_energy_consistent_with_stats(self, values, dt):
        trace = make_trace(values, dt=dt)
        stats = trace.stats()
        assert trace.energy_j() == pytest.approx(
            stats.mean_w * stats.duration_s, rel=1e-9, abs=1e-6)


class TestClusterTrace:
    def test_shape_accessors(self):
        trace = ClusterTrace(np.ones((3, 10)), 1.0)
        assert trace.num_servers == 3
        assert trace.num_samples == 10
        assert trace.shape() == (3, 10)

    def test_rejects_1d(self):
        with pytest.raises(TraceError):
            ClusterTrace(np.ones(5), 1.0)

    def test_rejects_negative(self):
        with pytest.raises(TraceError):
            ClusterTrace(-np.ones((2, 2)), 1.0)

    def test_server_extraction(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        trace = ClusterTrace(values, 1.0)
        assert list(trace.server(1).values_w) == [3.0, 4.0]

    def test_aggregate_sums_servers(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        trace = ClusterTrace(values, 1.0)
        assert list(trace.aggregate().values_w) == [4.0, 6.0]

    def test_at_returns_copy(self):
        trace = ClusterTrace(np.ones((2, 3)), 1.0)
        sample = trace.at(0)
        sample[0] = 99.0
        assert trace.values_w[0, 0] == 1.0
