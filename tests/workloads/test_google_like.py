"""Tests for the Google-cluster-style trace generator (Figure 1a)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.units import days, hours
from repro.workloads import generate_google_like_trace


class TestGeneration:
    def test_bounded_by_nameplate(self):
        trace = generate_google_like_trace(days(2), nameplate_w=1000.0)
        assert np.all(trace.values_w <= 1000.0)
        assert np.all(trace.values_w >= 0.0)

    def test_deterministic(self):
        one = generate_google_like_trace(hours(12), seed=7)
        two = generate_google_like_trace(hours(12), seed=7)
        assert np.array_equal(one.values_w, two.values_w)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            generate_google_like_trace(0.0)
        with pytest.raises(ConfigurationError):
            generate_google_like_trace(100.0, nameplate_w=0.0)
        with pytest.raises(ConfigurationError):
            generate_google_like_trace(100.0, ar_coefficient=1.0)

    def test_peaks_are_rare(self):
        """Figure 1(a)'s premise: demand rarely reaches the nameplate, so
        full provisioning has near-zero MPPU."""
        trace = generate_google_like_trace(days(3), seed=1)
        frac_at_peak = float((trace.values_w >= 0.95 * 1000.0).mean())
        assert frac_at_peak < 0.05

    def test_under_provisioning_raises_mppu(self):
        """Lower budgets are reached a monotonically larger share of time."""
        trace = generate_google_like_trace(days(3), seed=1)
        fractions = [float((trace.values_w >= budget).mean())
                     for budget in (1000.0, 800.0, 600.0, 400.0)]
        assert fractions == sorted(fractions)
        assert fractions[-1] > 10 * max(fractions[0], 1e-6)

    def test_diurnal_pattern_present(self):
        """Day/night means must differ measurably."""
        trace = generate_google_like_trace(
            days(4), seed=2, diurnal_amplitude=0.2, spike_rate_per_day=0.0,
            ar_sigma=1e-6)
        samples_per_day = int(days(1) / trace.dt_s)
        one_day = trace.values_w[:samples_per_day]
        # The sine is symmetric around noon/midnight, so compare the night
        # quarter (00-06h) against the midday window (09-15h).
        quarter = samples_per_day // 4
        night = one_day[:quarter].mean()
        midday = one_day[int(1.5 * quarter):int(2.5 * quarter)].mean()
        assert midday - night > 100.0
