"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads import (
    ClusterTrace,
    PowerTrace,
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)


@pytest.fixture
def power_trace():
    return PowerTrace(np.array([10.0, 20.5, 30.25]), 2.0, name="pt")


@pytest.fixture
def cluster_trace():
    return ClusterTrace(np.array([[1.0, 2.0], [3.0, 4.0]]), 1.0, name="ct")


class TestNPZ:
    def test_power_roundtrip(self, tmp_path, power_trace):
        path = tmp_path / "trace.npz"
        save_trace_npz(power_trace, path)
        loaded = load_trace_npz(path)
        assert isinstance(loaded, PowerTrace)
        assert loaded.name == "pt"
        assert loaded.dt_s == 2.0
        assert np.array_equal(loaded.values_w, power_trace.values_w)

    def test_cluster_roundtrip(self, tmp_path, cluster_trace):
        path = tmp_path / "trace.npz"
        save_trace_npz(cluster_trace, path)
        loaded = load_trace_npz(path)
        assert isinstance(loaded, ClusterTrace)
        assert np.array_equal(loaded.values_w, cluster_trace.values_w)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace_npz(tmp_path / "nope.npz")

    def test_wrong_content(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, something=np.ones(3))
        with pytest.raises(TraceError):
            load_trace_npz(path)


class TestCSV:
    def test_power_roundtrip(self, tmp_path, power_trace):
        path = tmp_path / "trace.csv"
        save_trace_csv(power_trace, path)
        loaded = load_trace_csv(path)
        assert isinstance(loaded, PowerTrace)
        assert loaded.dt_s == 2.0
        assert np.allclose(loaded.values_w, power_trace.values_w)

    def test_cluster_roundtrip(self, tmp_path, cluster_trace):
        path = tmp_path / "trace.csv"
        save_trace_csv(cluster_trace, path)
        loaded = load_trace_csv(path)
        assert isinstance(loaded, ClusterTrace)
        assert np.allclose(loaded.values_w, cluster_trace.values_w)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace_csv(tmp_path / "nope.csv")

    def test_malformed_csv(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not,a\ntrace,file\n")
        with pytest.raises(TraceError):
            load_trace_csv(path)

    def test_generated_workload_roundtrip(self, tmp_path):
        from repro.workloads import get_workload
        trace = get_workload("TS", duration_s=120, seed=4)
        path = tmp_path / "ts.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert loaded.num_servers == trace.num_servers
        assert np.allclose(loaded.values_w, trace.values_w, atol=1e-5)
