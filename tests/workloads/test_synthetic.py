"""Tests for the eight Table 1 workload generators."""

import numpy as np
import pytest

from repro.config import ServerConfig
from repro.errors import ConfigurationError
from repro.units import hours
from repro.workloads import (
    LARGE_PEAK_WORKLOADS,
    SMALL_PEAK_WORKLOADS,
    WORKLOADS,
    PeakClass,
    generate_workload,
    get_workload,
    workload_names,
)
from repro.workloads.synthetic import WorkloadSpec, frequency_power_scale


class TestCatalog:
    def test_eight_workloads(self):
        assert len(WORKLOADS) == 8
        assert set(workload_names()) == set(WORKLOADS)

    def test_paper_order(self):
        assert workload_names() == ("PR", "WC", "DA", "WS", "MS",
                                    "DFS", "HB", "TS")

    def test_group_split_is_five_three(self):
        assert len(LARGE_PEAK_WORKLOADS) == 5
        assert len(SMALL_PEAK_WORKLOADS) == 3

    def test_groups_partition_catalog(self):
        assert (set(LARGE_PEAK_WORKLOADS) | set(SMALL_PEAK_WORKLOADS)
                == set(WORKLOADS))
        assert not set(LARGE_PEAK_WORKLOADS) & set(SMALL_PEAK_WORKLOADS)


class TestSpecValidation:
    def test_rejects_base_above_burst(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="X", full_name="x", category="c",
                         peak_class=PeakClass.SMALL, base_util=0.9,
                         burst_util=0.5, burst_period_s=600,
                         burst_duration_s=100)

    def test_rejects_duration_above_period(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="X", full_name="x", category="c",
                         peak_class=PeakClass.SMALL, base_util=0.1,
                         burst_util=0.9, burst_period_s=100,
                         burst_duration_s=200)


class TestGeneration:
    def test_shape(self):
        trace = get_workload("PR", duration_s=600, num_servers=6)
        assert trace.num_servers == 6
        assert trace.num_samples == 600

    def test_deterministic_per_seed(self):
        one = get_workload("WC", duration_s=600, seed=3)
        two = get_workload("WC", duration_s=600, seed=3)
        assert np.array_equal(one.values_w, two.values_w)

    def test_different_seeds_differ(self):
        one = get_workload("WC", duration_s=3600, seed=3)
        two = get_workload("WC", duration_s=3600, seed=4)
        assert not np.array_equal(one.values_w, two.values_w)

    def test_power_within_server_envelope(self):
        server = ServerConfig()
        trace = get_workload("DA", duration_s=hours(1))
        assert np.all(trace.values_w >= server.idle_power_w - 1e-9)
        assert np.all(trace.values_w <= server.peak_power_w + 1e-9)

    def test_large_peaks_exceed_budget(self):
        """Large-peak aggregate demand must breach the 260 W budget."""
        trace = get_workload("DA", duration_s=hours(2), seed=1)
        assert trace.aggregate().stats().peak_w > 260.0

    def test_small_peaks_are_smaller(self):
        small = get_workload("TS", duration_s=hours(2), seed=1)
        large = get_workload("DA", duration_s=hours(2), seed=1)
        small_excess = small.aggregate().stats().peak_w - 260.0
        large_excess = large.aggregate().stats().peak_w - 260.0
        assert large_excess > small_excess

    def test_valleys_leave_charging_headroom(self):
        for name in workload_names():
            trace = get_workload(name, duration_s=hours(2), seed=1)
            assert trace.aggregate().stats().valley_w < 260.0

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_workload("NOPE", duration_s=60)

    def test_case_insensitive_lookup(self):
        trace = get_workload("pr", duration_s=60)
        assert trace.name == "PR"

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            generate_workload(WORKLOADS["PR"], duration_s=0)


class TestFrequencyScaling:
    def test_high_frequency_scale_is_one(self):
        server = ServerConfig()
        assert frequency_power_scale(
            server.high_frequency_ghz, server) == pytest.approx(1.0)

    def test_low_frequency_scales_down(self):
        server = ServerConfig()
        assert frequency_power_scale(
            server.low_frequency_ghz, server) < 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            frequency_power_scale(0.0, ServerConfig())

    def test_small_group_runs_cooler(self):
        """The low-frequency group's dynamic power is visibly smaller."""
        small = get_workload("TS", duration_s=hours(1), seed=2)
        large = get_workload("DA", duration_s=hours(1), seed=2)
        assert (small.aggregate().stats().peak_w
                < large.aggregate().stats().peak_w)
