"""Tests for configuration dataclasses and presets."""

import dataclasses

import pytest

from repro.config import (
    BatteryConfig,
    ClusterConfig,
    ControllerConfig,
    HybridBufferConfig,
    PATConfig,
    PredictorConfig,
    ServerConfig,
    SimulationConfig,
    SupercapConfig,
    TCOConfig,
    paper_tco,
    prototype_battery,
    prototype_buffer,
    prototype_cluster,
    prototype_supercap,
)
from repro.errors import ConfigurationError
from repro.units import wh_to_joules


class TestBatteryConfig:
    def test_defaults_valid(self):
        config = BatteryConfig()
        assert config.nominal_voltage_v > config.empty_voltage_v

    def test_nominal_energy_uses_mean_voltage(self):
        config = BatteryConfig()
        mean_v = 0.5 * (config.nominal_voltage_v + config.empty_voltage_v)
        assert config.nominal_energy_j == pytest.approx(
            wh_to_joules(config.capacity_ah * mean_v))

    def test_rejects_inverted_voltages(self):
        with pytest.raises(ConfigurationError):
            BatteryConfig(nominal_voltage_v=20.0, empty_voltage_v=25.0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            BatteryConfig(capacity_ah=0.0)

    def test_rejects_bad_kibam_c(self):
        with pytest.raises(ConfigurationError):
            BatteryConfig(kibam_c=1.5)

    def test_rejects_peukert_below_one(self):
        with pytest.raises(ConfigurationError):
            BatteryConfig(peukert_exponent=0.9)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            BatteryConfig(charge_efficiency=1.5)
        with pytest.raises(ConfigurationError):
            BatteryConfig(discharge_efficiency=0.0)

    def test_scaled_to_energy_hits_target(self):
        config = BatteryConfig()
        target = 2.0 * config.nominal_energy_j
        scaled = config.scaled_to_energy(target)
        assert scaled.nominal_energy_j == pytest.approx(target)

    def test_scaling_preserves_c_rate(self):
        config = BatteryConfig()
        scaled = config.scaled_to_energy(2.0 * config.nominal_energy_j)
        # Charging C-rate (A per Ah) must be preserved.
        assert (scaled.max_charge_current_a / scaled.capacity_ah
                == pytest.approx(
                    config.max_charge_current_a / config.capacity_ah))

    def test_scaling_reduces_resistance(self):
        config = BatteryConfig()
        scaled = config.scaled_to_energy(2.0 * config.nominal_energy_j)
        assert scaled.internal_resistance_ohm == pytest.approx(
            config.internal_resistance_ohm / 2.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            BatteryConfig().scaled_to_energy(0.0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            BatteryConfig().capacity_ah = 10.0


class TestSupercapConfig:
    def test_nominal_energy_is_usable_window(self):
        config = SupercapConfig(capacitance_f=100.0, max_voltage_v=10.0,
                                min_voltage_v=5.0)
        assert config.nominal_energy_j == pytest.approx(
            0.5 * 100.0 * (100.0 - 25.0))

    def test_rejects_inverted_voltages(self):
        with pytest.raises(ConfigurationError):
            SupercapConfig(max_voltage_v=5.0, min_voltage_v=10.0)

    def test_rejects_negative_esr(self):
        with pytest.raises(ConfigurationError):
            SupercapConfig(esr_ohm=-0.01)

    def test_scaled_to_energy(self):
        config = SupercapConfig()
        scaled = config.scaled_to_energy(3.0 * config.nominal_energy_j)
        assert scaled.nominal_energy_j == pytest.approx(
            3.0 * config.nominal_energy_j)
        assert scaled.esr_ohm == pytest.approx(config.esr_ohm / 3.0)


class TestServerConfig:
    def test_defaults_match_prototype(self):
        config = ServerConfig()
        assert config.idle_power_w == 30.0
        assert config.peak_power_w == 70.0
        assert config.low_frequency_ghz == 1.3
        assert config.high_frequency_ghz == 1.8

    def test_rejects_idle_above_peak(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(idle_power_w=80.0, peak_power_w=70.0)

    def test_rejects_inverted_frequencies(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(low_frequency_ghz=2.0, high_frequency_ghz=1.3)


class TestPredictorConfig:
    def test_defaults_valid(self):
        PredictorConfig()

    @pytest.mark.parametrize("field", ["alpha", "beta", "gamma"])
    def test_rejects_out_of_range_smoothing(self, field):
        with pytest.raises(ConfigurationError):
            PredictorConfig(**{field: 1.0})
        with pytest.raises(ConfigurationError):
            PredictorConfig(**{field: 0.0})

    def test_rejects_short_season(self):
        with pytest.raises(ConfigurationError):
            PredictorConfig(season_length=1)


class TestPATConfig:
    def test_defaults_valid(self):
        config = PATConfig()
        assert config.delta_r == 0.01

    def test_rejects_bad_delta_r(self):
        with pytest.raises(ConfigurationError):
            PATConfig(delta_r=0.0)
        with pytest.raises(ConfigurationError):
            PATConfig(delta_r=1.0)

    def test_rejects_zero_quanta(self):
        with pytest.raises(ConfigurationError):
            PATConfig(energy_quantum_j=0.0)
        with pytest.raises(ConfigurationError):
            PATConfig(power_quantum_w=0.0)


class TestControllerConfig:
    def test_default_slot_is_ten_minutes(self):
        assert ControllerConfig().slot_seconds == 600.0

    def test_rejects_bad_dod(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(dod_battery=0.0)
        with pytest.raises(ConfigurationError):
            ControllerConfig(dod_supercap=1.5)


class TestClusterConfig:
    def test_prototype_budget(self):
        config = prototype_cluster()
        assert config.utility_budget_w == 260.0
        assert config.num_servers == 6

    def test_peak_demand(self):
        config = ClusterConfig()
        assert config.peak_demand_w == 6 * 70.0

    def test_rejects_zero_servers(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_servers=0)


class TestHybridBufferConfig:
    def test_default_ratio_is_three_to_seven(self):
        config = HybridBufferConfig()
        assert config.sc_fraction == pytest.approx(0.3)
        assert config.sc_energy_j == pytest.approx(
            0.3 * config.total_energy_j)
        assert config.battery_energy_j == pytest.approx(
            0.7 * config.total_energy_j)

    def test_with_ratio_keeps_total(self):
        config = HybridBufferConfig()
        other = config.with_ratio(0.5)
        assert other.total_energy_j == config.total_energy_j
        assert other.sc_fraction == 0.5

    def test_with_total_energy_keeps_ratio(self):
        config = HybridBufferConfig()
        other = config.with_total_energy(2 * config.total_energy_j)
        assert other.sc_fraction == config.sc_fraction
        assert other.total_energy_j == 2 * config.total_energy_j

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            HybridBufferConfig(sc_fraction=1.5)

    def test_prototype_buffer_factory(self):
        config = prototype_buffer(sc_fraction=0.4, total_energy_wh=200.0)
        assert config.sc_fraction == 0.4
        assert config.total_energy_j == pytest.approx(wh_to_joules(200.0))


class TestTCOConfig:
    def test_paper_scenario(self):
        config = paper_tco()
        assert config.datacenter_power_kw == 100.0
        assert config.buffer_energy_kwh == 20.0
        assert config.peak_tariff_per_kw == 12.0

    def test_hybrid_cost_blend(self):
        config = TCOConfig(battery_cost_per_kwh=300.0,
                           supercap_cost_per_kwh=10_000.0, sc_fraction=0.3)
        assert config.hybrid_cost_per_kwh == pytest.approx(
            0.7 * 300.0 + 0.3 * 10_000.0)

    def test_rejects_nonpositive_costs(self):
        with pytest.raises(ConfigurationError):
            TCOConfig(battery_cost_per_kwh=0.0)


class TestSimulationConfig:
    def test_default_tick(self):
        assert SimulationConfig().tick_seconds == 1.0

    def test_rejects_zero_tick(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(tick_seconds=0.0)


class TestPresets:
    def test_prototype_battery_is_24v_string(self):
        config = prototype_battery()
        assert 21.0 <= config.empty_voltage_v < config.nominal_voltage_v

    def test_prototype_supercap_is_maxwell_class(self):
        config = prototype_supercap()
        assert config.capacitance_f == 600.0
        assert config.max_voltage_v == 16.0
