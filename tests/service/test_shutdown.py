"""Shutdown invariant: every accepted run is settled, both ways.

Graceful shutdown (``drain=True``) executes queued and in-flight runs
to completion before returning; immediate shutdown (``drain=False``)
faults queued runs with :class:`ServiceShutdownError` while the run
already executing still completes.  Either way, after ``shutdown()``
returns there is no accepted run left in a non-terminal state — the
"never drop accepted work" half of the backpressure contract.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServiceShutdownError
from repro.service import DONE, FAILED, ServiceClient

from .conftest import (
    GatedExecutor,
    make_service,
    run_async,
    start_server,
    tiny_request,
)


def test_graceful_shutdown_drains_queued_runs(tiny_result):
    async def scenario():
        executor = GatedExecutor(tiny_result)
        service = make_service(run_batch=executor, max_group=1)
        service.start()
        executor.hold()
        entries = [service.submit(tiny_request(seed=50 + i))[0]
                   for i in range(4)]
        while not executor.started.is_set():
            await asyncio.sleep(0.001)
        closing = asyncio.get_running_loop().create_task(
            service.shutdown(drain=True))
        await asyncio.sleep(0.01)
        assert not closing.done()  # drain waits for in-flight work
        with pytest.raises(ServiceShutdownError):
            service.submit(tiny_request(seed=99))
        executor.release()
        await asyncio.wait_for(closing, timeout=10.0)
        assert all(entry.status == DONE for entry in entries)
        assert executor.executions == 4
        assert not service.accepting

    run_async(scenario())


def test_immediate_shutdown_faults_queued_completes_inflight(tiny_result):
    async def scenario():
        executor = GatedExecutor(tiny_result)
        service = make_service(run_batch=executor, max_group=1)
        service.start()
        executor.hold()
        inflight, _ = service.submit(tiny_request(seed=60))
        while not executor.started.is_set():
            await asyncio.sleep(0.001)
        queued = [service.submit(tiny_request(seed=61 + i))[0]
                  for i in range(3)]
        closing = asyncio.get_running_loop().create_task(
            service.shutdown(drain=False))
        await asyncio.sleep(0)  # queued runs fault before drain returns
        for entry in queued:
            assert entry.status == FAILED
            assert entry.error_code == "ServiceShutdownError"
            assert entry.done.is_set()
        executor.release()
        await asyncio.wait_for(closing, timeout=10.0)
        # the run that was already executing still completed
        assert inflight.status == DONE
        assert executor.executions == 1
        assert service.stats()["queue_depth"] == 0

    run_async(scenario())


def test_shutdown_under_load_settles_every_accepted_run(tiny_result):
    """Stress the race window: shutdown fires mid-burst; afterwards no
    accepted run is left non-terminal, whichever side of the cut it
    landed on."""

    async def scenario():
        executor = GatedExecutor(tiny_result)
        service = make_service(run_batch=executor, max_group=2)
        service.start()
        accepted = []
        for i in range(10):
            entry, created = service.submit(tiny_request(seed=70 + i))
            if created:
                accepted.append(entry)
            if i == 4:
                await asyncio.sleep(0)  # let dispatch interleave
        closing = asyncio.get_running_loop().create_task(
            service.shutdown(drain=True))
        await asyncio.wait_for(closing, timeout=10.0)
        assert accepted and all(entry.terminal for entry in accepted)
        assert all(entry.status == DONE for entry in accepted)

    run_async(scenario())


def test_http_submission_after_shutdown_is_503(tiny_result):
    async def scenario():
        executor = GatedExecutor(tiny_result)
        service = make_service(run_batch=executor)
        server = await start_server(service)
        await service.shutdown(drain=True)  # listener still up
        client = ServiceClient(server.host, server.port)
        try:
            status, _, body = await client.submit(
                {"scheme": "BaOnly", "workload": "WS",
                 "setup": {"duration_h": 1.0 / 60.0, "seed": 1}})
            assert status == 503
            assert body["error"]["code"] == "ServiceShutdownError"
        finally:
            await client.close()
        await server.close()

    run_async(scenario())
