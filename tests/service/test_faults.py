"""Fault-carrying submissions: scalar fallback, bit-exact, never a 500.

A spec with a fault schedule must route through the scalar engine (the
batched engine doesn't model fault injection) and return exactly the
bytes a direct in-process :func:`execute_request` produces; a malformed
schedule is a structured 400 with ``FaultSpecError`` as the code.
"""

from __future__ import annotations

from repro.errors import FaultSpecError
from repro.runner import execute_request
from repro.service import ServiceClient, request_from_spec
from repro.sim.results import result_to_dict

import pytest

from .conftest import make_service, run_async, start_server

FAULTED_SPEC = {
    "scheme": "HEB-D",
    "workload": "PR",
    "setup": {"duration_h": 1.0 / 60.0, "seed": 3},
    "faults": {
        "seed": 7,
        "events": [
            {"kind": "outage", "start_s": 10.0, "duration_s": 20.0},
        ],
    },
}


def test_faulted_run_matches_scalar_execution_bit_exactly():
    async def scenario():
        service = make_service()  # real runner (batch engine enabled)
        server = await start_server(service)
        client = ServiceClient(server.host, server.port)
        try:
            snapshot, _ = await client.submit_and_wait(FAULTED_SPEC)
            assert snapshot["status"] == "done"
            served = snapshot["result"]
        finally:
            await client.close()
        await server.close()
        return served

    served = run_async(scenario())
    direct = result_to_dict(execute_request(
        request_from_spec(FAULTED_SPEC)))
    assert served == direct
    assert "fault_downtime_s" in served["metrics"]


@pytest.mark.parametrize("faults, code", [
    ("stormy", "SpecError"),  # not an object
    ({"events": [{"kind": "sharknado", "start_s": 0.0,
                  "duration_s": 1.0}]}, "FaultSpecError"),
    ({"events": [{"kind": "outage"}]}, "FaultSpecError"),
    ({"events": "outage"}, "FaultSpecError"),
])
def test_malformed_fault_schedule_is_structured_400(faults, code):
    async def scenario():
        service = make_service()
        server = await start_server(service)
        client = ServiceClient(server.host, server.port)
        try:
            spec = dict(FAULTED_SPEC, faults=faults)
            status, _, body = await client.submit(spec)
            assert status == 400
            assert body["error"]["code"] == code
            assert "message" in body["error"]
            assert service.metrics.submissions == 0  # rejected pre-queue
        finally:
            await client.close()
        await server.close()

    run_async(scenario())
