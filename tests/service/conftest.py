"""Shared fixtures for the scenario-service suite.

The concurrency tests want execution to be *controllable*, not fast or
real: :class:`GatedExecutor` stands in for ``runner.map`` so a test can
hold runs in-flight while it forces interleavings (concurrent identical
submissions, queue overflow, shutdown under load) and then release
them.  It returns a genuine :class:`RunResult` (simulated once per
session) so everything downstream — serialization, snapshots, streams —
exercises the real formats.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, List, Optional, Sequence

import pytest

from repro.runner import (
    ExperimentRunner,
    ExperimentSetup,
    RunRequest,
    execute_request,
)
from repro.service import ScenarioServer, ScenarioService
from repro.sim import RunResult

#: A tiny, fast request the suite reuses everywhere (60 simulated
#: seconds on the six-server prototype).
TINY_SETUP = ExperimentSetup(duration_h=1.0 / 60.0, seed=1)


def tiny_request(seed: int = 1, workload: str = "WS",
                 scheme: str = "BaOnly", **overrides) -> RunRequest:
    """A cheap request; vary ``seed`` to get distinct cache keys."""
    setup = ExperimentSetup(duration_h=1.0 / 60.0, seed=seed, **overrides)
    return RunRequest(scheme=scheme, workload=workload, setup=setup)


@pytest.fixture(scope="session")
def tiny_result() -> RunResult:
    """One real simulated result, reused as the stub executor's answer."""
    return execute_request(tiny_request())


class GatedExecutor:
    """A ``run_batch`` stand-in with a hold gate and an execution log.

    ``calls`` records every dispatched request batch; ``executions``
    counts individual requests executed.  While ``hold()`` is in effect
    the executor blocks its worker thread (runs stay in-flight), which
    is how tests force the check-then-act interleavings the dedup and
    shutdown invariants must survive.
    """

    def __init__(self, result: RunResult,
                 fail_with: Optional[Exception] = None) -> None:
        self._result = result
        self._gate = threading.Event()
        self._gate.set()
        self._fail_with = fail_with
        self.calls: List[List[RunRequest]] = []
        self.started = threading.Event()

    def hold(self) -> None:
        self._gate.clear()

    def release(self) -> None:
        self._gate.set()

    @property
    def executions(self) -> int:
        return sum(len(call) for call in self.calls)

    def __call__(self, requests: Sequence[RunRequest]) -> List[RunResult]:
        self.started.set()
        assert self._gate.wait(timeout=30.0), "gate never released"
        if self._fail_with is not None:
            raise self._fail_with
        self.calls.append(list(requests))
        return [self._result] * len(requests)


def make_service(run_batch: Optional[Callable] = None,
                 cache=None, **kwargs) -> ScenarioService:
    """A service over a serial cacheless runner (behaviour-test rig)."""
    runner = ExperimentRunner(jobs=1, cache=cache)
    kwargs.setdefault("batch_window_s", 0.0)
    return ScenarioService(runner, run_batch=run_batch, **kwargs)


async def start_server(service: ScenarioService) -> ScenarioServer:
    server = ScenarioServer(service, host="127.0.0.1", port=0)
    await server.start()
    return server


def run_async(coro, timeout_s: float = 30.0):
    """Run a test scenario with a hang guard (shutdown tests rely on it)."""

    async def guarded():
        return await asyncio.wait_for(coro, timeout=timeout_s)

    return asyncio.run(guarded())
