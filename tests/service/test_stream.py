"""Streaming: chunked progress lines reassemble to the polled result.

The stream endpoint must tell the same story polling does — every line
is a valid snapshot, statuses only move forward through the lifecycle,
and the terminal line carries the exact result a ``GET /runs/{key}``
returns.
"""

from __future__ import annotations

import asyncio

from repro.errors import ProtocolError
from repro.service import ServiceClient

import pytest

from .conftest import (
    GatedExecutor,
    make_service,
    run_async,
    start_server,
)

_LIFECYCLE = ("queued", "running", "done")


def _spec(seed: int = 1) -> dict:
    return {"scheme": "BaOnly", "workload": "WS",
            "setup": {"duration_h": 1.0 / 60.0, "seed": seed}}


def test_stream_reports_forward_lifecycle_and_final_result(tiny_result):
    """Hold the run in-flight so the stream provably sees transitions
    (queued/running) before the terminal line, then compare that line
    against a fresh poll byte-for-byte (same JSON object)."""

    async def scenario():
        executor = GatedExecutor(tiny_result)
        service = make_service(run_batch=executor, max_group=1)
        server = await start_server(service)
        executor.hold()
        submitter = ServiceClient(server.host, server.port)
        streamer = ServiceClient(server.host, server.port)
        try:
            status, _, body = await submitter.submit(_spec())
            assert status == 202
            key = body["key"]
            stream_task = asyncio.get_running_loop().create_task(
                streamer.stream(key))
            while not executor.started.is_set():
                await asyncio.sleep(0.001)
            executor.release()
            lines = await asyncio.wait_for(stream_task, timeout=10.0)

            statuses = [line["status"] for line in lines]
            assert statuses[-1] == "done"
            positions = [_LIFECYCLE.index(status) for status in statuses]
            assert positions == sorted(set(positions))  # strictly forward
            assert all(line["key"] == key for line in lines)

            status, _, polled = await submitter.poll(key)
            assert status == 200
            assert lines[-1] == polled
            assert polled["result"]  # terminal line carried the result
        finally:
            await submitter.close()
            await streamer.close()
        await server.close()

    run_async(scenario())


def test_stream_of_completed_run_is_single_terminal_line():
    async def scenario():
        service = make_service()  # real runner
        server = await start_server(service)
        client = ServiceClient(server.host, server.port)
        try:
            snapshot, _ = await client.submit_and_wait(_spec(seed=2))
            lines = await client.stream(snapshot["key"])
            assert len(lines) == 1
            assert lines[0]["status"] == "done"
            assert lines[0]["result"] == snapshot["result"]
        finally:
            await client.close()
        await server.close()

    run_async(scenario())


def test_stream_of_unknown_key_is_404():
    async def scenario():
        service = make_service()
        server = await start_server(service)
        client = ServiceClient(server.host, server.port)
        try:
            with pytest.raises(ProtocolError, match="404"):
                await client.stream("no-such-key")
        finally:
            await client.close()
        await server.close()

    run_async(scenario())
