"""Wire-level behaviour: routing, structured errors, keep-alive, limits.

Every error the server emits is the structured ``{"error": {"code",
"message"}}`` contract with a :class:`ReproError` subclass name as the
code — malformed input is a 4xx with a machine-readable reason, never a
500 with a traceback.
"""

from __future__ import annotations

import asyncio
import json

from repro.service import ServiceClient

from .conftest import make_service, run_async, start_server


def _spec(seed: int = 1) -> dict:
    return {"scheme": "BaOnly", "workload": "WS",
            "setup": {"duration_h": 1.0 / 60.0, "seed": seed}}


async def _raw_exchange(host: str, port: int, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload)
    await writer.drain()
    response = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return response


def test_unknown_run_polls_as_structured_404():
    async def scenario():
        service = make_service()
        server = await start_server(service)
        client = ServiceClient(server.host, server.port)
        try:
            status, _, body = await client.poll("f" * 64)
            assert status == 404
            assert body["error"]["code"] == "UnknownRunError"
            assert body["key"] == "f" * 64
        finally:
            await client.close()
        await server.close()

    run_async(scenario())


def test_unroutable_requests_are_405_or_404():
    async def scenario():
        service = make_service()
        server = await start_server(service)
        client = ServiceClient(server.host, server.port)
        try:
            status, _, body = await client.request("GET", "/runs")
            assert status == 405
            assert body["error"]["code"] == "ProtocolError"
            status, _, body = await client.request("POST", "/stats")
            assert status == 405
            status, _, body = await client.request("GET", "/nope")
            assert status == 404
            assert body["error"]["code"] == "ProtocolError"
        finally:
            await client.close()
        await server.close()

    run_async(scenario())


def test_malformed_json_body_is_structured_400():
    async def scenario():
        service = make_service()
        server = await start_server(service)
        body = b"{not json"
        head = (f"POST /runs HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        raw = await _raw_exchange(server.host, server.port, head + body)
        status_line, _, rest = raw.partition(b"\r\n")
        assert b"400" in status_line
        payload = json.loads(rest.split(b"\r\n\r\n", 1)[1])
        assert payload["error"]["code"] == "SpecError"
        await server.close()

    run_async(scenario())


def test_malformed_request_line_is_400_and_close():
    async def scenario():
        service = make_service()
        server = await start_server(service)
        raw = await _raw_exchange(server.host, server.port,
                                  b"NOT A VALID REQUEST\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 400")
        assert b"ProtocolError" in raw
        await server.close()

    run_async(scenario())


def test_oversized_body_is_rejected_not_read():
    async def scenario():
        service = make_service()
        server = await start_server(service)
        head = ("POST /runs HTTP/1.1\r\nHost: x\r\n"
                "Content-Length: 99999999\r\n\r\n").encode("latin-1")
        raw = await _raw_exchange(server.host, server.port, head)
        assert raw.startswith(b"HTTP/1.1 400")
        await server.close()

    run_async(scenario())


def test_keep_alive_serves_many_exchanges_on_one_connection():
    async def scenario():
        service = make_service()
        server = await start_server(service)
        client = ServiceClient(server.host, server.port)
        try:
            snapshot, _ = await client.submit_and_wait(_spec())
            stats = await client.stats()
            status, _, polled = await client.poll(snapshot["key"])
            assert status == 200 and polled["status"] == "done"
            # one TCP connection served submit + polls + stats
            assert client._writer is not None
            assert stats["submissions"] >= 1
            assert stats["accepting"] is True
            assert stats["runner"]["jobs"] == 1
            assert 0.0 <= stats["hit_rate"] <= 1.0
        finally:
            await client.close()
        await server.close()

    run_async(scenario())


def test_stats_counts_reflect_traffic():
    async def scenario():
        service = make_service()
        server = await start_server(service)
        client = ServiceClient(server.host, server.port)
        try:
            await client.submit_and_wait(_spec(seed=7))
            await client.submit_and_wait(_spec(seed=7))  # registry hit
            stats = await client.stats()
            assert stats["submissions"] == 2
            assert stats["executed"] == 1
            assert stats["hits"] == 1
            assert stats["hit_rate"] == 0.5
            assert stats["queue_depth"] == 0
        finally:
            await client.close()
        await server.close()

    run_async(scenario())
