"""Backpressure invariant: bounded queue, 429 beyond it, no drops.

A submission that would exceed ``max_queue`` is rejected *at submission
time* with a retry hint; every submission that was accepted reaches a
terminal state once capacity frees up.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import QueueFullError
from repro.runner import cache_key
from repro.service import DONE, ServiceClient

from .conftest import (
    GatedExecutor,
    make_service,
    run_async,
    start_server,
    tiny_request,
)


def test_queue_full_rejects_but_never_drops_accepted(tiny_result):
    async def scenario():
        executor = GatedExecutor(tiny_result)
        service = make_service(run_batch=executor, max_queue=2,
                               max_group=1)
        service.start()
        executor.hold()
        first, _ = service.submit(tiny_request(seed=10))
        while not executor.started.is_set():  # first is now in-flight
            await asyncio.sleep(0.001)
        second, _ = service.submit(tiny_request(seed=11))
        third, _ = service.submit(tiny_request(seed=12))
        with pytest.raises(QueueFullError) as rejection:
            service.submit(tiny_request(seed=13))
        assert rejection.value.retry_after_s > 0.0
        assert service.metrics.rejected == 1

        # A duplicate of queued work coalesces even at capacity: it
        # costs no queue slot, so it must not be rejected.
        duplicate, created = service.submit(tiny_request(seed=11))
        assert duplicate is second and not created

        executor.release()
        for entry in (first, second, third):
            await asyncio.wait_for(entry.done.wait(), timeout=10.0)
            assert entry.status == DONE
        assert executor.executions == 3
        await service.shutdown()

    run_async(scenario())


def test_rejected_submission_leaves_no_registry_trace(tiny_result):
    """A 429'd submission is as if it never happened: no entry, no
    queue slot, and a later retry can succeed."""

    async def scenario():
        executor = GatedExecutor(tiny_result)
        service = make_service(run_batch=executor, max_queue=1,
                               max_group=1)
        service.start()
        executor.hold()
        service.submit(tiny_request(seed=20))
        while not executor.started.is_set():
            await asyncio.sleep(0.001)
        service.submit(tiny_request(seed=21))  # fills the queue
        rejected_request = tiny_request(seed=22)
        with pytest.raises(QueueFullError):
            service.submit(rejected_request)
        assert service.get(cache_key(rejected_request)) is None

        executor.release()
        retried, created = None, False
        for _ in range(1000):
            if service.stats()["queue_depth"] < service.max_queue:
                retried, created = service.submit(rejected_request)
                break
            await asyncio.sleep(0.002)
        assert retried is not None and created
        await asyncio.wait_for(retried.done.wait(), timeout=10.0)
        assert retried.status == DONE
        await service.shutdown()

    run_async(scenario())


def test_retry_after_estimate_scales_with_observations(tiny_result):
    async def scenario():
        executor = GatedExecutor(tiny_result)
        service = make_service(run_batch=executor, max_queue=4)
        service.start()
        assert service.retry_after_s() == 1.0  # cold default
        service.metrics.observe_run_wall_s(2.0)
        executor.hold()
        service.submit(tiny_request(seed=30))
        service.submit(tiny_request(seed=31))
        hint = service.retry_after_s()
        assert 0.1 <= hint <= 60.0
        assert hint >= 2.0  # two pending runs at ~2 s each, one job
        executor.release()
        await service.shutdown()

    run_async(scenario())


def test_http_429_carries_retry_after_header(tiny_result):
    async def scenario():
        executor = GatedExecutor(tiny_result)
        service = make_service(run_batch=executor, max_queue=1,
                               max_group=1)
        server = await start_server(service)
        executor.hold()
        client = ServiceClient(server.host, server.port)
        try:
            def spec(seed):
                return {"scheme": "BaOnly", "workload": "WS",
                        "setup": {"duration_h": 1.0 / 60.0, "seed": seed}}

            status, _, first = await client.submit(spec(40))
            assert status == 202
            while not executor.started.is_set():
                await asyncio.sleep(0.001)
            status, _, _ = await client.submit(spec(41))
            assert status == 202
            status, headers, body = await client.submit(spec(42))
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert body["error"]["code"] == "QueueFullError"

            executor.release()
            snapshot, rejections = await client.submit_and_wait(spec(42))
            assert snapshot["status"] == "done"
            # every earlier accepted run settled too
            status, _, polled = await client.poll(first["key"])
            assert status == 200 and polled["status"] == "done"
        finally:
            await client.close()
        await server.close()

    run_async(scenario())
