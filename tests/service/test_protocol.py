"""Spec parsing: strict on the way in, lossless on the way out.

``request_from_spec(request_to_spec(r)) == r`` for every valid request
(so a client can re-submit exactly what a server reported and hit the
same cache key), and every malformed spec fails with a structured
:class:`SpecError` before anything touches the queue.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core import POLICY_NAMES
from repro.errors import SpecError
from repro.faults import FaultSchedule
from repro.faults.events import UtilityOutage
from repro.runner import ExperimentSetup, RunRequest, cache_key
from repro.service import request_from_spec, request_to_spec
from repro.workloads import workload_names

WORKLOADS = tuple(workload_names())

run_requests = st.builds(
    RunRequest,
    scheme=st.sampled_from(POLICY_NAMES),
    workload=st.sampled_from(WORKLOADS),
    setup=st.builds(
        ExperimentSetup,
        duration_h=st.sampled_from((1.0 / 60.0, 0.25, 1.0, 4.0)),
        budget_w=st.one_of(st.none(),
                           st.floats(min_value=100.0, max_value=500.0,
                                     allow_nan=False)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        sc_fraction=st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False),
    ),
    renewable=st.booleans(),
    start_hour=st.floats(min_value=0.0, max_value=23.0,
                         allow_nan=False),
    faults=st.one_of(
        st.none(),
        st.builds(
            lambda seed, start, duration: FaultSchedule.of(
                UtilityOutage(start_s=start, duration_s=duration),
                seed=seed),
            st.integers(min_value=0, max_value=100),
            st.floats(min_value=0.0, max_value=3600.0, allow_nan=False),
            st.floats(min_value=1.0, max_value=600.0, allow_nan=False),
        ),
    ),
)


@settings(max_examples=100, deadline=None)
@given(request=run_requests)
def test_spec_round_trip_is_lossless(request):
    spec = request_to_spec(request)
    rebuilt = request_from_spec(spec)
    assert rebuilt == request
    assert cache_key(rebuilt) == cache_key(request)


def test_minimal_spec_uses_dataclass_defaults():
    request = request_from_spec({"scheme": "HEB-D", "workload": "PR"})
    assert request == RunRequest(scheme="HEB-D", workload="PR")


def test_scheme_and_workload_resolve_case_insensitively():
    request = request_from_spec({"scheme": "heb-d", "workload": "pr"})
    assert request.scheme == "HEB-D"
    assert request.workload == "PR"


@pytest.mark.parametrize("payload, fragment", [
    ([1, 2], "must be a JSON object"),
    ({"workload": "PR"}, "missing required field 'scheme'"),
    ({"scheme": "HEB-D"}, "missing required field 'workload'"),
    ({"scheme": "HEB-D", "workload": "PR", "turbo": True},
     "unknown field"),
    ({"scheme": "HEB-Z", "workload": "PR"}, "unknown scheme"),
    ({"scheme": "HEB-D", "workload": "XX"}, "unknown workload"),
    ({"scheme": 3, "workload": "PR"}, "scheme must be a string"),
    ({"scheme": "HEB-D", "workload": "PR", "setup": "fast"},
     "setup must be a JSON object"),
    ({"scheme": "HEB-D", "workload": "PR",
      "setup": {"duration_h": True}}, "must be a number"),
    ({"scheme": "HEB-D", "workload": "PR",
      "setup": {"seed": 1.5}}, "must be an integer"),
    ({"scheme": "HEB-D", "workload": "PR",
      "setup": {"warp": 9}}, "unknown field"),
    ({"scheme": "HEB-D", "workload": "PR", "renewable": "yes"},
     "must be a boolean"),
])
def test_malformed_specs_raise_spec_error(payload, fragment):
    with pytest.raises(SpecError, match=fragment):
        request_from_spec(payload)


def test_spec_and_request_share_one_cache_key():
    """A spec's key equals the key of the request built in-process with
    the same parameters — the content-addressing contract the service's
    dedup and cache hits both rest on."""
    spec = {"scheme": "SCFirst", "workload": "WC",
            "setup": {"duration_h": 0.5, "seed": 9}}
    direct = RunRequest(scheme="SCFirst", workload="WC",
                        setup=ExperimentSetup(duration_h=0.5, seed=9))
    assert cache_key(request_from_spec(spec)) == cache_key(direct)
