"""Dedup invariant: one execution per cache key, ever.

The headline contract of the scenario service — K concurrent identical
submissions cost exactly one simulation and every submitter gets the
same (bit-identical) result — exercised at the service layer with a
gated executor (so the interleavings are forced, not lucky) and at the
HTTP layer against the real runner.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import cache_key
from repro.service import DONE, RUNNING, ServiceClient
from repro.sim.results import result_to_dict

from .conftest import (
    GatedExecutor,
    make_service,
    run_async,
    start_server,
    tiny_request,
)


@settings(max_examples=20, deadline=None)
@given(k=st.integers(min_value=1, max_value=8))
def test_concurrent_identical_submissions_execute_once(k, tiny_result):
    """K submissions of one spec -> one entry, one execution, K shares."""

    async def scenario():
        executor = GatedExecutor(tiny_result)
        service = make_service(run_batch=executor, max_group=8)
        service.start()
        executor.hold()  # nothing may execute until the burst is in
        try:
            entries = [service.submit(tiny_request())[0]
                       for _ in range(k)]
            assert len({id(entry) for entry in entries}) == 1
            entry = entries[0]
            assert entry.submissions == k
            assert service.metrics.accepted == 1
            assert service.metrics.coalesced == k - 1
        finally:
            executor.release()
        await asyncio.wait_for(entry.done.wait(), timeout=10.0)
        assert entry.status == DONE
        assert executor.executions == 1
        expected = result_to_dict(tiny_result)
        for submitted in entries:
            assert result_to_dict(submitted.result) == expected
        await service.shutdown()

    run_async(scenario())


def test_submission_coalesces_onto_running_entry(tiny_result):
    """A duplicate arriving *while the run executes* still coalesces.

    This is the forced check-then-act interleaving: the first submission
    has already been popped off the queue and is blocked inside the
    executor when the duplicates arrive.
    """

    async def scenario():
        executor = GatedExecutor(tiny_result)
        service = make_service(run_batch=executor, max_group=1)
        service.start()
        executor.hold()
        first, created = service.submit(tiny_request())
        assert created
        while not executor.started.is_set():  # dispatched and in-flight
            await asyncio.sleep(0.001)
        assert first.status == RUNNING
        duplicate, created = service.submit(tiny_request())
        assert duplicate is first and not created
        assert service.metrics.coalesced == 1
        executor.release()
        await asyncio.wait_for(first.done.wait(), timeout=10.0)
        assert executor.executions == 1
        assert first.submissions == 2
        await service.shutdown()

    run_async(scenario())


def test_terminal_entry_answers_from_registry(tiny_result):
    async def scenario():
        executor = GatedExecutor(tiny_result)
        service = make_service(run_batch=executor)
        service.start()
        entry, created = service.submit(tiny_request())
        assert created
        await asyncio.wait_for(entry.done.wait(), timeout=10.0)
        again, created = service.submit(tiny_request())
        assert again is entry and not created
        assert service.metrics.registry_hits == 1
        assert executor.executions == 1
        await service.shutdown()

    run_async(scenario())


def test_http_concurrent_clients_share_one_simulation():
    """End to end: many clients, one spec, one runner miss."""

    async def scenario():
        service = make_service()  # real runner.map, cacheless, serial
        server = await start_server(service)
        spec = {"scheme": "BaOnly", "workload": "WS",
                "setup": {"duration_h": 1.0 / 60.0, "seed": 5}}
        clients = [ServiceClient(server.host, server.port)
                   for _ in range(8)]
        try:
            outcomes = await asyncio.gather(*(
                client.submit_and_wait(spec) for client in clients))
        finally:
            for client in clients:
                await client.close()
        snapshots = [snapshot for snapshot, _ in outcomes]
        assert {snapshot["status"] for snapshot in snapshots} == {"done"}
        results = [snapshot["result"] for snapshot in snapshots]
        assert all(result == results[0] for result in results)
        keys = {snapshot["key"] for snapshot in snapshots}
        assert keys == {cache_key(tiny_request(
            seed=5, workload="WS", scheme="BaOnly"))}
        assert service.runner.misses == 1
        assert service.metrics.executed == 1
        assert (service.metrics.coalesced
                + service.metrics.registry_hits) == 7
        await server.close()

    run_async(scenario())
