"""Regression: duplicate misses inside one ``map`` call execute once.

The cache probe and the execution decision used to be a check-then-act
window — a batch containing the same request twice saw two misses on
one key and executed (and cache-wrote) both.  The runner now claims
misses by key: the first occurrence executes, later occurrences share
its result and count in ``coalesced``.
"""

import pytest

from repro.runner import (
    ExperimentRunner,
    ExperimentSetup,
    ResultCache,
    RunRequest,
    execute_request,
)

TINY = ExperimentSetup(duration_h=1.0 / 60.0, seed=4)
REQ_A = RunRequest("BaOnly", "TS", setup=TINY)
REQ_B = RunRequest("SCFirst", "TS", setup=TINY)


class TestDuplicateMissesInOneCall:
    def test_duplicates_claim_one_execution(self, tmp_path,
                                            monkeypatch):
        from repro.runner.batch import execute_unit as real_execute_unit

        executed = []

        def counting(unit):
            executed.extend(unit[1])
            return real_execute_unit(unit)

        # Every in-process execution (scalar or batched group) funnels
        # through execute_unit when jobs=1; count what actually ran.
        monkeypatch.setattr("repro.runner.runner.execute_unit", counting)
        runner = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        results = runner.map([REQ_A, REQ_A, REQ_B, REQ_A])
        assert sorted(set((r.scheme, r.workload) for r in executed)) \
            == [("BaOnly", "TS"), ("SCFirst", "TS")]
        assert len(executed) == 2
        assert runner.misses == 2
        assert runner.coalesced == 2
        assert runner.hits == 0
        assert results[0].to_dict() == results[1].to_dict() \
            == results[3].to_dict()
        assert results[1] is results[0]  # shared, not re-simulated

    def test_followers_hit_warm_cache_next_call(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        runner.map([REQ_A, REQ_A])
        assert (runner.misses, runner.coalesced) == (1, 1)
        warm = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        warm.map([REQ_A, REQ_A])
        assert (warm.hits, warm.misses, warm.coalesced) == (2, 0, 0)

    def test_duplicate_results_are_bit_exact_with_serial_run(
            self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        deduped = runner.map([REQ_A, REQ_A])[1]
        assert deduped.to_dict() == execute_request(REQ_A).to_dict()

    @pytest.mark.parametrize("batch", [True, False])
    def test_claiming_works_on_both_engine_paths(self, tmp_path, batch):
        runner = ExperimentRunner(jobs=1, batch=batch,
                                  cache=ResultCache(tmp_path))
        results = runner.map([REQ_B, REQ_B, REQ_B])
        assert runner.misses == 1 and runner.coalesced == 2
        assert results[0].to_dict() == results[2].to_dict()

    def test_cacheless_runner_still_answers_every_index(self):
        # Without a cache there are no keys to claim; duplicates run
        # independently but every index gets a result.
        runner = ExperimentRunner(jobs=1)
        results = runner.map([REQ_A, REQ_A])
        assert runner.misses == 2 and runner.coalesced == 0
        assert results[0].to_dict() == results[1].to_dict()
