"""Tests for the content-addressed result cache and its keys."""

import json

import pytest

from repro.runner import (
    ExperimentSetup,
    ResultCache,
    RunRequest,
    cache_key,
    canonical_json,
    code_fingerprint,
    execute_request,
    freeze,
)

FAST = ExperimentSetup(duration_h=0.2)


@pytest.fixture(scope="module")
def sample_result():
    return execute_request(RunRequest("SCFirst", "TS", setup=FAST))


class TestKeys:
    def test_key_is_hex_sha256(self):
        key = cache_key(RunRequest("SCFirst", "TS", setup=FAST))
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_same_request_same_key(self):
        a = cache_key(RunRequest("SCFirst", "TS", setup=FAST))
        b = cache_key(RunRequest("SCFirst", "TS",
                                 setup=ExperimentSetup(duration_h=0.2)))
        assert a == b

    def test_any_field_changes_key(self):
        base = RunRequest("SCFirst", "TS", setup=FAST)
        variants = [
            RunRequest("BaOnly", "TS", setup=FAST),
            RunRequest("SCFirst", "PR", setup=FAST),
            RunRequest("SCFirst", "TS",
                       setup=ExperimentSetup(duration_h=0.2, seed=2)),
            RunRequest("SCFirst", "TS", setup=FAST, renewable=True),
            RunRequest("SCFirst", "TS", setup=FAST,
                       policy_sc_fraction=0.4),
        ]
        keys = {cache_key(v) for v in variants}
        assert cache_key(base) not in keys
        assert len(keys) == len(variants)

    def test_freeze_tags_dataclasses(self):
        frozen = freeze(FAST)
        assert frozen["__dataclass__"] == "ExperimentSetup"
        assert frozen["duration_h"] == 0.2

    def test_canonical_json_is_deterministic(self):
        request = RunRequest("HEB-D", "PR", setup=FAST, renewable=True)
        assert canonical_json(request) == canonical_json(request)
        # Canonical form must be parseable JSON with sorted keys.
        payload = json.loads(canonical_json(request))
        assert payload["__dataclass__"] == "RunRequest"

    def test_code_fingerprint_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None

    def test_put_get_round_trip(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, sample_result)
        assert key in cache
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.to_dict() == sample_result.to_dict()

    def test_sharded_layout(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, sample_result)
        assert (tmp_path / "cd" / f"{key}.json").is_file()

    def test_corrupt_entry_reads_as_miss(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        key = "ef" + "2" * 62
        cache.put(key, sample_result)
        (tmp_path / "ef" / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None

    def test_wrong_format_version_reads_as_miss(self, tmp_path,
                                                sample_result):
        cache = ResultCache(tmp_path)
        key = "0a" + "3" * 62
        cache.put(key, sample_result)
        path = tmp_path / "0a" / f"{key}.json"
        payload = json.loads(path.read_text())
        payload["format"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get(key) is None

    def test_clear_and_stats(self, tmp_path, sample_result):
        cache = ResultCache(tmp_path)
        for index in range(3):
            cache.put(f"{index:02x}" + "4" * 62, sample_result)
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.total_bytes > 0
        assert len(cache) == 3
        assert cache.clear() == 3
        assert cache.stats().entries == 0
