"""Tests for ExperimentRunner: parallelism, caching, the active runner."""

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    ExperimentRunner,
    ExperimentSetup,
    ResultCache,
    RunRequest,
    get_runner,
    run_requests,
    set_runner,
    using_runner,
)

FAST = ExperimentSetup(duration_h=0.2)

# Cheap schemes only (no PAT pilot profiling) so the process-pool tests
# stay fast even when workers have to cold-start.
GRID = [RunRequest(scheme, workload, setup=FAST)
        for scheme in ("BaOnly", "SCFirst", "HEB-F")
        for workload in ("TS", "PR")]


class TestRunnerBasics:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(jobs=0)

    def test_effective_jobs_defaults_to_cpu_count(self):
        import os
        assert ExperimentRunner().effective_jobs == (os.cpu_count() or 1)
        assert ExperimentRunner(jobs=3).effective_jobs == 3

    def test_results_align_with_requests(self):
        results = ExperimentRunner(jobs=1).map(GRID)
        assert [(r.scheme, r.workload) for r in results] == [
            (request.scheme, request.workload) for request in GRID]

    def test_empty_batch(self):
        assert ExperimentRunner(jobs=1).map([]) == []


class TestParallelEqualsSerial:
    def test_parallel_reproduces_serial_bit_for_bit(self):
        """Same seeds => same RunResult, worker processes or not."""
        serial = ExperimentRunner(jobs=1).map(GRID)
        parallel = ExperimentRunner(jobs=2).map(GRID)
        for serial_run, parallel_run in zip(serial, parallel):
            assert serial_run.to_dict() == parallel_run.to_dict(), (
                serial_run.scheme, serial_run.workload)


class TestCachingRunner:
    def test_cold_then_warm(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        requests = GRID[:3]
        cold = runner.map(requests)
        assert runner.misses == 3 and runner.hits == 0
        warm = runner.map(requests)
        assert runner.hits == 3
        for a, b in zip(cold, warm):
            assert a.to_dict() == b.to_dict()

    def test_cache_shared_between_runners(self, tmp_path):
        first = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        first.map(GRID[:2])
        second = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        second.map(GRID[:2])
        assert second.hits == 2 and second.misses == 0

    def test_partial_hits_fill_the_gaps(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        runner.map(GRID[:2])
        results = runner.map(GRID[:4])
        assert runner.hits == 2 and runner.misses == 4
        assert [(r.scheme, r.workload) for r in results] == [
            (request.scheme, request.workload) for request in GRID[:4]]

    def test_cacheless_counts_every_run_as_miss(self):
        runner = ExperimentRunner(jobs=1)
        runner.map(GRID[:2])
        assert runner.misses == 2 and runner.hits == 0


class TestActiveRunner:
    def test_default_is_serial_and_cacheless(self):
        runner = get_runner()
        assert runner.jobs == 1
        assert runner.cache is None

    def test_using_runner_scopes_and_restores(self):
        previous = get_runner()
        scoped = ExperimentRunner(jobs=1)
        with using_runner(scoped) as active:
            assert active is scoped
            assert get_runner() is scoped
        assert get_runner() is previous

    def test_set_runner_none_restores_default(self):
        custom = ExperimentRunner(jobs=1)
        set_runner(custom)
        try:
            assert get_runner() is custom
        finally:
            set_runner(None)
        assert get_runner().cache is None

    def test_run_requests_uses_active_runner(self, tmp_path):
        scoped = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        with using_runner(scoped):
            run_requests(GRID[:1])
        assert scoped.misses == 1

    def test_experiments_route_through_active_runner(self, tmp_path):
        from repro.experiments import run_scheme
        scoped = ExperimentRunner(jobs=1, cache=ResultCache(tmp_path))
        with using_runner(scoped):
            run_scheme("SCFirst", "TS", FAST)
            run_scheme("SCFirst", "TS", FAST)
        assert scoped.misses == 1 and scoped.hits == 1
