"""Tests for RunRequest and execute_request."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    DEFAULT_RENEWABLE_SOLAR,
    ExperimentSetup,
    RunRequest,
    execute_request,
)
from repro.workloads.solar import SolarConfig


FAST = ExperimentSetup(duration_h=0.2)


class TestRunRequest:
    def test_defaults(self):
        request = RunRequest("SCFirst", "TS")
        assert request.setup == ExperimentSetup()
        assert not request.renewable
        assert request.solar is None

    def test_renewable_gets_default_solar(self):
        request = RunRequest("SCFirst", "TS", renewable=True)
        assert request.solar == DEFAULT_RENEWABLE_SOLAR

    def test_explicit_solar_preserved(self):
        solar = SolarConfig(rated_power_w=300.0)
        request = RunRequest("SCFirst", "TS", renewable=True, solar=solar)
        assert request.solar == solar

    def test_solar_without_renewable_rejected(self):
        with pytest.raises(ConfigurationError):
            RunRequest("SCFirst", "TS", solar=SolarConfig())

    def test_requests_are_picklable(self):
        request = RunRequest("HEB-D", "PR", setup=FAST, renewable=True)
        clone = pickle.loads(pickle.dumps(request))
        assert clone == request


class TestExecuteRequest:
    def test_matches_direct_simulation(self):
        """execute_request is the same computation as the legacy inline
        run_scheme path (trace -> policy -> buffers -> Simulation)."""
        from repro.config import prototype_buffer
        from repro.core import make_policy
        from repro.sim import HybridBuffers, Simulation
        from repro.units import hours
        from repro.workloads import get_workload

        setup = FAST
        cluster = setup.cluster()
        trace = get_workload("TS", duration_s=hours(setup.duration_h),
                             num_servers=cluster.num_servers,
                             server=cluster.server, seed=setup.seed)
        hybrid = prototype_buffer()
        policy = make_policy("SCFirst", hybrid=hybrid)
        buffers = HybridBuffers(hybrid)
        direct = Simulation(trace, policy, buffers,
                            cluster_config=cluster).run()

        routed = execute_request(RunRequest("SCFirst", "TS", setup=setup))
        assert routed.to_dict() == direct.to_dict()

    def test_renewable_sets_reu(self):
        result = execute_request(
            RunRequest("SCFirst", "TS", setup=FAST, renewable=True))
        assert result.metrics.reu is not None

    def test_policy_view_changes_behavior(self):
        """The Figure 13 policy view must actually reach the policy."""
        setup = ExperimentSetup(duration_h=0.5, total_energy_wh=250.0,
                                battery_dod=0.5, sc_dod=0.5,
                                budget_w=200.0)
        narrow = execute_request(RunRequest(
            "HEB-D", "DA", setup=setup,
            policy_sc_fraction=0.1, policy_total_wh=150.0))
        wide = execute_request(RunRequest(
            "HEB-D", "DA", setup=setup,
            policy_sc_fraction=0.5, policy_total_wh=150.0))
        assert narrow.scheme == wide.scheme == "HEB-D"
        # Different pilot views must not silently collapse to one run.
        assert narrow.to_dict() != wide.to_dict()

    def test_determinism(self):
        first = execute_request(RunRequest("BaFirst", "WS", setup=FAST))
        second = execute_request(RunRequest("BaFirst", "WS", setup=FAST))
        assert first.to_dict() == second.to_dict()
