"""Tests for the top-level public API (repro.__init__)."""

import pytest

import repro
from repro import POLICY_NAMES, quick_run, workload_names
from repro.errors import ConfigurationError


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_policy_names_match_table2(self):
        assert POLICY_NAMES == ("BaOnly", "BaFirst", "SCFirst",
                                "HEB-F", "HEB-S", "HEB-D")

    def test_workload_names_match_table1(self):
        assert len(workload_names()) == 8


class TestQuickRun:
    def test_returns_run_result(self):
        result = quick_run("SCFirst", "TS", hours=0.5, seed=3)
        assert result.scheme == "SCFirst"
        assert result.workload == "TS"
        assert result.metrics.duration_s == pytest.approx(1800.0)

    def test_budget_override(self):
        stressed = quick_run("BaOnly", "DA", hours=1.0, seed=3,
                             budget_w=230.0)
        relaxed = quick_run("BaOnly", "DA", hours=1.0, seed=3,
                            budget_w=420.0)
        assert (stressed.metrics.buffer_energy_out_j
                > relaxed.metrics.buffer_energy_out_j)

    def test_sc_fraction_changes_pools(self):
        result = quick_run("SCFirst", "TS", hours=0.5, sc_fraction=0.5)
        assert result.metrics.energy_efficiency > 0.0

    def test_unknown_scheme_raises(self):
        with pytest.raises(ConfigurationError):
            quick_run("NOPE", "TS", hours=0.5)

    def test_unknown_workload_raises(self):
        with pytest.raises(ConfigurationError):
            quick_run("BaOnly", "NOPE", hours=0.5)

    def test_deterministic_per_seed(self):
        one = quick_run("SCFirst", "TS", hours=0.5, seed=3)
        two = quick_run("SCFirst", "TS", hours=0.5, seed=3)
        assert (one.metrics.energy_efficiency
                == two.metrics.energy_efficiency)
        assert one.metrics.server_downtime_s == two.metrics.server_downtime_s

    def test_summary_shape(self):
        result = quick_run("HEB-S", "HB", hours=0.5)
        summary = result.summary()
        assert set(summary) >= {"energy_efficiency", "server_downtime_s",
                                "battery_lifetime_years"}
