"""Tests for relays, switch fabric, IPDU, ATS and PDU models."""

import pytest

from repro.errors import SwitchError, TopologyError
from repro.power import (
    AutomaticTransferSwitch,
    IPDU,
    PowerDistributionUnit,
    Relay,
    RelayPosition,
    SwitchFabric,
)


class TestRelay:
    def test_defaults_to_utility(self):
        assert Relay(0).position is RelayPosition.UTILITY

    def test_switch_changes_position(self):
        relay = Relay(0)
        assert relay.switch_to(RelayPosition.STORAGE)
        assert relay.position is RelayPosition.STORAGE

    def test_noop_switch_not_counted(self):
        relay = Relay(0)
        assert not relay.switch_to(RelayPosition.UTILITY)
        assert relay.switch_count == 0

    def test_switch_count_accumulates(self):
        relay = Relay(0)
        relay.switch_to(RelayPosition.STORAGE)
        relay.switch_to(RelayPosition.UTILITY)
        assert relay.switch_count == 2

    def test_rejects_garbage_position(self):
        with pytest.raises(SwitchError):
            Relay(0).switch_to("storage")


class TestSwitchFabric:
    def test_prototype_has_six_relays(self):
        fabric = SwitchFabric(6)
        assert len(fabric.relays) == 6

    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            SwitchFabric(0)

    def test_apply_counts_movements(self):
        fabric = SwitchFabric(3)
        moved = fabric.apply([RelayPosition.STORAGE,
                              RelayPosition.UTILITY,
                              RelayPosition.STORAGE])
        assert moved == 2
        assert fabric.total_switches() == 2

    def test_apply_wrong_length(self):
        with pytest.raises(SwitchError):
            SwitchFabric(2).apply([RelayPosition.UTILITY])

    def test_positions_roundtrip(self):
        fabric = SwitchFabric(2)
        positions = [RelayPosition.STORAGE, RelayPosition.OPEN]
        fabric.apply(positions)
        assert fabric.positions() == positions


class TestIPDU:
    def test_meters_per_outlet(self):
        ipdu = IPDU(3)
        reading = ipdu.record(0.0, {0: 30.0, 1: 40.0, 2: 50.0})
        assert reading.total_w == 120.0

    def test_off_outlet_reads_zero(self):
        ipdu = IPDU(2)
        ipdu.set_outlet(1, False)
        reading = ipdu.record(0.0, {0: 30.0, 1: 40.0})
        assert reading.total_w == 30.0

    def test_unknown_outlets_ignored(self):
        ipdu = IPDU(1)
        reading = ipdu.record(0.0, {0: 30.0, 7: 99.0})
        assert reading.total_w == 30.0

    def test_energy_accumulates(self):
        ipdu = IPDU(1)
        ipdu.record(0.0, {0: 100.0}, dt=2.0)
        ipdu.record(2.0, {0: 100.0}, dt=2.0)
        assert ipdu.energy_metered_j == pytest.approx(400.0)

    def test_history_bounded(self):
        ipdu = IPDU(1, history_limit=5)
        for second in range(20):
            ipdu.record(float(second), {0: 10.0})
        assert len(ipdu.history()) == 5
        assert ipdu.latest().timestamp_s == 19.0

    def test_set_outlet_validates_index(self):
        with pytest.raises(SwitchError):
            IPDU(2).set_outlet(5, False)

    def test_rejects_bad_construction(self):
        with pytest.raises(TopologyError):
            IPDU(0)
        with pytest.raises(TopologyError):
            IPDU(1, history_limit=0)


class TestATS:
    def test_defaults_to_first_feed(self):
        ats = AutomaticTransferSwitch(["utility", "generator"])
        assert ats.active == "utility"

    def test_transfer(self):
        ats = AutomaticTransferSwitch(["utility", "generator"])
        ats.transfer("generator")
        assert ats.active == "generator"
        assert ats.transfer_count == 1

    def test_noop_transfer_not_counted(self):
        ats = AutomaticTransferSwitch(["utility", "generator"])
        ats.transfer("utility")
        assert ats.transfer_count == 0

    def test_unknown_feed_rejected(self):
        ats = AutomaticTransferSwitch(["utility"])
        with pytest.raises(SwitchError):
            ats.transfer("diesel")

    def test_rejects_empty_feeds(self):
        with pytest.raises(TopologyError):
            AutomaticTransferSwitch([])


class TestPDU:
    def test_within_rating(self):
        pdu = PowerDistributionUnit(1000.0, 4)
        assert pdu.check_load([200.0, 300.0])
        assert pdu.overload_events == 0

    def test_overload_counted(self):
        pdu = PowerDistributionUnit(100.0, 2)
        assert not pdu.check_load([80.0, 80.0])
        assert pdu.overload_events == 1

    def test_too_many_branches(self):
        pdu = PowerDistributionUnit(100.0, 1)
        with pytest.raises(TopologyError):
            pdu.check_load([10.0, 10.0])
