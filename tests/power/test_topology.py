"""Tests for the Figure 7 topology comparison."""

import pytest

from repro.power import (
    TopologyKind,
    centralized_topology,
    distributed_topology,
    heb_topology,
)


class TestCentralized:
    def test_kind(self):
        assert centralized_topology().kind is TopologyKind.CENTRALIZED

    def test_always_online_overhead(self):
        """Section 4.1: the online UPS double-converts the whole load."""
        topology = centralized_topology()
        assert topology.always_online
        assert topology.steady_state_overhead(1000.0) > 0.0

    def test_no_per_server_control(self):
        assert not centralized_topology().per_server_control

    def test_homogeneous_only(self):
        assert not centralized_topology().supports_heterogeneous


class TestDistributed:
    def test_no_steady_state_overhead(self):
        assert distributed_topology().steady_state_overhead(1000.0) == 0.0

    def test_no_energy_sharing(self):
        """Google per-server batteries cannot assist each other."""
        assert not distributed_topology().shares_energy

    def test_efficient_discharge(self):
        assert distributed_topology().delivery_efficiency == pytest.approx(1.0)


class TestHEB:
    def test_rack_level_avoids_inverter(self):
        rack = heb_topology(rack_level=True)
        cluster = heb_topology(rack_level=False)
        assert rack.delivery_efficiency > cluster.delivery_efficiency

    def test_shares_energy_with_per_server_control(self):
        topology = heb_topology()
        assert topology.shares_energy
        assert topology.per_server_control

    def test_supports_heterogeneous(self):
        assert heb_topology().supports_heterogeneous

    def test_no_always_online_loss(self):
        assert heb_topology().steady_state_overhead(500.0) == 0.0

    def test_heb_beats_centralized_on_delivery(self):
        """The architecture argument of Section 4: HEB delivers buffered
        energy more efficiently than a double-converting central UPS."""
        assert (heb_topology().delivery_efficiency
                > centralized_topology().delivery_efficiency)
