"""Tests for conversion-stage models."""

import pytest

from repro.errors import ConfigurationError
from repro.power import Converter, DOUBLE_CONVERSION_UPS, IDEAL_CONVERTER
from repro.power.converter import DC_AC_INVERTER, SERVER_PSU


class TestConverter:
    def test_deliver(self):
        converter = Converter("test", 0.9)
        assert converter.deliver(100.0) == pytest.approx(90.0)

    def test_required_input(self):
        converter = Converter("test", 0.8)
        assert converter.required_input(80.0) == pytest.approx(100.0)

    def test_deliver_and_required_are_inverses(self):
        converter = Converter("test", 0.87)
        assert converter.deliver(
            converter.required_input(55.0)) == pytest.approx(55.0)

    def test_loss(self):
        converter = Converter("test", 0.9)
        assert converter.loss(100.0) == pytest.approx(10.0)

    def test_chain_multiplies(self):
        chained = Converter("a", 0.9).chain(Converter("b", 0.8))
        assert chained.efficiency == pytest.approx(0.72)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            Converter("bad", 0.0)
        with pytest.raises(ConfigurationError):
            Converter("bad", 1.1)

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigurationError):
            Converter("test", 0.9).deliver(-1.0)


class TestStandardStages:
    def test_ideal_is_lossless(self):
        assert IDEAL_CONVERTER.deliver(100.0) == 100.0

    def test_double_conversion_in_paper_band(self):
        """Section 4.1: double conversion loses 4-10%."""
        loss_fraction = 1.0 - DOUBLE_CONVERSION_UPS.efficiency
        assert 0.04 <= loss_fraction <= 0.10

    def test_inverter_and_psu_lossy(self):
        assert DC_AC_INVERTER.efficiency < 1.0
        assert SERVER_PSU.efficiency < 1.0
