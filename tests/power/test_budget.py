"""Tests for provisioning analysis (Figure 1a)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.power import capped_energy_fraction, mppu, provisioning_analysis
from repro.power.budget import count_mismatch_events
from repro.workloads import PowerTrace


def trace_of(values, dt=1.0):
    return PowerTrace(np.asarray(values, dtype=float), dt)


class TestMPPU:
    def test_never_reached(self):
        assert mppu(trace_of([10, 20, 30]), 100.0) == 0.0

    def test_always_reached(self):
        assert mppu(trace_of([100, 100]), 100.0) == 1.0

    def test_fractional(self):
        assert mppu(trace_of([10, 100, 100, 10]), 100.0) == 0.5

    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            mppu(trace_of([1.0]), 0.0)


class TestCappedEnergy:
    def test_no_capping(self):
        assert capped_energy_fraction(trace_of([10, 20]), 100.0) == 0.0

    def test_half_capped(self):
        assert capped_energy_fraction(
            trace_of([200.0]), 100.0) == pytest.approx(0.5)


class TestMismatchEvents:
    def test_counts_contiguous_runs(self):
        trace = trace_of([10, 100, 100, 10, 100, 10])
        assert count_mismatch_events(trace, 100.0) == 2

    def test_event_at_start(self):
        assert count_mismatch_events(trace_of([100, 10]), 100.0) == 1

    def test_no_events(self):
        assert count_mismatch_events(trace_of([1, 2]), 100.0) == 0


class TestProvisioningAnalysis:
    @pytest.fixture
    def bursty(self):
        rng = np.random.default_rng(0)
        base = 400.0 + 100.0 * rng.standard_normal(5000).cumsum() * 0.01
        spikes = np.zeros(5000)
        spikes[rng.integers(0, 5000, 40)] = rng.exponential(300.0, 40)
        return trace_of(np.clip(base + spikes, 50.0, 1000.0), dt=60.0)

    def test_four_levels(self, bursty):
        levels = provisioning_analysis(bursty)
        assert [level.name for level in levels] == ["P1", "P2", "P3", "P4"]

    def test_mppu_monotone_in_underprovisioning(self, bursty):
        """The Figure 1(a) trend: lower budget => higher MPPU."""
        levels = provisioning_analysis(bursty)
        mppus = [level.mppu for level in levels]
        assert mppus == sorted(mppus)

    def test_full_provisioning_never_caps(self, bursty):
        level = provisioning_analysis(bursty)[0]
        assert level.capped_energy_fraction == pytest.approx(0.0, abs=1e-12)

    def test_capital_cost_tracks_budget(self, bursty):
        levels = provisioning_analysis(bursty)
        assert levels[0].capital_cost_low > levels[-1].capital_cost_low
        for level in levels:
            assert level.capital_cost_high == pytest.approx(
                2.0 * level.capital_cost_low)

    def test_rejects_bad_fraction(self, bursty):
        with pytest.raises(ConfigurationError):
            provisioning_analysis(bursty, fractions=(1.5,))

    def test_rejects_empty_fractions(self, bursty):
        with pytest.raises(ConfigurationError):
            provisioning_analysis(bursty, fractions=())
