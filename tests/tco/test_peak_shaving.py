"""Tests for the 8-year peak-shaving revenue model (Figure 15c)."""

import pytest

from repro.errors import TCOError
from repro.tco import (
    PeakShavingScenario,
    break_even_year,
    compare_peak_shaving,
    peak_shaving_revenue,
)
from repro.tco.peak_shaving import DEFAULT_SCHEMES, SchemeEconomics, capex


class TestScenario:
    def test_paper_defaults(self):
        scenario = PeakShavingScenario()
        assert scenario.datacenter_kw == 100.0
        assert scenario.buffer_kwh == 20.0
        assert scenario.peak_tariff_per_kw_month == 12.0

    def test_validation(self):
        with pytest.raises(TCOError):
            PeakShavingScenario(buffer_kwh=0.0)
        with pytest.raises(TCOError):
            PeakShavingScenario(base_utilization=1.5)


class TestSeries:
    def test_monotone_cumulative_revenue(self):
        series = peak_shaving_revenue(DEFAULT_SCHEMES["BaOnly"])
        revenue = series.cumulative_revenue
        assert all(b >= a for a, b in zip(revenue, revenue[1:]))

    def test_costs_step_at_replacement(self):
        series = peak_shaving_revenue(DEFAULT_SCHEMES["BaOnly"])
        costs = set(series.cumulative_cost)
        # Initial purchase plus exactly one replacement within 8 years.
        assert len(costs) == 2

    def test_no_replacement_for_long_lived_battery(self):
        series = peak_shaving_revenue(DEFAULT_SCHEMES["HEB"])
        assert len(set(series.cumulative_cost)) == 1

    def test_rejects_bad_sampling(self):
        with pytest.raises(TCOError):
            peak_shaving_revenue(DEFAULT_SCHEMES["HEB"], samples_per_year=0)


class TestBreakEven:
    def test_paper_break_even_ordering(self):
        """Figure 15(c): HEB (3.7) < BaOnly (4.2) < SCFirst (4.9) <
        BaFirst (6.3)."""
        years = {name: break_even_year(peak_shaving_revenue(scheme))
                 for name, scheme in DEFAULT_SCHEMES.items()}
        assert years["HEB"] < years["BaOnly"]
        assert years["BaOnly"] < years["SCFirst"]
        assert years["SCFirst"] < years["BaFirst"]

    def test_break_even_values_near_paper(self):
        targets = {"BaOnly": 4.2, "BaFirst": 6.3, "SCFirst": 4.9,
                   "HEB": 3.7}
        for name, target in targets.items():
            series = peak_shaving_revenue(DEFAULT_SCHEMES[name])
            assert break_even_year(series) == pytest.approx(target, abs=0.7)

    def test_never_breaking_even(self):
        hopeless = SchemeEconomics(
            name="X", ee_gain=0.01, availability_gain=1.0,
            battery_kwh=20.0, sc_kwh=0.0, battery_life_years=4.0)
        assert break_even_year(peak_shaving_revenue(hopeless)) is None


class TestComparison:
    def test_heb_nets_1_9x_baonly(self):
        """The headline: >1.9X peak-shaving revenue over 8 years."""
        table = compare_peak_shaving()
        assert table["HEB"]["net_vs_baonly"] >= 1.9

    def test_bafirst_below_baonly(self):
        """'the net profit of BaFirst is less than that of BaOnly'."""
        table = compare_peak_shaving()
        assert table["BaFirst"]["final_net"] < table["BaOnly"]["final_net"]

    def test_capex_hybrid_above_battery_only(self):
        scenario = PeakShavingScenario()
        assert (capex(DEFAULT_SCHEMES["HEB"], scenario)
                > capex(DEFAULT_SCHEMES["BaOnly"], scenario))

    def test_average_annual_net_consistent(self):
        table = compare_peak_shaving()
        for row in table.values():
            assert row["average_annual_net"] == pytest.approx(
                row["final_net"] / 8.0)
