"""Tests for the ROI analysis (Figure 15b)."""

import pytest

from repro.config import TCOConfig
from repro.errors import TCOError
from repro.tco import roi, roi_sweep
from repro.tco.roi import hybrid_cost_per_watt_hour


class TestCostPerWattHour:
    def test_unamortized_blend(self):
        config = TCOConfig()
        expected = (0.7 * 300.0 + 0.3 * 10_000.0) / 1000.0
        assert hybrid_cost_per_watt_hour(
            config, amortized=False) == pytest.approx(expected)

    def test_amortization_penalizes_short_lived_battery(self):
        config = TCOConfig()
        amortized = hybrid_cost_per_watt_hour(config, amortized=True)
        flat = hybrid_cost_per_watt_hour(config, amortized=False)
        # Battery must be bought 3x over the 12-year horizon.
        assert amortized > flat


class TestROI:
    def test_positive_for_expensive_infrastructure(self):
        """Section 7.6: 'a positive ROI across most of the operating
        regions'."""
        assert roi(20.0, 0.5) > 0.0

    def test_negative_for_cheap_infrastructure_long_peaks(self):
        assert roi(2.0, 4.0) < 0.0

    def test_monotone_in_capex(self):
        values = [roi(capex, 1.0) for capex in (2.0, 10.0, 20.0)]
        assert values == sorted(values)

    def test_monotone_decreasing_in_duration(self):
        values = [roi(10.0, hours) for hours in (0.25, 1.0, 4.0)]
        assert values == sorted(values, reverse=True)

    def test_rejects_bad_args(self):
        with pytest.raises(TCOError):
            roi(0.0, 1.0)
        with pytest.raises(TCOError):
            roi(10.0, 0.0)


class TestSweep:
    def test_grid_size(self):
        points = roi_sweep(capex_values=(2.0, 10.0, 20.0),
                           peak_durations_h=(0.5, 1.0))
        assert len(points) == 6

    def test_majority_positive_default_grid(self):
        """The paper's conclusion: worthwhile across most of the region."""
        points = roi_sweep()
        positive = sum(1 for p in points if p.worthwhile)
        assert positive > len(points) / 2

    def test_rejects_empty_grid(self):
        with pytest.raises(TCOError):
            roi_sweep(capex_values=())
