"""Tests for the cost database and breakdown (Figures 4 and 15a)."""

import pytest

from repro.errors import TCOError
from repro.tco import (
    STORAGE_TECHNOLOGIES,
    CostBreakdown,
    amortized_cost_per_kwh_cycle,
    prototype_cost_breakdown,
)
from repro.tco.costs import StorageTechnology


class TestDatabase:
    def test_contains_figure4_technologies(self):
        assert {"lead-acid", "nicd", "li-ion", "supercapacitor"} <= set(
            STORAGE_TECHNOLOGIES)

    def test_lead_acid_cost_band(self):
        """Paper: UPS batteries 100-300 $/kWh."""
        tech = STORAGE_TECHNOLOGIES["lead-acid"]
        assert tech.initial_cost_low == 100.0
        assert tech.initial_cost_high == 300.0

    def test_sc_cost_band(self):
        """Paper: SCs 10k-30k $/kWh."""
        tech = STORAGE_TECHNOLOGIES["supercapacitor"]
        assert tech.initial_cost_low == 10_000.0
        assert tech.initial_cost_high == 30_000.0

    def test_sc_cycle_life_orders_beyond_battery(self):
        """Two to three orders of magnitude more cycles (Section 1)."""
        sc = STORAGE_TECHNOLOGIES["supercapacitor"].cycle_life
        lead = STORAGE_TECHNOLOGIES["lead-acid"].cycle_life
        assert 100 <= sc / lead <= 1000

    def test_validation(self):
        with pytest.raises(TCOError):
            StorageTechnology("bad", 10.0, 5.0, 100.0, 0.9)
        with pytest.raises(TCOError):
            StorageTechnology("bad", 10.0, 20.0, 0.0, 0.9)


class TestAmortized:
    def test_sc_amortized_near_nicd_liion(self):
        """Figure 4's punchline: SC amortized cost is competitive."""
        sc = amortized_cost_per_kwh_cycle(
            STORAGE_TECHNOLOGIES["supercapacitor"])
        nicd = amortized_cost_per_kwh_cycle(STORAGE_TECHNOLOGIES["nicd"])
        li = amortized_cost_per_kwh_cycle(STORAGE_TECHNOLOGIES["li-ion"])
        assert 0.2 * min(nicd, li) <= sc <= 5.0 * max(nicd, li)

    def test_lead_acid_cheapest_amortized(self):
        """... and still higher than lead-acid."""
        sc = amortized_cost_per_kwh_cycle(
            STORAGE_TECHNOLOGIES["supercapacitor"])
        lead = amortized_cost_per_kwh_cycle(
            STORAGE_TECHNOLOGIES["lead-acid"])
        assert lead < sc

    def test_high_band(self):
        tech = STORAGE_TECHNOLOGIES["lead-acid"]
        assert (amortized_cost_per_kwh_cycle(tech, use_high=True)
                > amortized_cost_per_kwh_cycle(tech))


class TestBreakdown:
    def test_esd_dominates(self):
        """Figure 15(a): storage devices are ~55% of the node cost."""
        breakdown, __ = prototype_cost_breakdown()
        fractions = breakdown.fractions()
        assert fractions["esd"] == pytest.approx(0.55, abs=0.03)
        assert fractions["esd"] == max(fractions.values())

    def test_fractions_sum_to_one(self):
        breakdown, __ = prototype_cost_breakdown()
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_node_under_16_percent_of_server_cost(self):
        """Paper: total node cost < 16% of the $4,850 server cost."""
        breakdown, server_cost = prototype_cost_breakdown()
        assert breakdown.total < 0.16 * server_cost

    def test_zero_total_rejected(self):
        breakdown = CostBreakdown(0, 0, 0, 0, 0, 0)
        with pytest.raises(TCOError):
            breakdown.fractions()
