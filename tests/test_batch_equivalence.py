"""The batched engine against its scalar bit-exactness oracle.

``BatchSimulation`` promises that advancing N scenarios through one
vectorized tick loop returns :class:`~repro.sim.RunResult` objects
**exactly equal** — every float bit-identical — to running each
scenario through the untouched scalar ``Simulation``.  This suite holds
the whole stack to that contract:

* every shipped policy, across mixed workloads and sizings, under both
  utility budgets and renewable supplies;
* hypothesis-driven random scenario sets (schemes, workloads, seeds,
  budgets, SC fractions mixed freely within one batch);
* the batched runner path: grouping, per-scenario fault schedules
  falling back to scalar execution, cache-key/hit accounting, and
  cache interchangeability between the batched and scalar paths;
* the degenerate shapes — empty batch, singleton batch.

Everything compares with ``==`` on the full result dataclasses: any
divergence in any metric, slot record, or lifetime figure fails.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ControllerConfig
from repro.core.policies import POLICY_NAMES
from repro.faults import FaultSchedule, UtilityOutage
from repro.runner import (
    ExperimentRunner,
    ExperimentSetup,
    RunRequest,
    build_simulation,
    execute_request,
    plan_units,
)
from repro.sim.batch import BatchSimulation

#: Short control slots keep runs fast while still crossing several
#: plan boundaries (the regime where lanes diverge hardest).
FAST_CONTROLLER = ControllerConfig(slot_seconds=60.0)

WORKLOADS = ("PR", "WC", "DA", "WS", "MS", "DFS", "HB", "TS")


def _request(scheme: str, workload: str, **kwargs) -> RunRequest:
    setup_kwargs = {
        "duration_h": kwargs.pop("duration_h", 0.1),
        "seed": kwargs.pop("seed", 1),
        "budget_w": kwargs.pop("budget_w", None),
        "sc_fraction": kwargs.pop("sc_fraction", 0.3),
        "total_energy_wh": kwargs.pop("total_energy_wh", 150.0),
    }
    return RunRequest(scheme=scheme, workload=workload,
                      setup=ExperimentSetup(**setup_kwargs),
                      controller=kwargs.pop("controller", FAST_CONTROLLER),
                      **kwargs)


def _batched(requests):
    return BatchSimulation(
        [build_simulation(request) for request in requests]).run_all()


def _assert_identical(batched, scalar):
    assert len(batched) == len(scalar)
    for index, (got, want) in enumerate(zip(batched, scalar)):
        for field in dataclasses.fields(want):
            got_value = getattr(got, field.name)
            want_value = getattr(want, field.name)
            assert got_value == want_value, (
                f"scenario {index}: RunResult.{field.name} diverged:\n"
                f"  batched: {got_value!r}\n  scalar:  {want_value!r}")


# ----------------------------------------------------------------------
# Exhaustive policy / workload coverage
# ----------------------------------------------------------------------

class TestPolicyCoverage:
    @pytest.mark.parametrize("scheme", POLICY_NAMES)
    def test_every_policy_bit_exact(self, scheme):
        """Each policy across three workloads in one mixed batch."""
        requests = [
            _request(scheme, workload, seed=3 + i,
                     budget_w=180.0 if i % 2 else None,
                     total_energy_wh=60.0 if i == 0 else 150.0)
            for i, workload in enumerate(("WC", "MS", "TS"))
        ]
        _assert_identical(_batched(requests),
                          [execute_request(r) for r in requests])

    def test_mixed_policies_one_batch(self):
        """All six policies side by side in a single tick loop."""
        requests = [
            _request(scheme, WORKLOADS[i % len(WORKLOADS)], seed=11 + i,
                     sc_fraction=0.0 if scheme == "BaOnly" else 0.3)
            for i, scheme in enumerate(POLICY_NAMES)
        ]
        _assert_identical(_batched(requests),
                          [execute_request(r) for r in requests])

    def test_renewable_lanes_bit_exact(self):
        requests = [
            _request(scheme, "WS", seed=90 + i, renewable=True)
            for i, scheme in enumerate(("HEB-D", "BaFirst", "SCFirst"))
        ]
        _assert_identical(_batched(requests),
                          [execute_request(r) for r in requests])

    def test_policy_view_lanes_bit_exact(self):
        """Figure-13-style policy views of the physical buffers."""
        requests = [
            _request("HEB-S", "MS", seed=7, policy_sc_fraction=0.5,
                     policy_total_wh=90.0),
            _request("HEB-S", "MS", seed=7),
        ]
        _assert_identical(_batched(requests),
                          [execute_request(r) for r in requests])


# ----------------------------------------------------------------------
# Randomized scenario sets
# ----------------------------------------------------------------------

scenario_strategy = st.builds(
    dict,
    scheme=st.sampled_from(POLICY_NAMES),
    workload=st.sampled_from(WORKLOADS),
    seed=st.integers(min_value=0, max_value=2**16),
    budget_w=st.one_of(st.none(),
                       st.floats(min_value=150.0, max_value=400.0,
                                 allow_nan=False)),
    # 0.0 (no SC pool) is exercised deterministically above; several
    # policies reject an empty SC sizing at construction, scalar and
    # batched alike.
    sc_fraction=st.sampled_from((0.1, 0.3, 0.5)),
    total_energy_wh=st.sampled_from((40.0, 90.0, 150.0)),
)


class TestRandomizedScenarioSets:
    @given(scenarios=st.lists(scenario_strategy, min_size=2, max_size=5))
    @settings(max_examples=12, deadline=None)
    def test_random_mixed_batch_bit_exact(self, scenarios):
        requests = [_request(**scenario) for scenario in scenarios]
        _assert_identical(_batched(requests),
                          [execute_request(r) for r in requests])


# ----------------------------------------------------------------------
# Degenerate shapes
# ----------------------------------------------------------------------

class TestDegenerateBatches:
    def test_empty_batch(self):
        assert BatchSimulation([]).run_all() == []

    def test_singleton_batch(self):
        request = _request("HEB-F", "WC", seed=5)
        _assert_identical(_batched([request]), [execute_request(request)])

    def test_singletons_stay_scalar_in_planning(self):
        """A lone compatible request is not worth a batched unit."""
        units, positions = plan_units([_request("HEB-F", "WC")])
        assert [kind for kind, _ in units] == ["single"]
        assert positions == [[0]]


# ----------------------------------------------------------------------
# The batched runner path
# ----------------------------------------------------------------------

def _mixed_requests():
    faults = FaultSchedule(
        events=(UtilityOutage(start_s=60.0, duration_s=90.0),))
    return [
        _request("HEB-D", "WC", seed=21),
        _request("BaFirst", "MS", seed=22),
        # Scalar-only: fault injection never batches.
        _request("SCFirst", "TS", seed=23, faults=faults),
        # Different slot grid: lands in its own (singleton) group.
        _request("HEB-S", "DA", seed=24,
                 controller=ControllerConfig(slot_seconds=120.0)),
        _request("HEB-F", "HB", seed=25),
    ]


class TestBatchedRunner:
    def test_planning_separates_faulted_and_incompatible(self):
        units, positions = plan_units(_mixed_requests())
        kinds = sorted(kind for kind, _ in units)
        assert kinds == ["group", "single", "single"]
        (group_positions,) = [
            pos for (kind, _), pos in zip(units, positions)
            if kind == "group"]
        assert group_positions == [0, 1, 4]

    def test_runner_map_matches_scalar_per_request(self):
        requests = _mixed_requests()
        expected = [execute_request(r) for r in requests]
        runner = ExperimentRunner(jobs=1)
        _assert_identical(runner.map(requests), expected)

    def test_fault_lane_matches_scalar_fault_run(self):
        faulted = _mixed_requests()[2]
        runner = ExperimentRunner(jobs=1)
        _assert_identical([runner.run(faulted)],
                          [execute_request(faulted)])

    def test_cache_keys_interchange_with_scalar_path(self, tmp_path):
        from repro.runner import ResultCache

        requests = _mixed_requests()
        batched_cache = ResultCache(tmp_path / "cache")
        batched_runner = ExperimentRunner(jobs=1, cache=batched_cache,
                                          batch=True)
        first = batched_runner.map(requests)
        assert batched_runner.misses == len(requests)
        assert batched_runner.hits == 0

        # A scalar (non-batching) runner over the same cache must hit
        # every entry: the batched path writes under identical keys.
        scalar_runner = ExperimentRunner(jobs=1, cache=batched_cache,
                                         batch=False)
        second = scalar_runner.map(requests)
        assert scalar_runner.hits == len(requests)
        assert scalar_runner.misses == 0
        _assert_identical(second, first)
