"""Integration tests for the simulation engine."""

import dataclasses

import numpy as np
import pytest

from repro.config import (
    ClusterConfig,
    ControllerConfig,
    prototype_buffer,
    prototype_cluster,
)
from repro.core import make_policy
from repro.errors import SimulationError
from repro.sim import HybridBuffers, Simulation
from repro.units import minutes
from repro.workloads import ClusterTrace, PowerTrace


def constant_trace(per_server_w, num_servers=6, seconds=1200):
    values = np.full((num_servers, seconds), float(per_server_w))
    return ClusterTrace(values, 1.0, name="constant")


def run_sim(trace, scheme="HEB-D", budget=260.0, supply=None,
            renewable=False, include_sc=None, controller=None):
    hybrid = prototype_buffer()
    cluster = dataclasses.replace(prototype_cluster(),
                                  utility_budget_w=budget)
    policy = make_policy(scheme, hybrid=hybrid)
    if include_sc is None:
        include_sc = scheme != "BaOnly"
    buffers = HybridBuffers(hybrid, include_sc=include_sc)
    sim = Simulation(trace, policy, buffers, cluster_config=cluster,
                     controller_config=controller, supply=supply,
                     renewable=renewable)
    return sim.run()


class TestValidation:
    def test_server_count_mismatch(self, tiny_trace):
        cluster = ClusterConfig(num_servers=4)
        hybrid = prototype_buffer()
        with pytest.raises(SimulationError):
            Simulation(tiny_trace, make_policy("BaOnly"),
                       HybridBuffers(hybrid, include_sc=False),
                       cluster_config=cluster)

    def test_supply_dt_mismatch(self, tiny_trace):
        supply = PowerTrace(np.full(10000, 260.0), 2.0)
        with pytest.raises(SimulationError):
            run_sim(tiny_trace, supply=supply)

    def test_supply_too_short(self, tiny_trace):
        supply = PowerTrace(np.full(10, 260.0), 1.0)
        with pytest.raises(SimulationError):
            run_sim(tiny_trace, supply=supply)


class TestSteadyState:
    def test_no_deficit_no_buffer_discharge(self):
        """Demand below budget: servers run on utility, buffers idle/full."""
        result = run_sim(constant_trace(30.0), scheme="HEB-D")
        assert result.metrics.buffer_energy_out_j == pytest.approx(0.0)
        assert result.metrics.server_downtime_s == 0.0
        assert result.metrics.deficit_time_fraction == 0.0

    def test_utility_energy_matches_demand(self):
        result = run_sim(constant_trace(30.0))
        expected = 6 * 30.0 * 1200
        assert result.metrics.utility_energy_j == pytest.approx(
            expected, rel=0.01)

    def test_depleted_buffers_recharge_in_valley(self):
        hybrid = prototype_buffer()
        cluster = prototype_cluster()
        policy = make_policy("HEB-D", hybrid=hybrid)
        buffers = HybridBuffers(hybrid)
        buffers.sc.reset(0.2)
        trace = constant_trace(30.0, seconds=1800)
        sim = Simulation(trace, policy, buffers, cluster_config=cluster)
        sim.run()
        assert buffers.sc.soc > 0.5


class TestDeficitHandling:
    def test_buffers_cover_peak(self):
        """Demand over budget must be served from storage, not shed."""
        result = run_sim(constant_trace(60.0, seconds=600))  # 360 W vs 260 W
        assert result.metrics.buffer_energy_out_j > 0.0
        assert result.metrics.server_downtime_s == 0.0

    def test_sustained_overload_eventually_sheds(self):
        result = run_sim(constant_trace(65.0, seconds=3 * 3600))
        assert result.metrics.server_downtime_s > 0.0
        assert result.metrics.unserved_energy_j > 0.0

    def test_baonly_cannot_serve_without_battery_energy(self):
        hybrid = prototype_buffer()
        policy = make_policy("BaOnly")
        buffers = HybridBuffers(hybrid, include_sc=False)
        buffers.battery.reset(0.21)  # just above the DoD floor
        trace = constant_trace(60.0, seconds=900)
        sim = Simulation(trace, policy, buffers,
                         cluster_config=prototype_cluster())
        result = sim.run()
        assert result.metrics.server_downtime_s > 0.0

    def test_served_energy_conservation(self):
        """Served + unserved approximately equals offered demand."""
        result = run_sim(constant_trace(55.0, seconds=1200))
        total_demand = 6 * 55.0 * 1200
        accounted = (result.metrics.served_energy_j
                     + result.metrics.unserved_energy_j)
        assert accounted == pytest.approx(total_demand, rel=0.05)


class TestSlotMachinery:
    def test_slot_records_cover_run(self, tiny_trace):
        controller = ControllerConfig(slot_seconds=minutes(5))
        result = run_sim(tiny_trace, controller=controller)
        assert len(result.slots) == 4  # 20 min / 5 min

    def test_slot_records_carry_plan_notes(self, tiny_trace):
        result = run_sim(tiny_trace)
        assert all(record.note for record in result.slots)

    def test_policy_sees_observations(self, tiny_trace):
        hybrid = prototype_buffer()
        policy = make_policy("HEB-D", hybrid=hybrid)
        controller = ControllerConfig(slot_seconds=minutes(5))
        buffers = HybridBuffers(hybrid)
        sim = Simulation(tiny_trace, policy, buffers,
                         cluster_config=prototype_cluster(),
                         controller_config=controller)
        sim.run()
        assert policy.predictor.observations == 4


class TestRenewable:
    def test_reu_defined_for_renewable_runs(self, tiny_trace):
        supply = PowerTrace(
            np.full(tiny_trace.num_samples, 300.0), 1.0)
        result = run_sim(tiny_trace, supply=supply, renewable=True)
        assert result.metrics.reu is not None
        assert 0.0 < result.metrics.reu <= 1.0

    def test_supply_trace_is_the_budget(self):
        """With a 150 W supply and ~180 W idle demand, buffers must serve
        load or servers go down."""
        trace = constant_trace(35.0, seconds=1200)
        supply = PowerTrace(np.full(1200, 150.0), 1.0)
        result = run_sim(trace, supply=supply, renewable=True)
        assert (result.metrics.buffer_energy_out_j > 0.0
                or result.metrics.server_downtime_s > 0.0)

    def test_surplus_charges_buffers(self):
        trace = constant_trace(30.0, seconds=1200)
        supply = PowerTrace(np.full(1200, 400.0), 1.0)
        hybrid = prototype_buffer()
        policy = make_policy("HEB-D", hybrid=hybrid)
        buffers = HybridBuffers(hybrid)
        buffers.sc.reset(0.1)
        buffers.battery.reset(0.5)
        sim = Simulation(trace, policy, buffers,
                         cluster_config=prototype_cluster(), supply=supply,
                         renewable=True)
        result = sim.run()
        assert result.metrics.buffer_energy_in_j > 0.0
        assert buffers.sc.soc > 0.9


class TestRelays:
    def test_relays_actuated_on_peaks(self):
        result = run_sim(constant_trace(60.0, seconds=600))
        assert result.metrics.relay_switches > 0

    def test_no_switching_without_peaks(self):
        result = run_sim(constant_trace(30.0, seconds=600))
        assert result.metrics.relay_switches == 0


class TestRestarts:
    def test_shed_servers_restart_when_power_allows(self):
        """A long overload sheds; the following valley restarts."""
        demand = np.concatenate([
            np.full((6, 5400), 65.0),  # heavy 1.5 h drains everything
            np.full((6, 1800), 30.0),  # then calm
        ], axis=1)
        trace = ClusterTrace(demand, 1.0, name="step")
        result = run_sim(trace)
        assert result.metrics.total_restarts > 0
        assert result.metrics.restart_energy_j > 0.0
