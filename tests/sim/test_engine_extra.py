"""Additional engine tests: metering, failure injection, edge cases."""

import dataclasses

import numpy as np
import pytest

from repro.config import (
    ControllerConfig,
    prototype_buffer,
    prototype_cluster,
)
from repro.core import make_policy
from repro.core.policies.base import Policy, SlotPlan
from repro.sim import HybridBuffers, Simulation
from repro.units import minutes
from repro.workloads import ClusterTrace, PowerTrace


def constant_trace(per_server_w, num_servers=6, seconds=1200):
    values = np.full((num_servers, seconds), float(per_server_w))
    return ClusterTrace(values, 1.0, name="constant")


def make_sim(trace, scheme="HEB-D", budget=260.0, buffers=None,
             policy=None, supply=None, renewable=False):
    hybrid = prototype_buffer()
    cluster = dataclasses.replace(prototype_cluster(),
                                  utility_budget_w=budget)
    policy = policy or make_policy(scheme, hybrid=hybrid)
    if buffers is None:
        buffers = HybridBuffers(hybrid, include_sc=scheme != "BaOnly")
    return Simulation(trace, policy, buffers, cluster_config=cluster,
                      supply=supply, renewable=renewable)


class TestIPDUMetering:
    def test_ipdu_meters_served_energy(self):
        sim = make_sim(constant_trace(30.0, seconds=600))
        sim.run()
        # All six servers at 30 W for 600 s.
        assert sim.ipdu.energy_metered_j == pytest.approx(
            6 * 30.0 * 600, rel=0.01)

    def test_ipdu_history_bounded_to_slot(self):
        sim = make_sim(constant_trace(30.0, seconds=1500))
        sim.run()
        assert len(sim.ipdu.history()) <= 600  # one 10-min slot

    def test_latest_reading_reflects_final_tick(self):
        sim = make_sim(constant_trace(40.0, seconds=300))
        sim.run()
        assert sim.ipdu.latest().total_w == pytest.approx(240.0)


class TestFailureInjection:
    def test_dead_battery_hybrid_survives_on_sc(self):
        """A completely failed battery: SC alone keeps small peaks up."""
        hybrid = prototype_buffer()
        buffers = HybridBuffers(hybrid)
        buffers.battery.reset(0.2)  # at the DoD floor: unusable
        sim = make_sim(constant_trace(48.0, seconds=900),
                       buffers=buffers)  # 288 W vs 260 W
        result = sim.run()
        assert result.metrics.server_downtime_s == 0.0
        assert buffers.sc.telemetry.energy_out_j > 0.0

    def test_both_pools_dead_sheds_immediately(self):
        hybrid = prototype_buffer()
        buffers = HybridBuffers(hybrid)
        buffers.battery.reset(0.2)
        buffers.sc.reset(0.0)
        sim = make_sim(constant_trace(60.0, seconds=600), buffers=buffers)
        result = sim.run()
        assert result.metrics.server_downtime_s > 0.0

    def test_aged_battery_degrades_but_runs(self):
        hybrid = prototype_buffer()
        fresh_buffers = HybridBuffers(hybrid)
        aged_buffers = HybridBuffers(hybrid)
        aged_buffers.battery.apply_aging(0.3, resistance_growth=2.0)
        trace = constant_trace(60.0, seconds=3600)
        fresh = make_sim(trace, buffers=fresh_buffers).run()
        aged = make_sim(trace, buffers=aged_buffers).run()
        assert (aged.metrics.unserved_energy_j
                >= fresh.metrics.unserved_energy_j)

    def test_misbehaving_policy_r_out_of_range_is_clamped(self):
        class WildPolicy(Policy):
            name = "Wild"

            def begin_slot(self, observation):
                return SlotPlan(r_lambda=7.3, charge_order=("sc",),
                                note="wild")

        sim = make_sim(constant_trace(60.0, seconds=600),
                       policy=WildPolicy())
        result = sim.run()  # must not crash
        assert result.scheme == "Wild"

    def test_zero_supply_trace_downs_everything(self):
        # Long enough that both pools (150 Wh) drain at the 180 W load.
        trace = constant_trace(30.0, seconds=5400)
        supply = PowerTrace(np.full(5400, 1e-6), 1.0)
        result = make_sim(trace, supply=supply, renewable=True).run()
        # Buffers carry the load briefly, then the cluster goes dark.
        assert result.metrics.server_downtime_s > 0.0


class TestEdgeCases:
    def test_single_tick_trace(self):
        trace = constant_trace(30.0, seconds=1)
        result = make_sim(trace).run()
        assert result.metrics.duration_s == 1.0
        assert len(result.slots) == 1

    def test_slot_longer_than_trace(self):
        trace = constant_trace(30.0, seconds=120)
        controller = ControllerConfig(slot_seconds=minutes(30))
        hybrid = prototype_buffer()
        sim = Simulation(trace, make_policy("HEB-D", hybrid=hybrid),
                         HybridBuffers(hybrid),
                         cluster_config=prototype_cluster(),
                         controller_config=controller)
        result = sim.run()
        assert len(result.slots) == 1

    def test_single_server_cluster(self):
        cluster = dataclasses.replace(
            prototype_cluster(), num_servers=1, utility_budget_w=40.0)
        trace = constant_trace(60.0, num_servers=1, seconds=600)
        hybrid = prototype_buffer()
        sim = Simulation(trace, make_policy("SCFirst", hybrid=hybrid),
                         HybridBuffers(hybrid), cluster_config=cluster)
        result = sim.run()
        assert result.metrics.buffer_energy_out_j > 0.0

    def test_zero_budget_everything_from_buffers(self):
        trace = constant_trace(30.0, seconds=300)
        result = make_sim(trace, budget=0.0).run()
        assert result.metrics.utility_energy_j == 0.0
        assert (result.metrics.buffer_energy_out_j > 0.0
                or result.metrics.server_downtime_s > 0.0)

    def test_rerun_same_sim_object_is_consistent(self):
        """Running a Simulation twice reuses mutated cluster/buffers;
        users should build a new Simulation per run — but a second run
        must still produce a valid result object."""
        sim = make_sim(constant_trace(30.0, seconds=300))
        first = sim.run()
        second = sim.run()
        assert second.metrics.duration_s == first.metrics.duration_s
