"""Tests for modular (bank-backed) hybrid buffer pools."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import HybridBuffers
from repro.storage import DeviceBank


class TestModularPools:
    def test_single_module_is_plain_device(self, hybrid_config):
        buffers = HybridBuffers(hybrid_config)
        assert not isinstance(buffers.battery, DeviceBank)
        assert not isinstance(buffers.sc, DeviceBank)

    def test_multi_module_builds_banks(self, hybrid_config):
        buffers = HybridBuffers(hybrid_config, battery_modules=3,
                                sc_modules=2)
        assert isinstance(buffers.battery, DeviceBank)
        assert isinstance(buffers.sc, DeviceBank)
        assert len(buffers.battery.devices) == 3
        assert len(buffers.sc.devices) == 2

    def test_total_capacity_preserved(self, hybrid_config):
        single = HybridBuffers(hybrid_config)
        modular = HybridBuffers(hybrid_config, battery_modules=4,
                                sc_modules=3)
        assert modular.battery_nominal_j == pytest.approx(
            single.battery_nominal_j, rel=1e-9)
        assert modular.sc_nominal_j == pytest.approx(
            single.sc_nominal_j, rel=1e-9)

    def test_rejects_zero_modules(self, hybrid_config):
        with pytest.raises(ConfigurationError):
            HybridBuffers(hybrid_config, battery_modules=0)

    def test_discharge_spreads_across_modules(self, hybrid_config):
        buffers = HybridBuffers(hybrid_config, battery_modules=2)
        buffers.begin_tick()
        buffers.discharge("battery", 60.0, 1.0)
        for device in buffers.battery.devices:
            assert device.telemetry.energy_out_j > 0.0

    def test_lifetime_model_still_observes(self, hybrid_config):
        buffers = HybridBuffers(hybrid_config, battery_modules=2)
        buffers.begin_tick()
        buffers.discharge("battery", 60.0, 1.0)
        assert buffers.lifetime.report().raw_throughput_ah > 0.0

    def test_dod_reaches_members(self, hybrid_config):
        buffers = HybridBuffers(hybrid_config, battery_modules=2,
                                battery_dod=0.5)
        for device in buffers.battery.devices:
            assert device.soc_floor == pytest.approx(0.5)

    def test_modular_equivalent_performance(self, hybrid_config):
        """A 2-module pool behaves like the monolithic pool to first
        order (same total energy, same aggregate power capability)."""
        single = HybridBuffers(hybrid_config)
        modular = HybridBuffers(hybrid_config, battery_modules=2,
                                sc_modules=2)
        assert modular.battery.max_discharge_power_w(1.0) == pytest.approx(
            single.battery.max_discharge_power_w(1.0), rel=0.05)
        assert modular.sc.max_discharge_power_w(1.0) == pytest.approx(
            single.sc.max_discharge_power_w(1.0), rel=0.05)
