"""Round-trip tests for the RunResult serialization layer.

The runner cache stores every RunResult as one JSON document, so the
serialize -> deserialize -> equal-metrics loop must be loss-free down to
the last float bit, and the cache key must be identical no matter which
process computes it (workers hash requests independently of the parent).
"""

import json
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.runner import ExperimentSetup, RunRequest, cache_key, execute_request
from repro.sim import (
    RESULT_FORMAT_VERSION,
    dump_results,
    from_json_line,
    load_results,
    result_from_dict,
    result_to_dict,
    to_json_line,
)
from repro.sim.results import RunResult, SlotRecord

FAST = ExperimentSetup(duration_h=0.2)


@pytest.fixture(scope="module")
def sample_result():
    return execute_request(RunRequest("SCFirst", "TS", setup=FAST))


@pytest.fixture(scope="module")
def renewable_result():
    return execute_request(
        RunRequest("BaFirst", "PR", setup=FAST, renewable=True))


class TestDictRoundTrip:
    def test_metrics_survive_exactly(self, sample_result):
        clone = result_from_dict(result_to_dict(sample_result))
        assert clone.to_dict() == sample_result.to_dict()
        assert clone.metrics == sample_result.metrics
        assert clone.lifetime == sample_result.lifetime

    def test_slots_survive_exactly(self, sample_result):
        clone = result_from_dict(result_to_dict(sample_result))
        assert len(clone.slots) == len(sample_result.slots)
        for original, restored in zip(sample_result.slots, clone.slots):
            assert isinstance(restored, SlotRecord)
            assert restored == original

    def test_optional_reu_survives(self, renewable_result):
        assert renewable_result.metrics.reu is not None
        clone = result_from_dict(result_to_dict(renewable_result))
        assert clone.metrics.reu == renewable_result.metrics.reu
        assert (clone.metrics.renewable_capture
                == renewable_result.metrics.renewable_capture)

    def test_payload_carries_format_version(self, sample_result):
        assert result_to_dict(sample_result)["format"] == (
            RESULT_FORMAT_VERSION)

    def test_unknown_format_rejected(self, sample_result):
        payload = result_to_dict(sample_result)
        payload["format"] = RESULT_FORMAT_VERSION + 1
        with pytest.raises(ValueError):
            result_from_dict(payload)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError):
            result_from_dict({"format": RESULT_FORMAT_VERSION})

    def test_method_aliases(self, sample_result):
        clone = RunResult.from_dict(sample_result.to_dict())
        assert clone.to_dict() == sample_result.to_dict()


class TestJsonLines:
    def test_line_round_trip_is_bit_exact(self, sample_result):
        line = to_json_line(sample_result)
        assert "\n" not in line
        clone = from_json_line(line)
        # Re-serializing the clone must give the identical byte string —
        # floats survive via shortest-repr round-tripping.
        assert to_json_line(clone) == line

    def test_line_is_plain_json(self, sample_result):
        payload = json.loads(to_json_line(sample_result))
        assert payload["scheme"] == "SCFirst"
        assert payload["workload"] == "TS"

    def test_dump_load_many(self, tmp_path, sample_result,
                            renewable_result):
        path = tmp_path / "results.jsonl"
        dump_results([sample_result, renewable_result], path)
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[0].to_dict() == sample_result.to_dict()
        assert loaded[1].to_dict() == renewable_result.to_dict()

    def test_load_skips_blank_lines(self, tmp_path, sample_result):
        path = tmp_path / "results.jsonl"
        path.write_text(to_json_line(sample_result) + "\n\n\n")
        assert len(load_results(path)) == 1


def _cache_key_in_subprocess(request):
    return cache_key(request)


class TestCacheKeyStability:
    """The key must not depend on which process hashes the request."""

    def test_key_stable_across_worker_processes(self):
        request = RunRequest("HEB-F", "TS", setup=FAST)
        local = cache_key(request)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_cache_key_in_subprocess, request).result()
        assert remote == local

    def test_key_stable_across_fresh_interpreters(self):
        """A cold python process (fresh imports, new hash randomization)
        must derive the same key."""
        request = RunRequest("BaOnly", "PR", setup=FAST)
        local = cache_key(request)
        src = Path(__file__).resolve().parents[2] / "src"
        script = (
            "from repro.runner import ExperimentSetup, RunRequest, cache_key\n"
            "print(cache_key(RunRequest('BaOnly', 'PR',"
            " setup=ExperimentSetup(duration_h=0.2))))\n")
        output = subprocess.run(
            [sys.executable, "-c", script], check=True, text=True,
            capture_output=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        ).stdout.strip()
        assert output == local
