"""Tests for result export helpers."""

import csv

import pytest

from repro.errors import SimulationError
from repro.sim import (
    compare_schemes,
    comparison_to_markdown,
    results_to_csv,
    results_to_markdown,
)
from tests.sim.test_results import result_of


@pytest.fixture
def results():
    return [result_of("BaOnly", ee=0.7, downtime=500.0, lifetime=1.0),
            result_of("HEB-D", ee=0.95, downtime=200.0, lifetime=5.0,
                      reu=0.8)]


class TestCSVExport:
    def test_writes_one_row_per_run(self, tmp_path, results):
        path = tmp_path / "runs.csv"
        results_to_csv(results, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["scheme"] == "BaOnly"
        assert float(rows[1]["energy_efficiency"]) == pytest.approx(0.95)

    def test_missing_reu_is_blank(self, tmp_path, results):
        path = tmp_path / "runs.csv"
        results_to_csv(results, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["reu"] == ""
        assert rows[1]["reu"] != ""

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(SimulationError):
            results_to_csv([], tmp_path / "empty.csv")


class TestMarkdownExport:
    def test_renders_table(self, results):
        text = results_to_markdown(results, title="T")
        assert "### T" in text
        assert "| BaOnly |" in text
        assert "| HEB-D |" in text
        assert "—" in text  # missing REU

    def test_comparison_table(self, results):
        table = compare_schemes(results)
        text = comparison_to_markdown(table)
        assert "baseline: BaOnly" in text
        assert "HEB-D" in text

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            results_to_markdown([])
        with pytest.raises(SimulationError):
            comparison_to_markdown({})
