"""Tests for metric accumulation and finalization."""

import pytest

from repro.sim.metrics import MetricsAccumulator, finalize_metrics


def finalize(accumulator=None, **overrides):
    defaults = dict(
        buffer_in_j=1000.0, buffer_out_j=800.0,
        initial_stored_j=5000.0, final_stored_j=5000.0,
        downtime_s=0.0, num_servers=6, duration_s=3600.0,
        lifetime_years=5.0, equivalent_cycles=2.0,
        total_restarts=0, restart_energy_j=0.0, relay_switches=0,
        renewable=False)
    defaults.update(overrides)
    return finalize_metrics(accumulator or MetricsAccumulator(), **defaults)


class TestAccumulator:
    def test_record_tick_sums(self):
        acc = MetricsAccumulator()
        acc.record_tick(dt=2.0, served_w=100.0, unserved_w=10.0,
                        utility_w=90.0, charge_w=5.0, generation_w=200.0,
                        conversion_loss_w=1.0, deficit=True)
        assert acc.served_energy_j == 200.0
        assert acc.unserved_energy_j == 20.0
        assert acc.deficit_ticks == 1
        assert acc.total_ticks == 1


class TestEfficiency:
    def test_ee_from_in_plus_drawdown(self):
        metrics = finalize(buffer_in_j=1000.0, buffer_out_j=900.0,
                           initial_stored_j=5000.0, final_stored_j=4800.0)
        assert metrics.energy_efficiency == pytest.approx(900.0 / 1200.0)

    def test_unused_buffers_are_perfectly_efficient(self):
        metrics = finalize(buffer_in_j=0.0, buffer_out_j=0.0)
        assert metrics.energy_efficiency == 1.0

    def test_ee_capped_at_one(self):
        metrics = finalize(buffer_in_j=100.0, buffer_out_j=200.0,
                           initial_stored_j=100.0, final_stored_j=100.0)
        assert metrics.energy_efficiency == 1.0

    def test_net_charge_does_not_inflate_ee(self):
        """A run that ends with fuller buffers must not divide by the
        gross charge only."""
        metrics = finalize(buffer_in_j=1000.0, buffer_out_j=100.0,
                           initial_stored_j=1000.0, final_stored_j=1800.0)
        assert metrics.energy_efficiency == pytest.approx(0.1)


class TestREU:
    def test_none_for_utility_runs(self):
        metrics = finalize(renewable=False)
        assert metrics.reu is None

    def test_reu_ratio(self):
        acc = MetricsAccumulator()
        acc.record_tick(dt=1.0, served_w=0.0, unserved_w=0.0,
                        utility_w=300.0, charge_w=100.0,
                        generation_w=800.0, conversion_loss_w=0.0,
                        deficit=False)
        metrics = finalize(acc, renewable=True)
        assert metrics.reu == pytest.approx(400.0 / 800.0)

    def test_reu_none_without_generation(self):
        metrics = finalize(renewable=True)
        assert metrics.reu is None


class TestDowntime:
    def test_downtime_fraction(self):
        metrics = finalize(downtime_s=3600.0, num_servers=6,
                           duration_s=3600.0)
        assert metrics.downtime_fraction == pytest.approx(1.0 / 6.0)

    def test_deficit_fraction(self):
        acc = MetricsAccumulator()
        for deficit in (True, False, False, False):
            acc.record_tick(1.0, 0, 0, 0, 0, 0, 0, deficit)
        metrics = finalize(acc)
        assert metrics.deficit_time_fraction == pytest.approx(0.25)

    def test_zero_duration_gives_zero_fraction(self):
        """A zero-length run has no server-seconds; the fraction must be
        0, not a blow-up against the 1e-9 epsilon wall."""
        metrics = finalize(downtime_s=0.0, duration_s=0.0)
        assert metrics.downtime_fraction == 0.0

    def test_zero_servers_gives_zero_fraction(self):
        """An empty cluster used to divide by (0 * wall) = 0."""
        metrics = finalize(num_servers=0, duration_s=3600.0)
        assert metrics.downtime_fraction == 0.0

    def test_zero_servers_and_zero_duration(self):
        metrics = finalize(num_servers=0, duration_s=0.0)
        assert metrics.downtime_fraction == 0.0

    def test_real_runs_unchanged_by_degenerate_guard(self):
        """The guard must be bit-identical to the old formula whenever
        the denominator is positive."""
        metrics = finalize(downtime_s=123.456, num_servers=7,
                           duration_s=5400.0)
        assert metrics.downtime_fraction == 123.456 / (7 * 5400.0)


class TestFaultDowntime:
    def test_default_is_none(self):
        assert finalize().fault_downtime_s is None

    def test_attribution_passthrough(self):
        buckets = {"baseline": 10.0, "outage": 50.0}
        metrics = finalize(downtime_s=60.0, fault_downtime_s=buckets)
        assert metrics.fault_downtime_s == buckets
