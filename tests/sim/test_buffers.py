"""Tests for the HybridBuffers bundle."""

import pytest

from repro.config import prototype_buffer
from repro.errors import SimulationError
from repro.sim import HybridBuffers


@pytest.fixture
def buffers(hybrid_config):
    return HybridBuffers(hybrid_config)


class TestConstruction:
    def test_pools_sized_by_ratio(self, buffers, hybrid_config):
        assert buffers.sc_nominal_j == pytest.approx(
            hybrid_config.sc_energy_j)
        assert buffers.battery_nominal_j == pytest.approx(
            hybrid_config.battery_energy_j)

    def test_battery_only_gets_full_capacity(self, hybrid_config):
        """Equal-capacity comparison: BaOnly's battery holds everything."""
        buffers = HybridBuffers(hybrid_config, include_sc=False)
        assert buffers.sc is None
        assert buffers.battery_nominal_j == pytest.approx(
            hybrid_config.total_energy_j)

    def test_zero_sc_fraction_drops_pool(self):
        buffers = HybridBuffers(prototype_buffer(sc_fraction=0.0))
        assert buffers.sc is None

    def test_dod_overrides(self, hybrid_config):
        buffers = HybridBuffers(hybrid_config, battery_dod=0.5, sc_dod=0.6)
        assert buffers.battery.soc_floor == pytest.approx(0.5)
        assert buffers.sc.soc_floor == pytest.approx(0.4)

    def test_unknown_pool_rejected(self, buffers):
        with pytest.raises(SimulationError):
            buffers.pool("flywheel")


class TestTickProtocol:
    def test_discharge_feeds_lifetime_model(self, buffers):
        buffers.begin_tick()
        buffers.discharge("battery", 50.0, 1.0)
        assert buffers.lifetime.report().raw_throughput_ah > 0.0

    def test_sc_discharge_does_not_wear_battery(self, buffers):
        buffers.begin_tick()
        buffers.discharge("sc", 50.0, 1.0)
        assert buffers.lifetime.report().raw_throughput_ah == 0.0

    def test_settle_rests_untouched_battery(self, buffers):
        buffers.begin_tick()
        buffers.settle(1.0)
        assert buffers.battery.telemetry.rest_time_s == pytest.approx(1.0)

    def test_settle_skips_touched_pool(self, buffers):
        buffers.begin_tick()
        buffers.discharge("battery", 50.0, 1.0)
        buffers.settle(1.0)
        assert buffers.battery.telemetry.rest_time_s == 0.0

    def test_missing_pool_discharge_rejected(self, hybrid_config):
        buffers = HybridBuffers(hybrid_config, include_sc=False)
        with pytest.raises(SimulationError):
            buffers.discharge("sc", 10.0, 1.0)


class TestEnergyAccounting:
    def test_energy_out_tracks_both_pools(self, buffers):
        buffers.begin_tick()
        buffers.discharge("sc", 50.0, 1.0)
        buffers.discharge("battery", 50.0, 1.0)
        assert buffers.energy_out_j() == pytest.approx(100.0, rel=1e-6)

    def test_energy_in_tracks_charges(self, buffers):
        buffers.battery.reset(0.5)
        buffers.begin_tick()
        result = buffers.charge("battery", 25.0, 1.0)
        assert buffers.energy_in_j() == pytest.approx(result.energy_j)

    def test_reset_restores_initial_state(self, buffers):
        buffers.begin_tick()
        buffers.discharge("sc", 100.0, 10.0)
        buffers.reset()
        assert buffers.total_stored_j == pytest.approx(
            buffers.initial_stored_j)
        assert buffers.energy_out_j() == 0.0
        assert buffers.lifetime.report().raw_throughput_ah == 0.0
