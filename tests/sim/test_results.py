"""Tests for result containers and scheme comparison."""

import pytest

from repro.sim.metrics import RunMetrics
from repro.sim.results import RunResult, average_metric, compare_schemes
from repro.storage.lifetime import LifetimeReport


def metrics_of(ee=0.8, downtime=100.0, lifetime=2.0, reu=None):
    return RunMetrics(
        energy_efficiency=ee, server_downtime_s=downtime,
        downtime_fraction=downtime / 3600.0,
        battery_lifetime_years=lifetime, battery_equivalent_cycles=1.0,
        reu=reu, renewable_capture=reu,
        buffer_energy_in_j=0.0, buffer_energy_out_j=0.0,
        served_energy_j=0.0, unserved_energy_j=0.0, utility_energy_j=0.0,
        generation_energy_j=0.0, deficit_time_fraction=0.0,
        total_restarts=0, restart_energy_j=0.0, relay_switches=0,
        duration_s=3600.0)


def result_of(scheme, workload="PR", **kwargs):
    report = LifetimeReport(
        effective_throughput_ah=1.0, raw_throughput_ah=1.0,
        life_consumed_fraction=0.01, equivalent_full_cycles=1.0,
        estimated_lifetime_years=kwargs.get("lifetime", 2.0),
        observation_seconds=3600.0)
    return RunResult(scheme=scheme, workload=workload,
                     metrics=metrics_of(**kwargs), lifetime=report,
                     slots=())


class TestSummary:
    def test_summary_keys(self):
        summary = result_of("HEB-D").summary()
        assert "energy_efficiency" in summary
        assert "reu" not in summary

    def test_summary_includes_reu_when_present(self):
        summary = result_of("HEB-D", reu=0.8).summary()
        assert summary["reu"] == 0.8


class TestAverageMetric:
    def test_mean(self):
        results = [result_of("A", ee=0.6), result_of("A", ee=0.8)]
        assert average_metric(
            results, lambda m: m.energy_efficiency) == pytest.approx(0.7)

    def test_ignores_none(self):
        results = [result_of("A", reu=0.5), result_of("A", reu=None)]
        assert average_metric(results, lambda m: m.reu) == pytest.approx(0.5)

    def test_raises_when_empty(self):
        with pytest.raises(ValueError):
            average_metric([result_of("A")], lambda m: m.reu)


class TestCompareSchemes:
    @pytest.fixture
    def results(self):
        return [
            result_of("BaOnly", ee=0.70, downtime=1000.0, lifetime=1.0),
            result_of("BaOnly", workload="WC", ee=0.74,
                      downtime=800.0, lifetime=1.2),
            result_of("HEB-D", ee=0.95, downtime=500.0, lifetime=5.0),
            result_of("HEB-D", workload="WC", ee=0.93,
                      downtime=580.0, lifetime=4.8),
        ]

    def test_per_scheme_means(self, results):
        table = compare_schemes(results)
        assert table["BaOnly"]["energy_efficiency"] == pytest.approx(0.72)
        assert table["HEB-D"]["runs"] == 2.0

    def test_normalized_ratios(self, results):
        table = compare_schemes(results)
        assert table["HEB-D"]["energy_efficiency_vs_baseline"] == (
            pytest.approx(0.94 / 0.72))
        assert table["HEB-D"]["server_downtime_vs_baseline"] < 1.0
        assert table["HEB-D"]["battery_lifetime_vs_baseline"] > 1.0

    def test_missing_baseline_raises(self, results):
        with pytest.raises(ValueError):
            compare_schemes(results[2:], baseline="BaOnly")
