"""Property-based tests (hypothesis) for HybridBuffers and the engine.

These complement the unit suites with randomized invariants:

* ``HybridBuffers`` — energy conservation over arbitrary operation
  sequences, SoC confined to ``[1 - DoD, 1]``, tick-protocol sanity.
* ``Simulation`` — on random small cluster traces, per-run accounting
  must balance exactly: served + unserved equals total demand, the
  buffer contribution equals ``buffer_energy_out * converter_efficiency``,
  the utility never exceeds its budget, and downtime is never negative.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig, prototype_buffer
from repro.core import make_policy
from repro.errors import SimulationError
from repro.sim import HybridBuffers, Simulation
from repro.workloads.base import ClusterTrace

import pytest


# One buffer operation: (pool, action, power_w).  ``rest`` ticks exercise
# the settle path (KiBaM recovery happens there).
operations_strategy = st.lists(
    st.tuples(st.sampled_from(["sc", "battery"]),
              st.sampled_from(["charge", "discharge", "rest"]),
              st.floats(min_value=0.0, max_value=400.0)),
    min_size=1, max_size=40)

dod_strategy = st.floats(min_value=0.1, max_value=1.0)


def apply_operations(buffers, operations, dt=1.0):
    for pool, action, power in operations:
        buffers.begin_tick()
        if action == "charge":
            buffers.charge(pool, power, dt)
        elif action == "discharge":
            buffers.discharge(pool, power, dt)
        buffers.settle(dt)


class TestHybridBufferProperties:
    @given(operations_strategy)
    @settings(max_examples=60, deadline=None)
    def test_energy_conservation(self, operations):
        """Energy out never exceeds initial store plus energy in, and the
        final store is bounded by the same ledger (losses only shrink it)."""
        buffers = HybridBuffers(prototype_buffer())
        initial = buffers.initial_stored_j
        apply_operations(buffers, operations)
        energy_in = buffers.energy_in_j()
        energy_out = buffers.energy_out_j()
        assert energy_out <= initial + energy_in + 1e-6
        assert buffers.total_stored_j <= initial + energy_in + 1e-6
        assert buffers.total_stored_j >= -1e-9

    @given(operations_strategy, dod_strategy, dod_strategy)
    @settings(max_examples=60, deadline=None)
    def test_soc_stays_within_dod_window(self, operations, battery_dod,
                                         sc_dod):
        """SoC never leaves [1 - DoD, 1] regardless of operation order."""
        buffers = HybridBuffers(prototype_buffer(),
                                battery_dod=battery_dod, sc_dod=sc_dod)
        apply_operations(buffers, operations)
        assert (1.0 - battery_dod) - 1e-9 <= buffers.battery.soc <= 1.0 + 1e-9
        assert (1.0 - sc_dod) - 1e-9 <= buffers.sc.soc <= 1.0 + 1e-9

    @given(operations_strategy)
    @settings(max_examples=40, deadline=None)
    def test_lifetime_report_is_sane(self, operations):
        buffers = HybridBuffers(prototype_buffer())
        apply_operations(buffers, operations)
        report = buffers.lifetime_report()
        assert report.estimated_lifetime_years >= 0.0
        assert report.equivalent_full_cycles >= 0.0

    @given(operations_strategy)
    @settings(max_examples=30, deadline=None)
    def test_battery_only_pool_has_no_sc(self, operations):
        """include_sc=False folds all capacity into the battery pool."""
        config = prototype_buffer()
        buffers = HybridBuffers(config, include_sc=False)
        assert buffers.sc is None
        assert buffers.battery.nominal_energy_j == pytest.approx(
            config.total_energy_j)
        with pytest.raises(SimulationError):
            buffers.discharge("sc", 10.0, 1.0)
        battery_only = [("battery", action, power)
                        for _, action, power in operations]
        apply_operations(buffers, battery_only)
        assert buffers.energy_out_j() <= (
            buffers.initial_stored_j + buffers.energy_in_j() + 1e-6)


engine_case_strategy = st.tuples(
    st.integers(min_value=0, max_value=2**31 - 1),   # trace seed
    st.integers(min_value=20, max_value=80),          # ticks
    st.floats(min_value=80.0, max_value=400.0),       # utility budget W
    st.sampled_from(["SCFirst", "BaFirst", "BaOnly"]))


def run_random_simulation(seed, num_ticks, budget_w, scheme):
    rng = np.random.default_rng(seed)
    cluster = ClusterConfig(utility_budget_w=budget_w)
    demands = rng.uniform(0.0, 150.0, size=(cluster.num_servers, num_ticks))
    trace = ClusterTrace(demands, 1.0)
    hybrid = prototype_buffer()
    policy = make_policy(scheme, hybrid=hybrid)
    buffers = HybridBuffers(hybrid, include_sc=scheme != "BaOnly")
    result = Simulation(trace, policy, buffers,
                        cluster_config=cluster).run()
    return result, float(demands.sum()) * trace.dt_s, cluster


class TestEngineTickProperties:
    @given(engine_case_strategy)
    @settings(max_examples=25, deadline=None)
    def test_energy_accounting_balances(self, case):
        """served + unserved == demand; the buffer contribution to served
        equals the device-side outflow after converter losses."""
        result, demand_j, cluster = run_random_simulation(*case)
        metrics = result.metrics
        total = metrics.served_energy_j + metrics.unserved_energy_j
        assert total == pytest.approx(demand_j, rel=1e-9, abs=1e-6)
        buffered = metrics.served_energy_j - metrics.utility_energy_j
        assert buffered == pytest.approx(
            metrics.buffer_energy_out_j * cluster.converter_efficiency,
            rel=1e-9, abs=1e-6)

    @given(engine_case_strategy)
    @settings(max_examples=25, deadline=None)
    def test_utility_never_exceeds_budget(self, case):
        result, _, cluster = run_random_simulation(*case)
        duration = result.metrics.duration_s
        cap = cluster.utility_budget_w * duration
        assert result.metrics.utility_energy_j <= cap + 1e-6

    @given(engine_case_strategy)
    @settings(max_examples=25, deadline=None)
    def test_metric_ranges(self, case):
        result, _, _ = run_random_simulation(*case)
        metrics = result.metrics
        assert metrics.server_downtime_s >= 0.0
        assert 0.0 <= metrics.downtime_fraction <= 1.0
        assert 0.0 <= metrics.energy_efficiency <= 1.0 + 1e-9
        assert metrics.buffer_energy_in_j >= 0.0
        assert metrics.buffer_energy_out_j >= 0.0
        assert 0.0 <= metrics.deficit_time_fraction <= 1.0
        assert metrics.battery_lifetime_years >= 0.0

    @given(engine_case_strategy)
    @settings(max_examples=15, deadline=None)
    def test_buffer_outflow_bounded_by_store(self, case):
        """Buffers cannot deliver more than they started with plus what
        the valleys recharged."""
        result, _, _ = run_random_simulation(*case)
        metrics = result.metrics
        initial = prototype_buffer().total_energy_j
        assert metrics.buffer_energy_out_j <= (
            initial + metrics.buffer_energy_in_j + 1e-6)
