"""Fixture: every violation here carries a matching noqa suppression."""


def day_seconds() -> float:
    return 24.0 * 3600.0  # repro: noqa[RPR102]


def week_seconds() -> float:
    return 7.0 * 86400.0  # repro: noqa


def total_j(power_w: float, energy_j: float) -> float:
    return power_w + energy_j  # repro: noqa[RPR101, RPR102]
