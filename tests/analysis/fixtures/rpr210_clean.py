"""RPR210 clean fixture: the clock exists but is not reachable."""

import time


def wall_clock():
    # Never called from a cache-feeding entry point.
    return time.time()


def execute_request(request):
    return float(request)
