"""RPR103 clean fixture: quantities carry their unit suffix."""

from typing import Sequence


def scale(power_w: float, factor: float) -> float:
    return power_w * factor


def peak_power_w(samples_w: Sequence[float]) -> float:
    return max(samples_w)


def _peak_power(samples_w: Sequence[float]) -> float:
    return max(samples_w)
