"""Failing fixture: batched twin methods drifted from their scalars."""


class Simulation:
    def __init__(self, config):
        self.config = config

    def run(self, ticks=100):
        return float(ticks)

    def step(self, dt, demand_w):
        return dt * demand_w


class BatchSimulation:
    def __init__(self, sims):
        self.sims = sims

    def run_all(self, ticks=50):
        return [float(ticks)]

    def step(self, dt):
        return [dt]
