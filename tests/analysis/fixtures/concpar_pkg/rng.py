"""Module RNG stream: shared-state defect surfaces two modules away."""

import random

_STREAM = random.Random(7)


def jitter(x):
    return x + _STREAM.random()
