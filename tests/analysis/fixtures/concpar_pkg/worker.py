"""Worker: mutates a module global, but only service.py makes it a worker."""

from .memo import coefficients
from .rng import jitter

_SEEN = {}


def process(item):
    record(item)
    return jitter(coefficients(item))


def record(item):
    _SEEN[item] = True
