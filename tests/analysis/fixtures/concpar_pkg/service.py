"""Pool boundary: the reachability fact every other finding depends on."""

from concurrent.futures import ProcessPoolExecutor

from .worker import process


def serve(items):
    with ProcessPoolExecutor() as pool:
        batch = list(pool.map(process, items))
        extra = pool.submit(lambda: 0.0)
    return batch, extra
