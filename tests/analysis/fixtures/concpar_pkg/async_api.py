"""Async facade: blocks the event loop with a synchronous sleep."""

import time


async def poll(interval_s):
    time.sleep(interval_s)
    return interval_s
