"""Adversarial concurrency-safety package (RPR7xx).

The process-pool boundary lives in ``service.py``; the defects it makes
reachable live in ``worker.py`` (global mutation), ``rng.py`` (shared
random stream), and ``memo.py`` (shared cache). ``async_api.py`` holds
the blocking-call-in-async defect. Linting any defect module alone must
not reproduce the pool-reachability findings.
"""
