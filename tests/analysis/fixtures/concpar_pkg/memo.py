"""Memoised helper: per-process caches diverge once workers call it."""

from functools import lru_cache


@lru_cache(maxsize=64)
def coefficients(x):
    return x ** 0.5
