"""RPR111 clean fixture: bindings agree with declared units."""


def stored_energy_j() -> float:
    return 4200.0


def peak_power_w(energy_j: float, dt_s: float) -> float:
    return energy_j / dt_s


def snapshot() -> float:
    total_j = stored_energy_j()
    return total_j
