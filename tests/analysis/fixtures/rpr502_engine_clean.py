"""RPR502 clean: NumPy reductions, or loops over non-batchable data."""
import numpy as np


def tick(num_servers: int) -> float:
    demands_w = np.zeros(num_servers)
    total = np.sum(demands_w)  # vectorized reduction
    worst = np.max(demands_w)
    settings = [1.0, 2.0, 3.0]
    calm = sum(settings)  # plain python list: no batch axis
    for value in settings:
        calm += value
    return float(total + worst) + calm
