"""RPR203 failing fixture: mutable defaults on public functions."""


def collect(values=[]):
    values.append(1)
    return values


def merge(*, overrides={}):
    return dict(overrides)
