"""Clean fixture: lane-leading writes address the lane axis."""

import numpy as np


class BatchThing:
    def __init__(self, n, num_servers):
        self.n = n
        self.state = np.zeros((n, num_servers))

    def poke(self, lane, sid):
        self.state[lane, sid] = 1.0
        self.state[:, sid] = 2.0
        mask = self.state[:, sid] > 0.5
        self.state[mask] = 3.0
