"""RPR210 failing fixture: clock and RNG reachable from the cache path.

The fixture lives outside the sim/core/storage/runner directories, so
the per-file RPR201 rule never looks at it; only reachability from
``execute_request`` exposes the impurity.
"""

import random
import time


def jitter():
    return random.random()


def current_timestamp():
    return time.time()


def execute_request(request):
    return current_timestamp() + jitter()
