"""Failing fixture: scalar twin members with no batched counterpart."""


class Simulation:
    def __init__(self, config):
        self.config = config

    def run(self):
        return 1.0

    def snapshot_state(self):
        return {}

    def total_energy_j(self):
        return 0.0


class BatchSimulation:
    def __init__(self, sims):
        self.sims = sims

    def run_all(self):
        return [1.0]
