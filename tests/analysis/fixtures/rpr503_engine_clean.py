"""RPR503 clean: batchable values stay arrays; scalars come from
non-batchable data."""
import numpy as np


def report(num_servers: int, width: int) -> np.ndarray:
    values_w = np.zeros((num_servers, 4))
    per_server = values_w.sum(axis=-1)  # stays an array
    table = np.zeros(width)
    floor = float(np.min(table))  # non-batchable reduction is fine
    return per_server + floor
