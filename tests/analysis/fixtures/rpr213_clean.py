"""RPR213 clean fixture: constants and per-call containers only."""

_LIMITS = (1, 2, 3)


def tally(values):
    counts = {}
    counts["total"] = sum(values)
    return counts


def execute_request(request):
    return tally([*request, _LIMITS[0]])
