"""RPR101 clean fixture: conversions happen before addition."""


def total_j(power_w: float, dt_s: float, energy_j: float) -> float:
    return power_w * dt_s + energy_j


def drain(reserve_j: float, draw_w: float, dt_s: float) -> float:
    reserve_j -= draw_w * dt_s
    return reserve_j
