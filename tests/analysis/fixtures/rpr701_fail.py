"""Failing fixture: unpicklable callables crossing the pool boundary."""

from concurrent.futures import ProcessPoolExecutor


def scale(items):
    def helper(x):
        return x * 2.0

    results = []
    with ProcessPoolExecutor() as pool:
        results.extend(pool.map(lambda x: x + 1.0, items))
        results.extend(pool.map(helper, items))
    return results
