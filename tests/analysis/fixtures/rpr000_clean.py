"""RPR000 clean fixture: a perfectly ordinary module."""


def fine() -> None:
    return None
