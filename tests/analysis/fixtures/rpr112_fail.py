"""RPR112 failing fixture: converting values already in the output unit."""

from repro.units import joules_to_wh, wh_to_joules


def round_trip_j(stored_j: float) -> float:
    return wh_to_joules(stored_j)


def round_trip_wh(stored_wh: float) -> float:
    return joules_to_wh(stored_wh)
