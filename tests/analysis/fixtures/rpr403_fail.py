"""RPR403: mutation of arrays aliased into cached state, no invalidation."""
import numpy as np


class Memo:
    def __init__(self, width: int) -> None:
        self._memo = np.zeros(width)

    def smudge(self, k: int) -> None:
        view = self._memo
        view[k] = 1.0  # mutates the memo through an alias

    def drift(self) -> None:
        aliased = self._memo
        aliased += 1.0  # augmented assignment through an alias

    def double(self) -> None:
        np.multiply(self._memo, 2.0, out=self._memo)  # out= into the memo
