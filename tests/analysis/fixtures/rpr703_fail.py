"""Failing fixture: module RNG/cache state shared across pool workers."""

import random
from concurrent.futures import ProcessPoolExecutor
from functools import lru_cache

_RNG = random.Random(1234)


@lru_cache(maxsize=None)
def expensive(x):
    return x ** 2


def draw(x):
    return _RNG.random() + expensive(x)


def fan_out(items):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(draw, items))
