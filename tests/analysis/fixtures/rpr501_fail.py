"""RPR501: hardcoded axis/index on a batchable per-server array."""
import numpy as np


def axis_zero(num_servers: int) -> np.ndarray:
    demands_w = np.zeros((num_servers, 16))
    return demands_w.sum(axis=0)  # axis 0 is the server axis today


def head(num_servers: int) -> float:
    draws_w = np.ones(num_servers)
    return draws_w[0]  # literal leading index
