"""RPR103 failing fixture: public signatures dropping the unit."""

from typing import Sequence


def scale(power: float, factor: float) -> float:
    return power * factor


def peak_power(samples_w: Sequence[float]) -> float:
    return max(samples_w)
