"""RPR201 clean fixture: explicitly seeded generators are reproducible."""

import random

import numpy as np


def noise(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.standard_normal())


def shuffle(seed: int, items: list) -> list:
    rng = random.Random(seed)
    rng.shuffle(items)
    return items
