"""RPR203 clean fixture: None defaults, immutable defaults, private fn."""


def collect(values=None):
    if values is None:
        values = []
    values.append(1)
    return values


def merge(*, overrides=None, order=("a", "b")):
    return dict(overrides or {}), order


def _scratch(buffer=[]):
    # Private helpers are the author's own problem.
    return buffer
