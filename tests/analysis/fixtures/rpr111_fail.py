"""RPR111 failing fixture: bindings contradict declared name units."""


def stored_energy_j() -> float:
    return 4200.0


def peak_power_w() -> float:
    return stored_energy_j()


def snapshot() -> float:
    total_w = stored_energy_j()
    return total_w
