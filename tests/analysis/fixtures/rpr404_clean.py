"""RPR404 clean: full coverage before any read."""
import numpy as np


def loop_filled(width: int) -> np.ndarray:
    out = np.empty(width)
    for i in range(width):
        out[i] = float(i)  # counted-loop store covers the buffer
    return out


def slice_filled(width: int) -> np.ndarray:
    out = np.empty(width)
    out[:] = 3.0  # full-slice store
    return out


def filled(width: int) -> np.ndarray:
    out = np.empty(width)
    out.fill(0.0)
    return out


def zero_length() -> np.ndarray:
    return np.empty(0)  # nothing to initialize
