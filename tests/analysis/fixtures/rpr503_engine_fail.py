"""RPR503: scalarization of batchable intermediates in a hot module."""
import numpy as np


def report(num_servers: int) -> float:
    values_w = np.zeros((num_servers, 4))
    per_server = values_w.sum(axis=-1)  # still batchable: rank-1 per-server
    peak = float(np.max(per_server))  # float() of a reduction
    mean = per_server.mean().item()  # .item() of a method reduction
    head = float(per_server)  # float() of the whole array
    return peak + mean + head
