"""RPR302 failing fixture: raises outside the ReproError contract."""


class CustomError(RuntimeError):
    pass


def explode() -> None:
    raise RuntimeError("boom")


def explode_custom() -> None:
    raise CustomError("still boom")
