"""Clean fixture: async bodies await instead of blocking."""

import asyncio


async def refresh(payload):
    await asyncio.sleep(0.5)
    return payload


def blocking_is_fine_outside_async(path):
    with open(path) as handle:
        return handle.read()
