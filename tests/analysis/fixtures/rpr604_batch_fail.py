"""Failing fixture: shared scalar state + lane-axis fold mid-run."""

import numpy as np


class BatchAccum:
    def __init__(self, n, num_servers):
        self.n = n
        self.energy_j = np.zeros((n, num_servers))
        self.last_total = 0.0

    def advance(self):
        for lane in range(self.n):
            self.last_total = float(self.energy_j[lane, 0])
        return self.last_total

    def cross_lane_total(self):
        return self.energy_j.sum(axis=0)
