"""RPR104 failing fixture: exact float equality on power/energy values."""


def peaks_match(left_w: float, right_w: float) -> bool:
    return left_w == right_w


def energy_differs(stored_j: float, target_j: float) -> bool:
    return stored_j != target_j
