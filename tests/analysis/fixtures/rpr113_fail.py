"""RPR113 failing fixture: additive mixes only dataflow can see.

``limit_w - battery_reserve()`` hides the joules behind a call; RPR101
never sees a suffix on the right operand.  ``stored_wh + losses_j``
shares a dimension (energy) but not a scale, which RPR101's
dimension-only check cannot distinguish.
"""


def battery_reserve() -> float:
    reserve_j = 500.0
    return reserve_j


def headroom(limit_w: float) -> float:
    return limit_w - battery_reserve()


def combined_store(stored_wh: float, losses_j: float) -> float:
    return stored_wh + losses_j
