"""Scalar engine: defines the signatures the batch twin drifts from."""


class Simulation:
    def __init__(self, cluster):
        self.cluster = cluster

    def run(self, ticks=100):
        total = 0.0
        for _ in range(ticks):
            total += self.cluster.tick(1.0, 50.0)
        return total

    def step(self, dt, demand_w):
        return self.cluster.tick(dt, demand_w)
