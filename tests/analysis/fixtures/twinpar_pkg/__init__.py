"""Adversarial twin-parity / lane-isolation package (RPR6xx).

Every defect is born in a different module than the one the finding
lands in: the scalar classes (``cluster``, ``engine``) define the
members and signatures the batch modules drift from, and the lane-axis
facts the misuse modules violate are inferred from ``alloc_batch``'s
return shape.
"""
