"""Batch engine twin: ``step`` silently dropped the demand parameter."""


class BatchSimulation:
    def __init__(self, sims):
        self.sims = sims

    def run_all(self, ticks=100):
        return [sim.run(ticks) for sim in self.sims]

    def step(self, dt):
        return [sim.step(dt, 0.0) for sim in self.sims]
