"""Mid-run lane fold: the array's lane-ness arrives via the call site."""

import numpy as np


def mid_run_fold(state):
    return np.count_nonzero(state, axis=0)
