"""Lane-array factory: the (n, num_servers) shape fact is born here."""

import numpy as np


def make_state(n, num_servers):
    return np.zeros((n, num_servers))
