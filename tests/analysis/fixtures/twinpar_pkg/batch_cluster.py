"""Batch cluster twin: deliberately missing a method and a constant.

The findings anchor here, but the contract they enforce lives in
``cluster.py`` — linting this module alone proves nothing.
"""

import numpy as np


class BatchCluster:
    def __init__(self, n, num_servers):
        self.n = n
        self.num_servers = num_servers
        self.queue_depth = np.zeros(n)

    def tick(self, dt, demand_w):
        return demand_w * dt
