"""Scalar cluster: the twin contract the batch module must mirror."""


class ServerCluster:
    IDLE_FRACTION = 0.05

    def __init__(self, num_servers):
        self.num_servers = num_servers
        self.queue_depth = 0

    def tick(self, dt, demand_w):
        return demand_w * dt

    def drain_queue(self):
        self.queue_depth = 0
