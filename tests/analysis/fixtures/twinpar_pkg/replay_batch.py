"""Per-lane replay: misuses the lane array allocated in alloc_batch."""

from .alloc_batch import make_state
from .fold_batch import mid_run_fold


class BatchReplay:
    def __init__(self, n, num_servers):
        self.n = n
        self.state = make_state(n, num_servers)
        self.peak_w = 0.0

    def clobber(self, sid):
        self.state[sid] = 1.0

    def replay(self):
        for lane in range(self.n):
            self.peak_w = float(self.state[lane, 0])
        return mid_run_fold(self.state)
