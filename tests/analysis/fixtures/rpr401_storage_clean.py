"""RPR401 clean: float64 end to end (storage scope)."""
import numpy as np


def uniform_arithmetic(width: int):
    a = np.zeros(width, dtype=np.float64)
    b = np.ones(width, dtype=np.float64)
    return a + b


def widened(values: np.ndarray):
    narrow = np.asarray(values, dtype=np.float32)
    return narrow.astype(np.float64)  # widening is fine
