"""RPR102 clean fixture: a module *named* units.py may define these."""

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
HOURS_PER_YEAR = 8760.0
