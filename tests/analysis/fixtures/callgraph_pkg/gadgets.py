"""Classes: self-dispatch, inheritance, static/class methods, overrides."""


class Gadget:
    def __init__(self, gain):
        self.gain = gain

    def run(self, value):
        return self.step(self.prepare(value))

    def prepare(self, value):
        return self.clamp(value)

    def step(self, value):
        return value * self.gain

    @staticmethod
    def clamp(value):
        return max(0.0, value)

    @classmethod
    def default(cls):
        return cls(1.0)


class TurboGadget(Gadget):
    def step(self, value):
        return super().step(value) * 2.0
