"""Mutual recursion plus self-recursion: reachability must terminate."""


def ping(n):
    if n <= 0:
        return 0
    return pong(n - 1)


def pong(n):
    if n <= 0:
        return 1
    return ping(n - 1)


def spin(n):
    if n:
        return spin(n - 1)
    return 0
