"""Adversarial call-graph fixture: every shape the resolver claims."""
