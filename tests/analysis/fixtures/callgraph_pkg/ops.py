"""Leaf helpers reached through several import styles."""


def scale(value, factor):
    return value * factor


def offset(value, delta):
    return value + delta


def traced(func):
    def wrapper(*args, **kwargs):
        return func(*args, **kwargs)
    return wrapper


@traced
def doubled(value):
    return scale(value, 2.0)
