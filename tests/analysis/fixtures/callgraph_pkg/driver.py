"""Star imports, aliased imports, ``functools.partial``, instances."""

import functools

from .cycle import ping
from .gadgets import *
from .ops import doubled, scale as rescale


def launch(value):
    gadget = Gadget(2.0)
    boosted = gadget.run(value)
    return rescale(boosted, ping(3))


def schedule(values):
    apply_default = functools.partial(rescale, factor=2.0)
    return [apply_default(doubled(v)) for v in values]


def fleet():
    turbo = TurboGadget(3.0)
    return turbo.step(1.0)
