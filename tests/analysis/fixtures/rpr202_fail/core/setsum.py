"""RPR202 failing fixture: set iteration feeding accumulation."""

from typing import Iterable, Set


def accumulate(values_w: Iterable[float]) -> float:
    total_w = 0.0
    for value_w in set(values_w):
        total_w += value_w
    return total_w


def fast_total(values_w: Set[float]) -> float:
    return sum({round(v, 3) for v in values_w})
