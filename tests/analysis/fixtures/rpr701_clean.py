"""Clean fixture: only module-level callables cross the pool boundary."""

from concurrent.futures import ProcessPoolExecutor


def double(x):
    return x * 2.0


def scale(items):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(double, list(items)))
