"""RPR211 clean fixture: ambient reads stay off the cache path."""

import os


def debug_banner():
    # Only called by tooling, never by execute_request.
    return os.getenv("HOSTNAME", "unknown")


def execute_request(request):
    return request.payload
