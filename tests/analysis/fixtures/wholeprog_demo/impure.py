"""Impurities that only matter because service.py makes them reachable.

This module sits outside the sim/storage/core directories, so the
per-file determinism rules never inspect it.
"""

import os
import time

_CALLS = 0
_LOG = {}


def stamp():
    # BUG(RPR210): wall-clock read on the cached request path.
    return time.time()


def audit_environment():
    # BUG(RPR211): environment read feeding a cacheable result.
    return os.getenv("DEMO_TUNING", "off")


def mix_readings(readings):
    total = 0.0
    # BUG(RPR212): set iteration order is arbitrary across runs.
    for value in set(readings):
        total += value
    return total


def note_request():
    # BUG(RPR213): mutable module-global writes on the request path.
    global _CALLS
    _CALLS += 1
    _LOG["count"] = _CALLS
