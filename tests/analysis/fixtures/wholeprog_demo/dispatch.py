"""Cross-module unit bugs: the units are inferred in other files."""

from repro.units import wh_to_joules

from .loads import draw
from .reserves import headroom, stored_energy_j


def plan_discharge(cells):
    # BUG(RPR110): stored_energy_j() returns joules; draw() wants watts.
    return draw(stored_energy_j(cells), 10.0)


def peak_power_w(cells):
    # BUG(RPR111): a _w-suffixed function returning joules.
    return stored_energy_j(cells)


def total_joules(cells):
    # BUG(RPR112): the argument is already in joules, not watt-hours.
    return wh_to_joules(stored_energy_j(cells))


def combined_budget(cells):
    # BUG(RPR113): adds the Wh headroom to a J quantity; neither operand
    # carries a suffix here, so the per-file RPR101 rule cannot fire.
    return headroom() + stored_energy_j(cells)
