"""Consumers with unit-suffixed signatures."""


def draw(power_w, dt_s):
    return power_w * dt_s
