"""Seeded cross-module bugs only the whole-program passes can see.

Every defect here spans a module boundary (a unit inferred in one file,
misused in another; an impurity reachable only through the request entry
point in a different file), so the per-file RPR1xx/RPR2xx rules are
structurally unable to report any of them.
"""
