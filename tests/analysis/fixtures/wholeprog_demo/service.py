"""The cache-feeding entry point; itself spotless, per-file."""

from .impure import audit_environment, mix_readings, note_request, stamp


def execute_request(readings):
    note_request()
    audit_environment()
    return mix_readings(readings) + stamp()
