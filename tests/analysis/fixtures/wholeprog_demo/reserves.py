"""Energy bookkeeping helpers the bug modules lean on."""

JOULES_PER_CELL = 5400.0


def stored_energy_j(cells):
    return JOULES_PER_CELL * cells


def headroom():
    """Watt-hour budget left in the rack (deliberately unsuffixed)."""
    budget_wh = 250.0
    return budget_wh
