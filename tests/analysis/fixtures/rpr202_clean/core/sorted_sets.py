"""RPR202 clean fixture: sets are sorted before any accumulation."""

from typing import Iterable, Set


def accumulate(values_w: Iterable[float]) -> float:
    total_w = 0.0
    for value_w in sorted(set(values_w)):
        total_w += value_w
    return total_w


def fast_total(values_w: Set[float]) -> float:
    return sum(sorted(values_w))


def membership(values_w: Set[float], needle_w: float) -> bool:
    return needle_w in values_w
