"""RPR302 clean fixture: ReproError subclasses and sanctioned builtins."""

from repro.errors import ConfigurationError, TraceError


def check(flag: bool) -> None:
    if flag:
        raise ConfigurationError("bad flag")
    raise ValueError("bad value")


def relay() -> None:
    try:
        check(True)
    except TraceError:
        raise


def forward(error: Exception) -> None:
    raise error
