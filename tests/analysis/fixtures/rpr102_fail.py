"""RPR102 failing fixture: re-derived time-conversion constants."""

HOURS_IN_A_YEAR = 8760


def day_seconds() -> float:
    return 24.0 * 3600.0


def week_seconds() -> float:
    return 7.0 * 86400.0
