"""Clean fixture: per-task RNG seeding; no module-shared streams."""

import random
from concurrent.futures import ProcessPoolExecutor

_RNG = random.Random(1234)


def draw(seed):
    rng = random.Random(seed)
    return rng.random()


def fan_out(seeds):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(draw, seeds))


def parent_only_draw():
    # Fine: drawn in the parent process, never worker-reachable.
    return _RNG.random()
