"""Failing fixture: worker-reachable functions writing module globals."""

from concurrent.futures import ProcessPoolExecutor

_RESULTS = {}
_MODE = "idle"


def worker(x):
    global _MODE
    _MODE = "busy"
    _RESULTS[x] = x * 2.0
    return x


def fan_out(items):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(worker, items))
