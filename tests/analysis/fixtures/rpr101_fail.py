"""RPR101 failing fixture: additive arithmetic across unit dimensions."""


def total_j(power_w: float, energy_j: float) -> float:
    return power_w + energy_j


def drain(reserve_j: float, draw_w: float) -> float:
    reserve_j -= draw_w
    return reserve_j
