"""RPR000 failing fixture: this file does not parse."""


def broken(:
    return None
