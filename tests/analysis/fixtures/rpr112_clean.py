"""RPR112 clean fixture: conversions applied to the unit they expect."""

from repro.units import joules_to_wh, wh_to_joules


def as_joules(stored_wh: float) -> float:
    return wh_to_joules(stored_wh)


def as_watt_hours(stored_j: float) -> float:
    return joules_to_wh(stored_j)
