"""RPR110 clean fixture: arguments match the units parameters declare."""


def drain(power_w: float) -> float:
    return power_w * 0.5


def stored_w() -> float:
    demand_w = 42.0
    return demand_w


def tick() -> float:
    reserve = stored_w()
    return drain(reserve) + drain(power_w=reserve)
