"""RPR113 clean fixture: additive arithmetic on matching units."""


def battery_reserve_j() -> float:
    return 500.0


def total_j(stored_j: float) -> float:
    return stored_j + battery_reserve_j()
