"""RPR211 failing fixture: environment reads on the cache path."""

import os


def host_label():
    return os.getenv("HOSTNAME", "unknown")


def default_worker_count():
    return os.cpu_count()


def execute_request(request):
    return (host_label(), default_worker_count())
