"""RPR104 clean fixture: tolerant comparison and non-quantity equality."""

import math


def peaks_match(left_w: float, right_w: float) -> bool:
    return math.isclose(left_w, right_w, rel_tol=1e-9)


def counts_match(left: int, right: int) -> bool:
    return left == right
