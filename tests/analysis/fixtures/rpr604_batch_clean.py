"""Clean fixture: per-lane state stays per-lane; folds in finalization."""

import numpy as np


class BatchAccum:
    def __init__(self, n, num_servers):
        self.n = n
        self.energy_j = np.zeros((n, num_servers))
        self.last_total = 0.0

    def advance(self):
        totals = np.zeros(self.n)
        for lane in range(self.n):
            totals[lane] = float(self.energy_j[lane, 0])
        self.last_total = float(totals[-1])
        return totals

    def per_lane_total(self):
        return self.energy_j.sum(axis=1)

    def write_back(self):
        return self.energy_j.sum(axis=0)
