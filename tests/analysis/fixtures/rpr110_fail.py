"""RPR110 failing fixture: joules flow into a watts parameter.

No single expression here mixes units — only interprocedural dataflow
(the inferred return unit of ``stored``) exposes the bug, so per-file
RPR101 stays silent.
"""


def drain(power_w: float) -> float:
    return power_w * 0.5


def stored() -> float:
    energy_j = 42.0
    return energy_j


def tick() -> float:
    reserve = stored()
    return drain(reserve) + drain(power_w=reserve)
