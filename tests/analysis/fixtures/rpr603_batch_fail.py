"""Failing fixture: lane-leading arrays written without the lane axis."""

import numpy as np


class BatchThing:
    def __init__(self, n, num_servers):
        self.n = n
        self.state = np.zeros((n, num_servers))

    def poke(self, sid):
        self.state[0] = 1.0
        self.state[sid] = 2.0
