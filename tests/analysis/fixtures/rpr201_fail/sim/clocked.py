"""RPR201 failing fixture: ambient state inside a deterministic package."""

import random
import time

import numpy as np
from time import time as now


def stamp() -> float:
    return time.time()


def stamp_imported() -> float:
    return now()


def noise() -> float:
    return float(np.random.rand()) + random.random()
