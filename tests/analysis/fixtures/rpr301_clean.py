"""RPR301 clean fixture: narrow handlers, or broad ones that re-raise."""

from typing import Callable, Optional

from repro.errors import TraceError


def load(parser: Callable[[], float]) -> Optional[float]:
    try:
        return parser()
    except TraceError:
        return None


def relay(parser: Callable[[], float]) -> float:
    try:
        return parser()
    except Exception:
        raise
