"""RPR402: statically incompatible broadcast shapes."""
import numpy as np


def literal_conflict():
    four_wide = np.zeros((4, 3))
    five_wide = np.ones((5, 3))
    return four_wide + five_wide  # 4 vs 5 on the same axis


def symbolic_conflict(num_servers: int, num_outlets: int):
    per_server = np.zeros(num_servers)
    per_outlet = np.zeros(num_outlets)
    return np.add(per_server, per_outlet)  # num_servers vs num_outlets
