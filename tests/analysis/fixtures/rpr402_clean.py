"""RPR402 clean: compatible or unprovable broadcasts."""
import numpy as np


def same_shape(num_servers: int):
    a = np.zeros(num_servers)
    b = np.ones(num_servers)
    return a + b


def broadcasting_one(num_servers: int):
    rows = np.zeros((num_servers, 3))
    scale = np.ones((1, 3))
    return np.add(rows, scale)  # dim 1 broadcasts


def symbolic_vs_literal(num_servers: int):
    a = np.zeros(num_servers)
    b = np.ones(8)
    return a + b  # unprovable: symbolic against literal passes
