"""Clean fixture: workers return values instead of mutating globals."""

from concurrent.futures import ProcessPoolExecutor


def worker(x):
    return x * 2.0


def fan_out(items):
    with ProcessPoolExecutor() as pool:
        return dict(zip(items, pool.map(worker, items)))
