"""RPR502: Python-level loops over a batchable axis in a hot module."""
import numpy as np


def tick(num_servers: int) -> float:
    demands_w = np.zeros(num_servers)
    total = 0.0
    for draw in demands_w:  # for loop over the server axis
        total += draw
    total += sum(demands_w.tolist())  # builtin sum over the server axis
    worst = max(demands_w)  # builtin max over the server axis
    return total + worst
