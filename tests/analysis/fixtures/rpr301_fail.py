"""RPR301 failing fixture: broad handlers swallowing failures."""

from typing import Callable, Optional


def load(parser: Callable[[], float]) -> Optional[float]:
    try:
        return parser()
    except Exception:
        return None


def load_quiet(parser: Callable[[], float]) -> Optional[float]:
    try:
        return parser()
    except:  # noqa: E722 (this is the point of the fixture)
        return None
