"""RPR401: dtype narrowing / mixed float arithmetic (storage scope)."""
import numpy as np


def mixed_arithmetic(width: int):
    narrow = np.zeros(width, dtype=np.float32)
    wide = np.ones(width, dtype=np.float64)
    return narrow + wide  # mixed float32/float64 arithmetic


def narrowed(values: np.ndarray):
    wide = np.asarray(values, dtype=np.float64)
    return wide.astype(np.float32)  # float64 -> float32 narrowing
