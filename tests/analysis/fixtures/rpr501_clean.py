"""RPR501 clean: end-relative axes, or non-batchable arrays."""
import numpy as np


def axis_from_end(num_servers: int) -> np.ndarray:
    demands_w = np.zeros((num_servers, 16))
    return demands_w.sum(axis=-2)  # survives a leading batch axis


def tail(num_servers: int) -> float:
    draws_w = np.ones(num_servers)
    return draws_w[-1]  # negative indices count from the end


def plain_axis_zero(width: int) -> np.ndarray:
    table = np.zeros((width, 16))
    return table.sum(axis=0)  # not a batchable array
