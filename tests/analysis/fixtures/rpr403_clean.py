"""RPR403 clean: fresh copies, or mutation with version invalidation."""
import numpy as np


class Memo:
    def __init__(self, width: int) -> None:
        self._memo = np.zeros(width)
        self._version = 0

    def scaled(self, k: int) -> np.ndarray:
        fresh = self._memo.copy()  # provably fresh: its own name
        fresh[k] = 0.0
        return fresh

    def rebuild(self, k: int) -> None:
        staged = self._memo
        staged[k] = 1.0  # allowed: the version counter is bumped
        self._version += 1
