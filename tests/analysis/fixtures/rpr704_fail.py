"""Failing fixture: blocking calls inside an ``async def`` body."""

import time
from pathlib import Path


async def refresh(path):
    time.sleep(0.5)
    data = open(path).read()
    text = Path(path).read_text()
    return data + text
