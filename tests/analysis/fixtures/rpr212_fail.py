"""RPR212 failing fixture: unordered-set iteration on the cache path."""


def total(values):
    acc = 0.0
    for value in {1.0, 2.0, 3.0}:
        acc += value
    return acc


def checksum(values):
    return sum(set(values))


def execute_request(request):
    return total(request) + checksum(request)
