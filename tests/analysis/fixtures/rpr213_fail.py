"""RPR213 failing fixture: module-global writes on the cache path."""

_MEMO = {}
_RUN_COUNT = 0


def record(key, value):
    _MEMO[key] = value


def bump():
    global _RUN_COUNT
    _RUN_COUNT = _RUN_COUNT + 1


def execute_request(request):
    bump()
    record(request, 1)
    return _RUN_COUNT
