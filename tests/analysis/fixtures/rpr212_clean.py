"""RPR212 clean fixture: sets are sorted before iteration."""


def total(values):
    acc = 0.0
    for value in sorted(set(values)):
        acc += value
    return acc


def execute_request(request):
    return total(request)
