"""RPR404: np.empty read before every element is assigned."""
import numpy as np


def read_uninitialized(width: int) -> float:
    buf = np.empty(width)
    return float(buf[0])  # no element was ever assigned


def partial_fill(width: int) -> np.ndarray:
    data = np.empty(width)
    data[0] = 1.0  # only element 0 is assigned
    return data
