"""Adversarial package for the array-semantics pass (RPR4xx/RPR5xx).

Every defect in this package spans a module boundary: shapes, dtypes,
uninitialized buffers, aliasing taint, and batchable flags all have to
flow through helper returns, parameter bindings, or class attributes
before the misuse site becomes visible.  ``test_arraysem.py`` asserts
the exact finding set — and that linting each module alone reports
nothing, proving the findings are genuinely interprocedural.
"""
