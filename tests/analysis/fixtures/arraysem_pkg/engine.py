"""Hot-path consumer: batch-axis defects on arrays built elsewhere.

The batchable flag travels from ``server_pool`` through return values;
linting this file alone sees plain unknown locals and stays silent.
"""
import numpy as np

from .server_pool import cluster_demands, demand_grid


def tick(num_servers: int, width: int) -> float:
    demands_w = cluster_demands(num_servers)
    grid = demand_grid(num_servers, width)
    head = float(grid[0, 0])  # RPR501: literal index on the server axis
    totals = grid.sum(axis=0)  # RPR501: hardcoded axis=0
    total = 0.0
    for draw in demands_w:  # RPR502: Python loop over the server axis
        total += draw
    peak = float(np.max(demands_w))  # RPR503: scalarized reduction
    return head + total + peak + float(np.sum(totals))


def tick_clean(num_servers: int, width: int) -> np.ndarray:
    demands_w = cluster_demands(num_servers)
    grid = demand_grid(num_servers, width)
    tail = grid[-1]  # counted from the end: batch-safe
    totals = grid.sum(axis=-1)  # server axis kept
    scaled = demands_w * 2.0
    return totals + scaled + tail
