"""Array factories: every defect consumer imports its arrays from here.

This module is deliberately free of scope tokens (not a sim/storage/
faults module, not an engine/scheduler hot path) so nothing in it is
flagged directly — the facts it creates only matter downstream.
"""
import numpy as np


def half_precision(count: int) -> np.ndarray:
    """A float32 buffer; the narrowing only bites when mixed later."""
    return np.zeros(count, dtype=np.float32)


def fresh_slots(width: int) -> np.ndarray:
    """Uninitialized storage; callers must fill before reading."""
    return np.empty(width)


def per_server_demands(num_servers: int) -> np.ndarray:
    """Batchable: leading dim is the server axis."""
    return np.zeros(num_servers)


def per_outlet_draws(num_outlets: int) -> np.ndarray:
    """A different symbolic leading dim than the server axis."""
    return np.zeros(num_outlets)
