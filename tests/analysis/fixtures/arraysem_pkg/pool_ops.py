"""Consumers of ``RingCache`` views: aliased-mutation defects.

The failing functions mutate cache storage obtained through
``RingCache.window()`` without any invalidation evidence; the clean
ones either bump the version counter or copy first.
"""
import numpy as np

from .cache_ring import RingCache


def smooth(cache: RingCache) -> None:
    window = cache.window()
    window[0] = 0.0  # RPR403: writes cache storage through an alias


def double(cache: RingCache) -> None:
    view = cache.window()
    np.multiply(view, 2.0, out=view)  # RPR403: out= into cache storage


def rewrite(cache: RingCache) -> None:
    view = cache.window()
    view[:] = 0.0
    cache.invalidate()  # version bump: the mutation is accounted for


def snapshot(cache: RingCache) -> np.ndarray:
    private = cache.window().copy()
    private[0] = 1.0  # a fresh copy carries no aliasing taint
    return private
