"""Storage-scope consumers: dtype, broadcast, and uninit defects.

All three failing functions depend on facts created in ``makers``:
linting this file alone reports nothing.
"""
import numpy as np

from .makers import (
    fresh_slots,
    half_precision,
    per_outlet_draws,
    per_server_demands,
)


def blend(count: int) -> np.ndarray:
    narrow = half_precision(count)
    wide = np.zeros(count)
    return narrow + wide  # RPR401: cross-module float32 meets float64


def misaligned(num_servers: int, num_outlets: int) -> np.ndarray:
    demands = per_server_demands(num_servers)
    draws = per_outlet_draws(num_outlets)
    # RPR402: symbolic leading dims num_servers vs num_outlets conflict.
    return np.add(demands, draws)


def first_slot(width: int) -> float:
    slots = fresh_slots(width)
    return float(slots[0])  # RPR404: np.empty read through a helper


def blend_clean(count: int) -> np.ndarray:
    widened = half_precision(count).astype(np.float64)
    return widened + np.zeros(count)


def aligned(num_servers: int) -> np.ndarray:
    left = per_server_demands(num_servers)
    right = per_server_demands(num_servers)
    return np.add(left, right)  # same symbolic dim: compatible


def filled_slot(width: int) -> float:
    slots = fresh_slots(width)
    slots[:] = 0.0  # full-slice store initializes everything
    return float(slots[0])
