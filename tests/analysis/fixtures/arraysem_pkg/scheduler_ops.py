"""Second hot module: scalarization through builtin reducers."""
from .server_pool import cluster_demands


def plan(num_servers: int) -> float:
    demands_w = cluster_demands(num_servers)
    budget = sum(demands_w.tolist())  # RPR502: builtin sum over servers
    worst = demands_w.max().item()  # RPR503: .item() on a reduction
    return budget + worst


def plan_clean(num_servers: int) -> float:
    import numpy as np
    demands_w = cluster_demands(num_servers)
    settings = [0.5, 1.5]
    calm = sum(settings) + max(settings)  # plain list: no batch axis
    return calm + float(np.asarray(demands_w).size)
