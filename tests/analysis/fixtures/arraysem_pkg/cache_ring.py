"""A memoized ring buffer whose accessor returns the cached array.

The aliasing taint (``RingCache._ring``) is born here; the misuses
live in ``pool_ops`` — the view crosses a module boundary through a
method return before anyone mutates it.
"""
import numpy as np


class RingCache:
    def __init__(self, width: int) -> None:
        self._ring = np.zeros(width)
        self._version = 0

    def window(self) -> np.ndarray:
        """Zero-copy access: the caller holds cache storage."""
        return self._ring

    def invalidate(self) -> None:
        self._version += 1
