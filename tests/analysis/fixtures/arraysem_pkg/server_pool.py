"""Server-scope factories: the batchable facts the hot modules consume."""
import numpy as np


def cluster_demands(num_servers: int) -> np.ndarray:
    """Rank-1 over the server axis: batchable."""
    return np.zeros(num_servers)


def demand_grid(num_servers: int, width: int) -> np.ndarray:
    """(servers, window) grid: leading axis is the server axis."""
    return np.zeros((num_servers, width))
