"""Acceptance tests for twin-parity and lane-isolation (RPR601-RPR604).

``twinpar_pkg`` plants six defects that each straddle a module
boundary: the scalar contract a batch twin violates lives in
``cluster.py``/``engine.py`` while the findings anchor in the batch
modules, and the lane-leading shape the misuse modules violate is born
in ``alloc_batch.make_state`` and travels through a return value, an
attribute, and a call-site parameter binding before being abused.  The
tests pin the exact finding set, prove the cross-module findings
vanish when modules lint alone, and cover the incremental-cache
contract for the new families.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
PKG = FIXTURES / "twinpar_pkg"

TWIN_FAMILIES = ["RPR6"]

#: rule id -> sorted (file basename, line) the package must produce —
#: exactly these, nothing else.
EXPECTED = {
    # deliberately removed BatchCluster method + unreferenced constant
    "RPR601": [("batch_cluster.py", 10), ("batch_cluster.py", 10)],
    # BatchSimulation.step dropped the scalar demand_w parameter
    "RPR602": [("engine_batch.py", 11)],
    # deliberately lane-coupled write: lane axis indexed with a server id
    "RPR603": [("replay_batch.py", 14)],
    # shared scalar in a per-lane loop + lane-axis fold outside write_back
    "RPR604": [("fold_batch.py", 7), ("replay_batch.py", 18)],
}


def _pkg_files():
    return sorted(str(p) for p in PKG.glob("*.py"))


@pytest.fixture(scope="module")
def report():
    return lint_paths(_pkg_files(), select=TWIN_FAMILIES)


def test_package_yields_the_exact_finding_set(report):
    got: dict = {}
    for finding in report.findings:
        got.setdefault(finding.rule_id, []).append(
            (Path(finding.path).name, finding.line))
    assert {k: sorted(v) for k, v in got.items()} == EXPECTED


def test_every_twin_rule_fires_in_the_package(report):
    assert {f.rule_id for f in report.findings} == set(EXPECTED)


def test_findings_carry_positions_and_messages(report):
    for finding in report.findings:
        assert finding.line >= 1 and finding.col >= 1
        assert finding.message


def test_parity_findings_anchor_in_the_batch_modules(report):
    """The defect is *born* in the scalar modules (a method and a
    constant exist there; a parameter is declared there) but must be
    *reported* where the fix belongs: the batch twin."""
    parity = [f for f in report.findings if f.rule_id in ("RPR601",
                                                          "RPR602")]
    assert parity
    for finding in parity:
        assert Path(finding.path).name in ("batch_cluster.py",
                                           "engine_batch.py")
        # every message names the scalar module the contract came from
        assert "twinpar_pkg." in finding.message


def test_missing_method_finding_names_accepted_spellings(report):
    drained = [f for f in report.findings
               if f.rule_id == "RPR601" and "drain_queue" in f.message]
    assert len(drained) == 1
    assert "drain_queue_lane" in drained[0].message


def test_cross_module_facts_vanish_when_modules_lint_alone():
    """Severing the package kills the twin pairing (scalar and batch
    class are never co-resident) and the lane-shape flow (make_state's
    return shape never reaches the misuse sites).  Only the
    name-seeded shared-scalar hit in ``replay_batch`` survives: a
    ``for lane in range(self.n)`` loop is a lane loop by naming
    convention alone."""
    alone: set = set()
    for path in _pkg_files():
        single = lint_paths([path], select=TWIN_FAMILIES)
        alone.update(f.rule_id for f in single.findings)
    assert alone.isdisjoint({"RPR601", "RPR602", "RPR603"})
    assert alone <= {"RPR604"}


def test_clean_lane_access_contributes_nothing(report):
    lines = {(Path(f.path).name, f.line) for f in report.findings}
    expected = {pair for pairs in EXPECTED.values() for pair in pairs}
    assert lines == expected


# ----------------------------------------------------------------------
# Incremental-cache contract for the new families
# ----------------------------------------------------------------------

def test_warm_relint_serves_twin_findings_from_cache():
    files = _pkg_files()
    cold = lint_paths(files, select=TWIN_FAMILIES, use_cache=True)
    warm = lint_paths(files, select=TWIN_FAMILIES, use_cache=True)
    assert cold.files_from_cache == 0
    assert warm.files_from_cache == warm.files_scanned
    assert warm.findings == cold.findings


def test_fingerprint_bump_forces_cold_reanalysis(monkeypatch):
    files = _pkg_files()
    first = lint_paths(files, select=TWIN_FAMILIES, use_cache=True)
    assert first.findings

    import repro.analysis.cache as cache_mod

    monkeypatch.setattr(cache_mod, "analysis_fingerprint",
                        lambda: "edited-pass-four")
    second = lint_paths(files, select=TWIN_FAMILIES, use_cache=True)
    assert second.files_from_cache == 0
    assert second.findings == first.findings
    third = lint_paths(files, select=TWIN_FAMILIES, use_cache=True)
    assert third.files_from_cache == third.files_scanned
