"""SARIF reporter tests: structure always, schema when jsonschema exists.

The vendored schema (``fixtures/sarif-2.1.0.schema.json``) is the
load-bearing subset of the official OASIS 2.1.0 schema — same required
lists, types, and enums for everything the reporter emits — because
the test environment cannot fetch the original.  The structural tests
below run everywhere; the schema validation runs wherever
:mod:`jsonschema` happens to be importable (it is not a project
dependency).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import lint_paths, render_sarif, sarif_document
from repro.analysis.sarif import SARIF_VERSION, result_level

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def _report(*names, select=None):
    return lint_paths([str(FIXTURES / n) for n in names], select=select)


def test_document_shape_and_versions():
    doc = sarif_document(_report("rpr102_fail.py"))
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert "$schema" in doc
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert driver["version"]
    assert driver["rules"]


def test_results_mirror_findings_one_to_one():
    report = _report("rpr102_fail.py", "rpr501_fail.py")
    doc = sarif_document(report)
    results = doc["runs"][0]["results"]
    assert len(results) == len(report.findings)
    for finding, result in zip(report.findings, results):
        assert result["ruleId"] == finding.rule_id
        assert result["message"]["text"] == finding.message
        (location,) = result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"].endswith(
            Path(finding.path).name)
        assert physical["region"]["startLine"] == finding.line
        assert physical["region"]["startColumn"] == finding.col


def test_rule_descriptors_cover_every_enabled_rule():
    report = _report("rpr102_fail.py")
    doc = sarif_document(report)
    descriptor_ids = {r["id"] for r in doc["runs"][0]["tool"]
                      ["driver"]["rules"]}
    assert descriptor_ids == set(report.rule_ids)


def test_batch_audit_reports_as_note_everything_else_warning():
    assert result_level("RPR501") == "note"
    assert result_level("RPR503") == "note"
    assert result_level("RPR401") == "warning"
    assert result_level("RPR102") == "warning"
    doc = sarif_document(_report("rpr501_fail.py", select=["RPR5"]))
    assert {r["level"] for r in doc["runs"][0]["results"]} == {"note"}


def test_serialization_is_stable():
    report = _report("rpr102_fail.py")
    assert render_sarif(report) == render_sarif(report)
    json.loads(render_sarif(report))  # round-trips


def test_empty_report_is_still_a_valid_log():
    doc = sarif_document(_report("rpr102_clean/units.py"))
    assert doc["runs"][0]["results"] == []


def test_cli_format_sarif_emits_parseable_sarif():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--format", "sarif",
         "--no-cache", "--select", "RPR4,RPR5",
         str(FIXTURES / "rpr501_fail.py")],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"})
    assert proc.returncode == 1  # findings present
    doc = json.loads(proc.stdout)
    assert doc["version"] == "2.1.0"
    assert {r["ruleId"] for r in doc["runs"][0]["results"]} == {"RPR501"}


def test_document_validates_against_the_2_1_0_schema():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(
        (FIXTURES / "sarif-2.1.0.schema.json").read_text())
    for report in (
        _report("rpr102_fail.py", "rpr501_fail.py", "rpr403_fail.py"),
        _report("rpr102_clean/units.py"),
    ):
        jsonschema.validate(
            instance=sarif_document(report), schema=schema)


def test_pass_four_advisory_and_blocking_levels():
    """RPR703 is advisory (per-worker caches are a cost, not a bug);
    the rest of Pass 4 blocks like any other correctness rule."""
    assert result_level("RPR703") == "note"
    for rule_id in ("RPR601", "RPR602", "RPR603", "RPR604",
                    "RPR701", "RPR702", "RPR704"):
        assert result_level(rule_id) == "warning"
    doc = sarif_document(_report("rpr703_fail.py", select=["RPR703"]))
    results = doc["runs"][0]["results"]
    assert results
    assert {r["level"] for r in results} == {"note"}


def test_pass_four_results_and_descriptors_round_trip():
    report = _report("rpr601_fail.py", "rpr603_batch_fail.py",
                     "rpr704_fail.py", select=["RPR6", "RPR7"])
    doc = sarif_document(report)
    results = doc["runs"][0]["results"]
    assert {r["ruleId"] for r in results} == {"RPR601", "RPR603",
                                              "RPR704"}
    descriptor_ids = {r["id"] for r in doc["runs"][0]["tool"]
                      ["driver"]["rules"]}
    assert descriptor_ids == set(report.rule_ids)
    assert {"RPR601", "RPR602", "RPR603", "RPR604", "RPR701",
            "RPR702", "RPR703", "RPR704"} <= descriptor_ids


def test_pass_four_documents_validate_against_the_schema():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(
        (FIXTURES / "sarif-2.1.0.schema.json").read_text())
    report = _report("rpr601_fail.py", "rpr703_fail.py",
                     "rpr704_fail.py", select=["RPR6", "RPR7"])
    assert report.findings
    jsonschema.validate(instance=sarif_document(report), schema=schema)


def test_schema_rejects_malformed_documents():
    """The vendored schema has teeth: missing required members fail."""
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(
        (FIXTURES / "sarif-2.1.0.schema.json").read_text())
    good = sarif_document(_report("rpr102_fail.py"))

    no_tool = json.loads(json.dumps(good))
    del no_tool["runs"][0]["tool"]
    with pytest.raises(jsonschema.ValidationError):
        jsonschema.validate(instance=no_tool, schema=schema)

    bad_level = json.loads(json.dumps(good))
    bad_level["runs"][0]["results"][0]["level"] = "catastrophic"
    with pytest.raises(jsonschema.ValidationError):
        jsonschema.validate(instance=bad_level, schema=schema)
