"""Shared fixtures: isolate every analysis test from the user's caches."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolated_lint_cache(tmp_path, monkeypatch):
    """Point the lint cache at a per-test directory.

    The CLI caches by default (mirroring the experiment runner), so
    without this every test run would read and write
    ``~/.cache/repro-heb-lint``.
    """
    monkeypatch.setenv("REPRO_LINT_CACHE_DIR", str(tmp_path / "lint-cache"))
