"""The seeded cross-module bug package: whole-program-only findings.

``wholeprog_demo`` plants eight defects that each span a module
boundary.  The acceptance test below checks both directions: the
whole-program passes report all of them, and the per-file rules —
given the very same files — report none.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import all_rules, lint_paths

DEMO = Path(__file__).parent / "fixtures" / "wholeprog_demo"


def _demo_files():
    return sorted(str(p) for p in DEMO.glob("*.py"))


@pytest.fixture(scope="module")
def report():
    return lint_paths(_demo_files())


def test_demo_yields_at_least_six_distinct_whole_program_findings(report):
    rules_hit = {f.rule_id for f in report.findings}
    assert len(rules_hit) >= 6
    assert rules_hit == {"RPR110", "RPR111", "RPR112", "RPR113",
                         "RPR210", "RPR211", "RPR212", "RPR213"}


def test_per_file_rules_are_blind_to_every_demo_bug():
    per_file_ids = [rule_id for rule_id, cls in all_rules().items()
                    if not cls.whole_program]
    report = lint_paths(_demo_files(), select=per_file_ids)
    assert report.clean, [f.render() for f in report.findings]


def test_unit_bugs_point_at_the_misusing_module(report):
    unit_findings = [f for f in report.findings
                     if f.rule_id.startswith("RPR11")]
    assert unit_findings
    assert all(f.path.endswith("dispatch.py") for f in unit_findings)


def test_purity_findings_carry_the_reachability_chain(report):
    purity_findings = [f for f in report.findings
                       if f.rule_id.startswith("RPR21")]
    assert purity_findings
    for finding in purity_findings:
        assert finding.path.endswith("impure.py")
        assert "[reachable: " in finding.message
        assert "execute_request" in finding.message


def test_impurities_without_the_entry_point_are_silent():
    files = [p for p in _demo_files() if not p.endswith("service.py")]
    report = lint_paths(files)
    assert not any(f.rule_id.startswith("RPR21") for f in report.findings)
