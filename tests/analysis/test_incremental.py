"""Incremental cache and parallel-stage tests.

Includes the acceptance criterion: a warm incremental re-lint of the
unchanged ``src/repro`` tree must cost less than 25% of the cold run's
wall time (measured margin is orders of magnitude wider).
"""

from __future__ import annotations

import shutil
import time
from pathlib import Path

import pytest

from repro.analysis import AnalysisCache, lint_paths
from repro.analysis.cache import content_hash, file_key, project_key
from repro.analysis.findings import Finding

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _demo_files():
    return sorted(str(p)
                  for p in (FIXTURES / "wholeprog_demo").glob("*.py"))


# ----------------------------------------------------------------------
# The acceptance criterion
# ----------------------------------------------------------------------

def test_warm_relint_of_src_is_under_quarter_of_cold_time():
    start = time.perf_counter()
    cold = lint_paths([str(REPO_SRC)], use_cache=True)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = lint_paths([str(REPO_SRC)], use_cache=True)
    warm_seconds = time.perf_counter() - start

    assert cold.files_from_cache == 0
    assert warm.files_from_cache == warm.files_scanned
    assert warm.findings == cold.findings
    assert warm_seconds < 0.25 * cold_seconds, (
        f"warm lint took {warm_seconds:.3f}s vs cold {cold_seconds:.3f}s")


# ----------------------------------------------------------------------
# Per-file entries
# ----------------------------------------------------------------------

def test_nonempty_findings_survive_the_cache_round_trip():
    fixture = str(FIXTURES / "rpr102_fail.py")
    cold = lint_paths([fixture], use_cache=True)
    warm = lint_paths([fixture], use_cache=True)
    assert cold.findings  # the fixture genuinely fails
    assert warm.files_from_cache == 1
    assert warm.findings == cold.findings


def test_renamed_file_rehits_and_reanchors(tmp_path):
    original = tmp_path / "a.py"
    original.write_text((FIXTURES / "rpr102_fail.py").read_text())
    cold = lint_paths([str(original)], use_cache=True)
    renamed = tmp_path / "b.py"
    original.rename(renamed)
    warm = lint_paths([str(renamed)], use_cache=True)
    # Same content => per-file hit; findings re-anchored at the new path.
    assert warm.files_from_cache == 1
    assert [f.line for f in warm.findings] == [
        f.line for f in cold.findings]
    assert all(f.path == str(renamed) for f in warm.findings)


def test_edited_file_misses_and_recomputes(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("hours = 8760\n")
    first = lint_paths([str(target)], use_cache=True)
    assert {f.rule_id for f in first.findings} == {"RPR102"}
    target.write_text("from repro.units import HOURS_PER_YEAR\n"
                      "hours = HOURS_PER_YEAR\n")
    second = lint_paths([str(target)], use_cache=True)
    assert second.files_from_cache == 0
    assert second.clean


# ----------------------------------------------------------------------
# Project (whole-program) entries
# ----------------------------------------------------------------------

def test_project_findings_come_from_cache_on_unchanged_tree(monkeypatch):
    files = _demo_files()
    cold = lint_paths(files, use_cache=True)
    assert any(f.rule_id.startswith("RPR2") for f in cold.findings)

    import repro.analysis.semantics as semantics

    def _must_not_run(*args, **kwargs):
        raise AssertionError("whole-program pass ran on a warm cache")

    monkeypatch.setattr(semantics, "run_whole_program", _must_not_run)
    warm = lint_paths(files, use_cache=True)
    assert warm.findings == cold.findings


def test_any_file_edit_invalidates_the_project_entry(tmp_path):
    for name in ("service.py", "impure.py", "__init__.py"):
        shutil.copy(FIXTURES / "wholeprog_demo" / name, tmp_path / name)
    files = sorted(str(p) for p in tmp_path.glob("*.py"))
    first = lint_paths(files, use_cache=True)
    assert any(f.rule_id == "RPR210" for f in first.findings)
    # Neutering the entry point must drop every purity finding even
    # though impure.py itself is byte-identical (per-file hit).
    (tmp_path / "service.py").write_text(
        '"""No entry point any more."""\n')
    second = lint_paths(files, use_cache=True)
    assert not any(f.rule_id.startswith("RPR21")
                   for f in second.findings)


def test_keys_change_with_content_rules_and_fileset():
    source_hash = content_hash("x = 1\n")
    assert file_key(source_hash, ["RPR101"]) != file_key(
        source_hash, ["RPR102"])
    assert file_key(source_hash, ["RPR101"]) != file_key(
        content_hash("x = 2\n"), ["RPR101"])
    pairs = [("a.py", source_hash)]
    assert project_key(pairs, ["RPR210"]) != project_key(
        pairs + [("b.py", source_hash)], ["RPR210"])


def test_cache_store_roundtrip_and_clear(tmp_path):
    cache = AnalysisCache(tmp_path / "store")
    finding = Finding("x.py", 3, 1, "RPR102", "msg")
    key = file_key(content_hash("x"), ["RPR102"])
    assert cache.get_file(key, "x.py") is None
    cache.put_file(key, [finding])
    assert cache.get_file(key, "moved.py") == [
        Finding("moved.py", 3, 1, "RPR102", "msg")]
    assert cache.clear() == 1
    assert cache.get_file(key, "x.py") is None


# ----------------------------------------------------------------------
# Parallel per-file stage
# ----------------------------------------------------------------------

@pytest.mark.parametrize("use_cache", [False, True])
def test_parallel_stage_matches_serial_output(use_cache):
    files = [str(FIXTURES / "rpr102_fail.py"),
             str(FIXTURES / "rpr103_fail.py"),
             str(FIXTURES / "rpr301_fail.py")]
    serial = lint_paths(files, jobs=1, use_cache=use_cache)
    parallel = lint_paths(files, jobs=2, use_cache=use_cache)
    assert serial.findings
    assert parallel.findings == serial.findings
