"""Framework-level tests: suppressions, context, registry, reporters."""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    LintReport,
    all_rules,
    collect_suppressions,
    iter_python_files,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.rules import FileContext, resolve_rule_ids
from repro.analysis.suppressions import (
    ALL_RULES,
    expand_suppressions,
    is_suppressed,
)
from repro.errors import AnalysisError, ReproError

FIXTURES = Path(__file__).parent / "fixtures"


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

def test_noqa_single_rule():
    sup = collect_suppressions("x = 3600  # repro: noqa[RPR102]\n")
    assert is_suppressed(sup, 1, "RPR102")
    assert not is_suppressed(sup, 1, "RPR101")
    assert not is_suppressed(sup, 2, "RPR102")


def test_noqa_multiple_rules_and_whitespace():
    sup = collect_suppressions(
        "y = a + b  #  repro:  noqa[RPR101, rpr102]\n")
    assert is_suppressed(sup, 1, "RPR101")
    assert is_suppressed(sup, 1, "RPR102")


def test_noqa_blanket_suppresses_everything():
    sup = collect_suppressions("z = 8760  # repro: noqa\n")
    assert sup[1] is ALL_RULES
    assert is_suppressed(sup, 1, "RPR102")
    assert is_suppressed(sup, 1, "RPR301")


def test_noqa_inside_string_literal_is_ignored():
    sup = collect_suppressions('text = "# repro: noqa[RPR102]"\n')
    assert sup == {}


def test_plain_noqa_comment_is_not_ours():
    sup = collect_suppressions("x = 1  # noqa: E722\n")
    assert sup == {}


def test_unparseable_source_yields_no_suppressions():
    assert collect_suppressions("def broken(:\n") == {}


def test_noqa_covers_the_whole_multiline_statement():
    source = ("total = (stored_j\n"
              "         + demand_w)  # repro: noqa[RPR101]\n")
    sup = expand_suppressions(collect_suppressions(source),
                              ast.parse(source))
    assert is_suppressed(sup, 1, "RPR101")
    assert is_suppressed(sup, 2, "RPR101")
    # End to end: RPR101 anchors on line 1, the marker sits on line 2.
    rules = [cls() for cls in all_rules().values()]
    assert lint_source(source, "mod.py", rules) == []


def test_noqa_markers_merge_across_a_statement():
    source = ("value = (stored_j  # repro: noqa[RPR101]\n"
              "         + 8760)  # repro: noqa[RPR102]\n")
    sup = expand_suppressions(collect_suppressions(source),
                              ast.parse(source))
    for line in (1, 2):
        assert is_suppressed(sup, line, "RPR101")
        assert is_suppressed(sup, line, "RPR102")


def test_blanket_noqa_survives_expansion():
    source = ("value = (stored_j\n"
              "         + demand_w)  # repro: noqa\n")
    sup = expand_suppressions(collect_suppressions(source),
                              ast.parse(source))
    assert sup[1] is ALL_RULES or is_suppressed(sup, 1, "RPR999")


def test_noqa_on_compound_statement_stays_on_its_line():
    source = ("if flag:  # repro: noqa[RPR102]\n"
              "    seconds = 86400.0\n")
    sup = expand_suppressions(collect_suppressions(source),
                              ast.parse(source))
    assert is_suppressed(sup, 1, "RPR102")
    assert not is_suppressed(sup, 2, "RPR102")
    rules = [cls() for cls in all_rules().values()]
    findings = lint_source(source, "mod.py", rules)
    assert [f.rule_id for f in findings] == ["RPR102"]


# ----------------------------------------------------------------------
# FileContext import resolution
# ----------------------------------------------------------------------

def _ctx(source: str) -> FileContext:
    return FileContext("sim/mod.py", source, ast.parse(source))


def _first_call(ctx: FileContext) -> ast.expr:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            return node.func
    raise AssertionError("no call in source")


def test_resolve_call_through_alias():
    ctx = _ctx("import numpy as np\nnp.random.rand()\n")
    assert ctx.resolve_call(_first_call(ctx)) == "numpy.random.rand"


def test_resolve_call_through_from_import():
    ctx = _ctx("from time import time as now\nnow()\n")
    assert ctx.resolve_call(_first_call(ctx)) == "time.time"


def test_resolve_call_unresolvable_expression():
    ctx = _ctx("(lambda: 1)()\n")
    assert ctx.resolve_call(_first_call(ctx)) is None


def test_deterministic_scope_detection():
    assert _ctx("x = 1\n").is_deterministic_scope
    outside = FileContext("docs/mod.py", "x = 1\n", ast.parse("x = 1\n"))
    assert not outside.is_deterministic_scope
    units = FileContext("pkg/units.py", "x = 1\n", ast.parse("x = 1\n"))
    assert units.is_units_module


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------

def test_registry_is_sorted_and_documented():
    rules = all_rules()
    assert list(rules) == sorted(rules)
    for rule_class in rules.values():
        assert rule_class.summary()


def test_unknown_rule_id_raises_analysis_error():
    with pytest.raises(AnalysisError) as excinfo:
        resolve_rule_ids(["RPR999"])
    assert "RPR999" in str(excinfo.value)
    assert isinstance(excinfo.value, ReproError)


def test_rule_ids_are_case_insensitive():
    assert resolve_rule_ids(["rpr102"]) == ["RPR102"]


def test_family_prefix_expands_to_every_member():
    units_family = resolve_rule_ids(["RPR1"])
    assert set(units_family) == {
        rid for rid in all_rules() if rid.startswith("RPR1")}
    narrow = resolve_rule_ids(["RPR11"])
    assert set(narrow) == {"RPR110", "RPR111", "RPR112", "RPR113"}


def test_exact_id_and_prefix_mix_without_duplicates():
    resolved = resolve_rule_ids(["RPR102", "RPR1"])
    assert resolved.count("RPR102") == 1


def test_unmatched_prefix_raises():
    with pytest.raises(AnalysisError):
        resolve_rule_ids(["RPR9"])


def test_lint_paths_unknown_select_raises():
    with pytest.raises(AnalysisError):
        lint_paths([str(FIXTURES / "rpr102_fail.py")], select=["NOPE"])


def test_lint_paths_missing_path_raises():
    with pytest.raises(AnalysisError):
        lint_paths([str(FIXTURES / "does_not_exist.py")])


def test_iter_python_files_skips_pycache(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
    (tmp_path / "real.py").write_text("x = 1\n")
    files = list(iter_python_files([str(tmp_path)]))
    assert [f.name for f in files] == ["real.py"]


# ----------------------------------------------------------------------
# lint_source and reporters
# ----------------------------------------------------------------------

def test_lint_source_flags_magic_constant():
    rules = [cls() for cls in all_rules().values()]
    findings = lint_source("x = 86400\n", "mod.py", rules)
    assert [f.rule_id for f in findings] == ["RPR102"]


def test_finding_render_and_to_dict():
    finding = Finding("a.py", 3, 7, "RPR102", "msg")
    assert finding.render() == "a.py:3:7: RPR102 msg"
    assert finding.to_dict() == {
        "path": "a.py", "line": 3, "col": 7,
        "rule": "RPR102", "message": "msg",
    }


def test_render_text_clean_and_dirty():
    clean = LintReport(findings=(), files_scanned=2)
    assert "clean: 2 files scanned" in render_text(clean)
    dirty = LintReport(
        findings=(Finding("a.py", 1, 1, "RPR102", "msg"),),
        files_scanned=1)
    text = render_text(dirty)
    assert "a.py:1:1: RPR102 msg" in text
    assert "1 finding in 1 file" in text


def test_render_json_schema():
    report = lint_paths([str(FIXTURES / "rpr102_fail.py")])
    payload = json.loads(render_json(report))
    assert payload["format"] == 1
    assert payload["files_scanned"] == 1
    assert set(payload["rules"]) == set(all_rules())
    assert payload["findings"]
    for entry in payload["findings"]:
        assert set(entry) == {"path", "line", "col", "rule", "message"}
        assert entry["rule"] == "RPR102"
