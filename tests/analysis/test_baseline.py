"""Baseline (ratchet) workflow: library behavior and CLI wiring."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.baseline import (
    baseline_counts,
    finding_fingerprint,
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.findings import Finding
from repro.errors import AnalysisError

FIXTURES = Path(__file__).parent / "fixtures"


def _finding(line=1, rule="RPR102", message="msg", path="a.py"):
    return Finding(path, line, 1, rule, message)


# ----------------------------------------------------------------------
# Library semantics
# ----------------------------------------------------------------------

def test_fingerprint_is_line_free():
    assert finding_fingerprint(_finding(line=3)) == finding_fingerprint(
        _finding(line=99))
    assert finding_fingerprint(_finding(rule="RPR101")) != (
        finding_fingerprint(_finding(rule="RPR102")))


def test_counts_accumulate_identical_findings():
    counts = baseline_counts([_finding(line=1), _finding(line=2)])
    assert list(counts.values()) == [2]


def test_write_then_load_round_trips(tmp_path):
    path = tmp_path / "base.json"
    written = write_baseline(path, [_finding(), _finding(rule="RPR103")])
    assert written == 2
    assert load_baseline(path) == baseline_counts(
        [_finding(), _finding(rule="RPR103")])


def test_missing_baseline_is_empty_and_garbage_raises(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == {}
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(AnalysisError):
        load_baseline(bad)
    bad.write_text(json.dumps({"format": 99, "counts": {}}))
    with pytest.raises(AnalysisError):
        load_baseline(bad)


def test_new_findings_respects_counts_and_reports_extras():
    accepted = baseline_counts([_finding(line=1)])
    same = new_findings([_finding(line=40)], accepted)
    assert same == []  # moved, not new
    grown = new_findings([_finding(line=1), _finding(line=2)], accepted)
    assert [f.line for f in grown] == [2]  # the later duplicate is new
    other = new_findings([_finding(rule="RPR301")], accepted)
    assert len(other) == 1


# ----------------------------------------------------------------------
# CLI workflow
# ----------------------------------------------------------------------

def test_baseline_write_then_check_ratchets(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    fixture = str(FIXTURES / "rpr102_fail.py")

    # Plain run fails; writing a baseline accepts the debt.
    assert lint_main([fixture]) == 1
    capsys.readouterr()
    assert lint_main([fixture, "--baseline", "write",
                      "--baseline-file", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "recorded" in out and baseline.exists()

    # Checking against the fresh baseline is clean.
    assert lint_main([fixture, "--baseline", "check",
                      "--baseline-file", str(baseline)]) == 0
    capsys.readouterr()

    # A file with findings outside the baseline still fails the check.
    extra = str(FIXTURES / "rpr103_fail.py")
    code = lint_main([fixture, extra, "--baseline", "check",
                      "--baseline-file", str(baseline)])
    out = capsys.readouterr().out
    assert code == 1
    assert "RPR103" in out and "RPR102" not in out


def test_empty_baseline_on_clean_tree(tmp_path, capsys):
    """Acceptance shape: a clean scope writes an empty baseline and the
    subsequent check passes."""
    baseline = tmp_path / "baseline.json"
    clean = str(FIXTURES / "rpr101_clean.py")
    assert lint_main([clean, "--baseline", "write",
                      "--baseline-file", str(baseline)]) == 0
    capsys.readouterr()
    assert json.loads(baseline.read_text())["counts"] == {}
    assert lint_main([clean, "--baseline", "check",
                      "--baseline-file", str(baseline)]) == 0


def test_corrupt_baseline_is_a_usage_error(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("[]")
    code = lint_main([str(FIXTURES / "rpr101_clean.py"),
                      "--baseline", "check",
                      "--baseline-file", str(baseline)])
    captured = capsys.readouterr()
    assert code == 2
    assert "baseline" in captured.err


def test_repo_baseline_workflow_against_src(tmp_path):
    """The shipped tree has no debt: its baseline is empty and check-clean."""
    repo_src = Path(__file__).resolve().parents[2] / "src" / "repro"
    baseline = tmp_path / "baseline.json"
    report = lint_paths([str(repo_src)],
                        select=["RPR1", "RPR2", "RPR4", "RPR5"])
    assert write_baseline(baseline, report.findings) == 0
    assert new_findings(report.findings, load_baseline(baseline)) == []


def test_checked_in_ratchet_baseline_is_empty():
    """CI's RPR4/RPR5 ratchet file stays empty: new array-semantics
    findings must be fixed (or noqa'd with a reason), never accepted."""
    repo_root = Path(__file__).resolve().parents[2]
    accepted = load_baseline(repo_root / ".repro-lint-baseline.json")
    assert accepted == {}
