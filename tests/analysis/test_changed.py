"""``--changed`` selection against real (temporary) git repositories."""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

from repro.analysis.changed import changed_python_files, merge_base
from repro.analysis.cli import main as lint_main
from repro.errors import AnalysisError


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-C", str(repo),
         "-c", "user.email=test@example.invalid", "-c", "user.name=test",
         *args],
        check=True, capture_output=True, text=True)


@pytest.fixture()
def repo(tmp_path):
    """A repo on branch ``work`` with one commit on ``main`` behind it."""
    root = tmp_path / "repo"
    root.mkdir()
    _git(root, "init", "--initial-branch=main")
    (root / "src").mkdir()
    (root / "src" / "stable.py").write_text("x = 1\n")
    (root / "src" / "touched.py").write_text("y = 1\n")
    _git(root, "add", ".")
    _git(root, "commit", "-m", "seed")
    _git(root, "checkout", "-b", "work")
    return root


def test_merge_base_falls_back_to_local_main(repo):
    assert merge_base(cwd=repo) is not None


def test_changed_lists_tracked_untracked_and_committed_edits(repo):
    (repo / "src" / "touched.py").write_text("y = 2\n")  # unstaged edit
    (repo / "src" / "fresh.py").write_text("z = 1\n")    # untracked
    (repo / "src" / "notes.txt").write_text("not python\n")
    (repo / "src" / "committed.py").write_text("c = 1\n")
    _git(repo, "add", "src/committed.py")
    _git(repo, "commit", "-m", "add committed.py")

    selected = changed_python_files([str(repo / "src")], cwd=repo)
    names = [Path(p).name for p in selected]
    assert names == ["committed.py", "fresh.py", "touched.py"]


def test_changed_respects_scope_and_skips_fixture_dirs(repo):
    (repo / "src" / "fixtures").mkdir()
    (repo / "src" / "fixtures" / "specimen.py").write_text("s = 1\n")
    (repo / "elsewhere").mkdir()
    (repo / "elsewhere" / "outside.py").write_text("o = 1\n")
    selected = changed_python_files([str(repo / "src")], cwd=repo)
    assert selected == []


def test_deleted_files_are_dropped(repo):
    (repo / "src" / "touched.py").unlink()
    assert changed_python_files([str(repo / "src")], cwd=repo) == []


def test_outside_a_repo_raises(tmp_path):
    bare = tmp_path / "norepo"
    bare.mkdir()
    with pytest.raises(AnalysisError):
        changed_python_files([str(bare)], cwd=bare)


def test_cli_changed_lints_only_the_branch_delta(repo, monkeypatch,
                                                 capsys):
    monkeypatch.chdir(repo)
    # Nothing changed yet: the run is a cheap no-op.
    assert lint_main(["--changed", "src"]) == 0
    assert "no changed Python files" in capsys.readouterr().out

    # A freshly-added violation is caught; the stable file is not read.
    (repo / "src" / "bad.py").write_text("seconds = 86400.0\n")
    code = lint_main(["--changed", "src"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RPR102" in out and "bad.py" in out
    assert "stable.py" not in out
