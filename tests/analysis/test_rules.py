"""Fixture-driven rule tests: every rule id has a failing + clean fixture."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import PARSE_ERROR_RULE_ID, all_rules, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (failing fixture, clean fixture), both relative to FIXTURES.
RULE_FIXTURES = {
    "RPR000": ("rpr000_fail.py", "rpr000_clean.py"),
    "RPR101": ("rpr101_fail.py", "rpr101_clean.py"),
    "RPR102": ("rpr102_fail.py", "rpr102_clean/units.py"),
    "RPR103": ("rpr103_fail.py", "rpr103_clean.py"),
    "RPR104": ("rpr104_fail/sim/equality.py",
               "rpr104_clean/sim/tolerance.py"),
    "RPR110": ("rpr110_fail.py", "rpr110_clean.py"),
    "RPR111": ("rpr111_fail.py", "rpr111_clean.py"),
    "RPR112": ("rpr112_fail.py", "rpr112_clean.py"),
    "RPR113": ("rpr113_fail.py", "rpr113_clean.py"),
    "RPR201": ("rpr201_fail/sim/clocked.py", "rpr201_clean/sim/seeded.py"),
    "RPR202": ("rpr202_fail/core/setsum.py",
               "rpr202_clean/core/sorted_sets.py"),
    "RPR203": ("rpr203_fail.py", "rpr203_clean.py"),
    "RPR210": ("rpr210_fail.py", "rpr210_clean.py"),
    "RPR211": ("rpr211_fail.py", "rpr211_clean.py"),
    "RPR212": ("rpr212_fail.py", "rpr212_clean.py"),
    "RPR213": ("rpr213_fail.py", "rpr213_clean.py"),
    "RPR301": ("rpr301_fail.py", "rpr301_clean.py"),
    "RPR302": ("rpr302_fail.py", "rpr302_clean.py"),
    "RPR401": ("rpr401_storage_fail.py", "rpr401_storage_clean.py"),
    "RPR402": ("rpr402_fail.py", "rpr402_clean.py"),
    "RPR403": ("rpr403_fail.py", "rpr403_clean.py"),
    "RPR404": ("rpr404_fail.py", "rpr404_clean.py"),
    "RPR501": ("rpr501_fail.py", "rpr501_clean.py"),
    "RPR502": ("rpr502_engine_fail.py", "rpr502_engine_clean.py"),
    "RPR503": ("rpr503_engine_fail.py", "rpr503_engine_clean.py"),
    "RPR601": ("rpr601_fail.py", "rpr601_clean.py"),
    "RPR602": ("rpr602_fail.py", "rpr602_clean.py"),
    "RPR603": ("rpr603_batch_fail.py", "rpr603_batch_clean.py"),
    "RPR604": ("rpr604_batch_fail.py", "rpr604_batch_clean.py"),
    "RPR701": ("rpr701_fail.py", "rpr701_clean.py"),
    "RPR702": ("rpr702_fail.py", "rpr702_clean.py"),
    "RPR703": ("rpr703_fail.py", "rpr703_clean.py"),
    "RPR704": ("rpr704_fail.py", "rpr704_clean.py"),
}

#: Findings each failing fixture must produce (exact count).
EXPECTED_FAIL_COUNTS = {
    "RPR000": 1,
    "RPR101": 2,   # BinOp add + AugAssign subtract
    "RPR102": 3,   # 8760, 3600.0, 86400.0
    "RPR103": 2,   # bare parameter + unsuffixed float-returning function
    "RPR104": 2,   # exact == and != on power/energy names
    "RPR110": 2,   # positional + keyword J-into-W bindings
    "RPR111": 2,   # return-unit mismatch + assignment-unit mismatch
    "RPR112": 2,   # wh_to_joules(J) + joules_to_wh(Wh)
    "RPR113": 2,   # inferred-return mix + same-dimension scale mix
    "RPR201": 4,   # time.time, aliased time, np.random.rand, random.random
    "RPR202": 2,   # for-over-set + sum-over-set-comprehension
    "RPR203": 2,   # positional list default + keyword-only dict default
    "RPR210": 2,   # reachable time.time + reachable random.random
    "RPR211": 2,   # reachable os.getenv + reachable os.cpu_count
    "RPR212": 2,   # reachable for-over-set + reachable sum-over-set
    "RPR213": 2,   # reachable global rebind + reachable dict store
    "RPR301": 2,   # except Exception + bare except
    "RPR302": 2,   # RuntimeError + custom non-ReproError subclass
    "RPR401": 2,   # mixed float32/float64 binop + astype narrowing
    "RPR402": 2,   # literal 4-vs-5 operator + symbolic np.add conflict
    "RPR403": 3,   # subscript store + augassign alias + out= kwarg
    "RPR404": 2,   # read with no store + partial single-element fill
    "RPR501": 2,   # axis=0 reduction + literal [0] index
    "RPR502": 3,   # for loop + builtin sum + builtin max
    "RPR503": 3,   # float(reduction) + .item() + float(whole array)
    "RPR601": 2,   # missing snapshot_state + missing total_energy_j twin
    "RPR602": 2,   # dropped scalar parameter + drifted literal default
    "RPR603": 2,   # literal lane index + non-lane name index
    "RPR604": 2,   # shared scalar in lane loop + axis-0 lane fold
    "RPR701": 2,   # lambda + nested def submitted to the pool
    "RPR702": 2,   # global rebind + dict store in a worker
    "RPR703": 2,   # shared module RNG draw + lru_cache on a worker fn
    "RPR704": 3,   # time.sleep + open() + Path.read_text in async def
}


def test_every_registered_rule_has_fixtures():
    registered = set(all_rules()) | {PARSE_ERROR_RULE_ID}
    assert registered == set(RULE_FIXTURES)


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_failing_fixture_flags_exactly_its_rule(rule_id):
    fail_path = FIXTURES / RULE_FIXTURES[rule_id][0]
    report = lint_paths([str(fail_path)])
    assert not report.clean
    assert {f.rule_id for f in report.findings} == {rule_id}
    assert len(report.findings) == EXPECTED_FAIL_COUNTS[rule_id]
    for finding in report.findings:
        assert finding.path == str(fail_path)
        assert finding.line >= 1
        assert finding.col >= 1
        assert finding.message


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_clean_fixture_produces_no_findings(rule_id):
    clean_path = FIXTURES / RULE_FIXTURES[rule_id][1]
    report = lint_paths([str(clean_path)])
    assert report.clean, [f.render() for f in report.findings]
    assert report.files_scanned == 1


def test_fail_fixtures_are_clean_under_their_noqa():
    report = lint_paths([str(FIXTURES / "noqa_suppressed.py")])
    assert report.clean, [f.render() for f in report.findings]


def test_select_restricts_to_one_rule():
    report = lint_paths([str(FIXTURES / "rpr102_fail.py")],
                        select=["RPR103"])
    assert report.clean
    report = lint_paths([str(FIXTURES / "rpr102_fail.py")],
                        select=["RPR102"])
    assert {f.rule_id for f in report.findings} == {"RPR102"}


def test_ignore_drops_a_rule():
    report = lint_paths([str(FIXTURES / "rpr102_fail.py")],
                        ignore=["RPR102"])
    assert report.clean


def test_findings_are_sorted_and_deterministic():
    paths = [str(FIXTURES / RULE_FIXTURES[r][0])
             for r in ("RPR102", "RPR101")]
    first = lint_paths(paths)
    second = lint_paths(list(reversed(paths)))
    assert first.findings == second.findings
    assert list(first.findings) == sorted(first.findings)
