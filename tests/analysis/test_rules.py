"""Fixture-driven rule tests: every rule id has a failing + clean fixture."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import PARSE_ERROR_RULE_ID, all_rules, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (failing fixture, clean fixture), both relative to FIXTURES.
RULE_FIXTURES = {
    "RPR000": ("rpr000_fail.py", "rpr000_clean.py"),
    "RPR101": ("rpr101_fail.py", "rpr101_clean.py"),
    "RPR102": ("rpr102_fail.py", "rpr102_clean/units.py"),
    "RPR103": ("rpr103_fail.py", "rpr103_clean.py"),
    "RPR201": ("rpr201_fail/sim/clocked.py", "rpr201_clean/sim/seeded.py"),
    "RPR202": ("rpr202_fail/core/setsum.py",
               "rpr202_clean/core/sorted_sets.py"),
    "RPR301": ("rpr301_fail.py", "rpr301_clean.py"),
    "RPR302": ("rpr302_fail.py", "rpr302_clean.py"),
}

#: Findings each failing fixture must produce (exact count).
EXPECTED_FAIL_COUNTS = {
    "RPR000": 1,
    "RPR101": 2,   # BinOp add + AugAssign subtract
    "RPR102": 3,   # 8760, 3600.0, 86400.0
    "RPR103": 2,   # bare parameter + unsuffixed float-returning function
    "RPR201": 4,   # time.time, aliased time, np.random.rand, random.random
    "RPR202": 2,   # for-over-set + sum-over-set-comprehension
    "RPR301": 2,   # except Exception + bare except
    "RPR302": 2,   # RuntimeError + custom non-ReproError subclass
}


def test_every_registered_rule_has_fixtures():
    registered = set(all_rules()) | {PARSE_ERROR_RULE_ID}
    assert registered == set(RULE_FIXTURES)


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_failing_fixture_flags_exactly_its_rule(rule_id):
    fail_path = FIXTURES / RULE_FIXTURES[rule_id][0]
    report = lint_paths([str(fail_path)])
    assert not report.clean
    assert {f.rule_id for f in report.findings} == {rule_id}
    assert len(report.findings) == EXPECTED_FAIL_COUNTS[rule_id]
    for finding in report.findings:
        assert finding.path == str(fail_path)
        assert finding.line >= 1
        assert finding.col >= 1
        assert finding.message


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_clean_fixture_produces_no_findings(rule_id):
    clean_path = FIXTURES / RULE_FIXTURES[rule_id][1]
    report = lint_paths([str(clean_path)])
    assert report.clean, [f.render() for f in report.findings]
    assert report.files_scanned == 1


def test_fail_fixtures_are_clean_under_their_noqa():
    report = lint_paths([str(FIXTURES / "noqa_suppressed.py")])
    assert report.clean, [f.render() for f in report.findings]


def test_select_restricts_to_one_rule():
    report = lint_paths([str(FIXTURES / "rpr102_fail.py")],
                        select=["RPR103"])
    assert report.clean
    report = lint_paths([str(FIXTURES / "rpr102_fail.py")],
                        select=["RPR102"])
    assert {f.rule_id for f in report.findings} == {"RPR102"}


def test_ignore_drops_a_rule():
    report = lint_paths([str(FIXTURES / "rpr102_fail.py")],
                        ignore=["RPR102"])
    assert report.clean


def test_findings_are_sorted_and_deterministic():
    paths = [str(FIXTURES / RULE_FIXTURES[r][0])
             for r in ("RPR102", "RPR101")]
    first = lint_paths(paths)
    second = lint_paths(list(reversed(paths)))
    assert first.findings == second.findings
    assert list(first.findings) == sorted(first.findings)
