"""Acceptance tests for the array-semantics pass (RPR4xx/RPR5xx).

``arraysem_pkg`` plants eleven defects that each need a fact inferred
in another module: dtypes, symbolic shapes, uninitialized buffers,
aliasing taint, and batchable flags all cross a module boundary before
the misuse site.  The tests pin the exact finding set, prove the
cross-module findings vanish when modules are linted alone, and cover
the incremental-cache contract for the new families.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.analysis import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
PKG = FIXTURES / "arraysem_pkg"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

ARRAY_FAMILIES = ["RPR4", "RPR5"]

#: rule id -> sorted (file basename, function-area line) the package
#: must produce — exactly these, nothing else.
EXPECTED = {
    "RPR401": [("storage.py", 19)],
    "RPR402": [("storage.py", 26)],
    "RPR403": [("pool_ops.py", 14), ("pool_ops.py", 19)],
    "RPR404": [("storage.py", 30)],
    "RPR501": [("engine.py", 14), ("engine.py", 15)],
    "RPR502": [("engine.py", 17), ("scheduler_ops.py", 7)],
    "RPR503": [("engine.py", 19), ("scheduler_ops.py", 8)],
}


def _pkg_files():
    return sorted(str(p) for p in PKG.glob("*.py"))


@pytest.fixture(scope="module")
def report():
    return lint_paths(_pkg_files(), select=ARRAY_FAMILIES)


def test_package_yields_the_exact_finding_set(report):
    got: dict = {}
    for finding in report.findings:
        got.setdefault(finding.rule_id, []).append(
            (Path(finding.path).name, finding.line))
    assert {k: sorted(v) for k, v in got.items()} == EXPECTED


def test_every_array_rule_fires_in_the_package(report):
    assert {f.rule_id for f in report.findings} == set(EXPECTED)


def test_findings_carry_positions_and_messages(report):
    for finding in report.findings:
        assert finding.line >= 1 and finding.col >= 1
        assert finding.message


def test_cross_module_facts_vanish_when_modules_lint_alone():
    """The dtype/shape/aliasing/uninit defects need the whole package.

    Linting each module by itself severs the interprocedural flow;
    only the name-seeded batchable hits in the hot modules survive
    (``demands_w`` is batchable by naming convention alone).
    """
    alone: set = set()
    for path in _pkg_files():
        single = lint_paths([path], select=ARRAY_FAMILIES)
        alone.update(f.rule_id for f in single.findings)
    assert alone.isdisjoint({"RPR401", "RPR402", "RPR403",
                             "RPR404", "RPR501"})
    assert alone <= {"RPR502", "RPR503"}


def test_clean_counterparts_stay_clean(report):
    """Invalidation evidence, copies, astype widening, end-relative
    indexing: every *_clean / aligned / rewrite / snapshot function
    contributes nothing to the finding set."""
    lines = {(Path(f.path).name, f.line) for f in report.findings}
    expected = {pair for pairs in EXPECTED.values() for pair in pairs}
    assert lines == expected


# ----------------------------------------------------------------------
# Incremental-cache contract for the new families
# ----------------------------------------------------------------------

def test_warm_relint_serves_array_findings_from_cache():
    files = _pkg_files()
    cold = lint_paths(files, select=ARRAY_FAMILIES, use_cache=True)
    warm = lint_paths(files, select=ARRAY_FAMILIES, use_cache=True)
    assert cold.files_from_cache == 0
    assert warm.files_from_cache == warm.files_scanned
    assert warm.findings == cold.findings


def test_fingerprint_bump_forces_cold_reanalysis(monkeypatch):
    files = _pkg_files()
    first = lint_paths(files, select=ARRAY_FAMILIES, use_cache=True)
    assert first.findings

    import repro.analysis.cache as cache_mod

    monkeypatch.setattr(cache_mod, "analysis_fingerprint",
                        lambda: "edited-analysis-package")
    second = lint_paths(files, select=ARRAY_FAMILIES, use_cache=True)
    # New fingerprint => every key misses => full re-analysis...
    assert second.files_from_cache == 0
    assert second.findings == first.findings
    # ...and the re-analysis repopulates under the new keys.
    third = lint_paths(files, select=ARRAY_FAMILIES, use_cache=True)
    assert third.files_from_cache == third.files_scanned


def test_warm_relint_of_src_with_array_families_is_fast():
    """Acceptance: warm re-lint under 25% of the cold wall time with
    the array families enabled over the real tree."""
    select = ["RPR11", "RPR2", "RPR4", "RPR5"]
    start = time.perf_counter()
    cold = lint_paths([str(REPO_SRC)], select=select, use_cache=True)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = lint_paths([str(REPO_SRC)], select=select, use_cache=True)
    warm_seconds = time.perf_counter() - start

    assert cold.files_from_cache == 0
    assert warm.files_from_cache == warm.files_scanned
    assert warm.findings == cold.findings
    assert warm_seconds < 0.25 * cold_seconds, (
        f"warm lint took {warm_seconds:.3f}s vs cold {cold_seconds:.3f}s")
