"""Acceptance tests for the concurrency-safety pass (RPR701-RPR704).

``concpar_pkg`` puts the process-pool boundary in ``service.py`` and
the defects it makes worker-reachable two and three modules away: a
module-global write in ``worker.py``, a shared RNG stream in
``rng.py``, and an ``lru_cache`` in ``memo.py``.  Linting any defect
module alone must not reproduce the pool-reachability findings — only
the boundary-local lambda (RPR701) and the purely syntactic async
defect (RPR704) survive in isolation.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.analysis import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
PKG = FIXTURES / "concpar_pkg"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

CONC_FAMILIES = ["RPR7"]

#: rule id -> sorted (file basename, line) the package must produce —
#: exactly these, nothing else.
EXPECTED = {
    # lambda handed to pool.submit() at the boundary itself
    "RPR701": [("service.py", 11)],
    # module-global container written by a worker-reachable helper
    "RPR702": [("worker.py", 15)],
    # shared RNG stream drawn in a worker + worker-reachable lru_cache
    "RPR703": [("memo.py", 7), ("rng.py", 9)],
    # time.sleep inside an async def
    "RPR704": [("async_api.py", 7)],
}


def _pkg_files():
    return sorted(str(p) for p in PKG.glob("*.py"))


@pytest.fixture(scope="module")
def report():
    return lint_paths(_pkg_files(), select=CONC_FAMILIES)


def test_package_yields_the_exact_finding_set(report):
    got: dict = {}
    for finding in report.findings:
        got.setdefault(finding.rule_id, []).append(
            (Path(finding.path).name, finding.line))
    assert {k: sorted(v) for k, v in got.items()} == EXPECTED


def test_every_concurrency_rule_fires_in_the_package(report):
    assert {f.rule_id for f in report.findings} == set(EXPECTED)


def test_findings_carry_positions_and_messages(report):
    for finding in report.findings:
        assert finding.line >= 1 and finding.col >= 1
        assert finding.message


def test_reachability_findings_carry_worker_chains(report):
    """Findings born away from the boundary explain how a worker
    reaches them, tail of the call chain included."""
    chained = {Path(f.path).name: f.message
               for f in report.findings
               if f.rule_id in ("RPR702", "RPR703")}
    assert set(chained) == {"worker.py", "rng.py", "memo.py"}
    for message in chained.values():
        assert "[worker-reachable:" in message
    assert "worker.process -> rng.jitter" in chained["rng.py"]
    assert "worker.process -> worker.record" in chained["worker.py"]


def test_advisory_rng_cache_rule_is_advisory(report):
    from repro.analysis.sarif import _LEVEL_BY_PREFIX

    assert any(f.rule_id == "RPR703" for f in report.findings)
    assert _LEVEL_BY_PREFIX.get("RPR703") == "note"


def test_pool_reachability_vanishes_when_modules_lint_alone():
    """Without ``service.py`` there is no pool boundary, so nothing is
    worker-reachable: the global write, the RNG draw, and the cache
    decoration all go silent.  Only defects that need no cross-module
    fact survive — the boundary-local lambda and the async blocker."""
    allowed_alone = {
        "service.py": {"RPR701"},
        "async_api.py": {"RPR704"},
    }
    for path in _pkg_files():
        single = lint_paths([path], select=CONC_FAMILIES)
        got = {f.rule_id for f in single.findings}
        assert got == allowed_alone.get(Path(path).name, set()), path


# ----------------------------------------------------------------------
# Real-tree acceptance with every pass enabled
# ----------------------------------------------------------------------

def test_src_is_clean_under_the_new_families():
    report = lint_paths([str(REPO_SRC)], select=["RPR6", "RPR7"])
    assert not report.findings


def test_warm_relint_with_pass_four_is_under_quarter_of_cold_time():
    """Acceptance: the whole-program stage now runs four passes, and a
    warm incremental re-lint must still come in under 25% of cold."""
    select = ["RPR11", "RPR2", "RPR4", "RPR5", "RPR6", "RPR7"]
    start = time.perf_counter()
    cold = lint_paths([str(REPO_SRC)], select=select, use_cache=True)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = lint_paths([str(REPO_SRC)], select=select, use_cache=True)
    warm_seconds = time.perf_counter() - start

    assert cold.files_from_cache == 0
    assert warm.files_from_cache == warm.files_scanned
    assert warm.findings == cold.findings
    assert warm_seconds < 0.25 * cold_seconds, (
        f"warm lint took {warm_seconds:.3f}s vs cold {cold_seconds:.3f}s")
