"""CLI tests for ``python -m repro lint`` (in-process)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.__main__ import main as repro_main
from repro.analysis import all_rules
from repro.analysis.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_lint_src_is_clean():
    """The acceptance criterion: the repo's own tree passes its linter."""
    assert lint_main([str(REPO_ROOT / "src")]) == 0


def test_failing_fixture_exits_nonzero(capsys):
    code = repro_main(["lint", str(FIXTURES / "rpr102_fail.py")])
    out = capsys.readouterr().out
    assert code == 1
    assert "RPR102" in out


def test_clean_fixture_exits_zero(capsys):
    code = repro_main(["lint", str(FIXTURES / "rpr101_clean.py")])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out


def test_json_report_is_correct(capsys):
    fixture = FIXTURES / "rpr201_fail" / "sim" / "clocked.py"
    code = repro_main(["lint", str(fixture), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["format"] == 1
    assert payload["files_scanned"] == 1
    rules = {entry["rule"] for entry in payload["findings"]}
    assert rules == {"RPR201"}
    assert all(entry["path"] == str(fixture)
               for entry in payload["findings"])


def test_select_and_ignore_flags(capsys):
    fixture = str(FIXTURES / "rpr102_fail.py")
    assert repro_main(["lint", fixture, "--select", "RPR103"]) == 0
    capsys.readouterr()
    assert repro_main(["lint", fixture, "--ignore", "RPR102"]) == 0
    capsys.readouterr()
    assert repro_main(
        ["lint", fixture, "--select", "RPR102,RPR103"]) == 1


def test_unknown_rule_is_usage_error(capsys):
    code = repro_main(["lint", str(FIXTURES), "--select", "BOGUS"])
    captured = capsys.readouterr()
    assert code == 2
    assert "BOGUS" in captured.err


def test_missing_path_is_usage_error(capsys):
    code = repro_main(["lint", "no/such/dir"])
    captured = capsys.readouterr()
    assert code == 2
    assert "no such file" in captured.err


def test_list_rules(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in all_rules():
        assert rule_id in out


def test_syntax_error_fixture_reports_parse_rule(capsys):
    code = repro_main(
        ["lint", str(FIXTURES / "rpr000_fail.py"), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert [entry["rule"] for entry in payload["findings"]] == ["RPR000"]


def test_list_rules_marks_whole_program_passes(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "RPR110 *" in out
    assert "RPR210 *" in out
    assert "RPR102  " in out  # per-file rules carry no marker
    assert "(* = whole-program pass)" in out


def test_family_prefix_selection_via_cli(capsys):
    fixture = str(FIXTURES / "rpr301_fail.py")
    assert repro_main(["lint", fixture, "--select", "RPR1"]) == 0
    capsys.readouterr()
    assert repro_main(["lint", fixture, "--select", "RPR3"]) == 1


def test_jobs_flag_reports_identical_findings(capsys):
    fixture = str(FIXTURES / "rpr102_fail.py")
    assert repro_main(
        ["lint", fixture, "--no-cache", "--format", "json"]) == 1
    serial = json.loads(capsys.readouterr().out)
    assert repro_main(
        ["lint", fixture, "--no-cache", "--jobs", "2",
         "--format", "json"]) == 1
    parallel = json.loads(capsys.readouterr().out)
    assert parallel["findings"] == serial["findings"]


def test_json_report_counts_cache_hits(capsys):
    fixture = str(FIXTURES / "rpr101_clean.py")
    assert repro_main(["lint", fixture, "--format", "json"]) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["files_from_cache"] == 0
    assert repro_main(["lint", fixture, "--format", "json"]) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["files_from_cache"] == 1
    assert warm["findings"] == cold["findings"]


def test_cache_dir_flag_overrides_the_environment(tmp_path, capsys):
    store = tmp_path / "explicit-store"
    fixture = str(FIXTURES / "rpr101_clean.py")
    assert repro_main(
        ["lint", fixture, "--cache-dir", str(store)]) == 0
    capsys.readouterr()
    assert any(store.rglob("*.json"))


def test_stats_flag_appends_pass_timing_table(capsys):
    pkg = sorted(str(p) for p in
                 (FIXTURES / "twinpar_pkg").glob("*.py"))
    repro_main(["lint", "--no-cache", "--select", "RPR6", *pkg])
    plain = capsys.readouterr().out
    assert "pass timings:" not in plain

    repro_main(["lint", "--no-cache", "--select", "RPR6", "--stats",
                *pkg])
    out = capsys.readouterr().out
    assert out.startswith(plain.rstrip("\n"))
    assert "pass timings:" in out
    assert "twin-parity (RPR601/602)" in out
    assert "lane-isolation (RPR603/604)" in out
    assert "index+callgraph" in out
    assert "findings by family:" in out


def test_stats_json_payload_and_default_omission(capsys):
    fixture = str(FIXTURES / "rpr703_fail.py")
    repro_main(["lint", fixture, "--no-cache", "--select", "RPR7",
                "--format", "json"])
    plain = json.loads(capsys.readouterr().out)
    assert "stats" not in plain

    repro_main(["lint", fixture, "--no-cache", "--select", "RPR7",
                "--format", "json", "--stats"])
    payload = json.loads(capsys.readouterr().out)
    stats = payload["stats"]
    names = [entry["name"] for entry in stats["passes"]]
    assert "per-file" in names
    assert "concurrency (RPR70x)" in names
    for entry in stats["passes"]:
        assert entry["seconds"] >= 0.0
        assert entry["findings"] >= 0
    assert stats["families"] == {"RPR7": 2}
    assert payload["findings"] == plain["findings"]
