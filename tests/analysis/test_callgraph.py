"""Call-graph resolution on adversarial shapes.

The ``callgraph_pkg`` fixture packs the shapes the resolver documents:
call cycles (mutual and self-recursion), decorated callees, star and
aliased imports, ``functools.partial``, ``self.``/``cls`` dispatch,
static/class methods, constructors through inheritance, and virtual
dispatch to overrides.  Edge sets are asserted exactly, so any
resolution regression (an edge lost *or* invented) fails loudly.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.semantics import (
    SourceModule,
    build_call_graph,
    build_project_index,
)

PKG = Path(__file__).parent / "fixtures" / "callgraph_pkg"


def _load_modules():
    modules = []
    for path in sorted(PKG.glob("*.py")):
        source = path.read_text(encoding="utf-8")
        modules.append(SourceModule(path=str(path), source=source,
                                    tree=ast.parse(source)))
    return modules


@pytest.fixture(scope="module")
def graph():
    return build_call_graph(build_project_index(_load_modules()))


def test_index_sees_every_function_including_nested():
    index = build_project_index(_load_modules())
    assert len(index.functions) == 18
    # Nested defs are first-class entries under their parent's qualname.
    assert "callgraph_pkg.ops.traced.wrapper" in index.functions


def test_total_resolved_edge_count(graph):
    assert graph.edge_count() == 16


def test_cycles_resolve_and_terminate(graph):
    assert graph.callees("callgraph_pkg.cycle.ping") == {
        "callgraph_pkg.cycle.pong"}
    assert graph.callees("callgraph_pkg.cycle.pong") == {
        "callgraph_pkg.cycle.ping"}
    assert graph.callees("callgraph_pkg.cycle.spin") == {
        "callgraph_pkg.cycle.spin"}
    reachable, _ = graph.reachable_from(["callgraph_pkg.cycle.ping"])
    assert reachable == {"callgraph_pkg.cycle.ping",
                         "callgraph_pkg.cycle.pong"}


def test_decorated_function_is_an_ordinary_callee(graph):
    # ``doubled`` wears @traced; the call edge targets the definition.
    assert graph.callees("callgraph_pkg.ops.doubled") == {
        "callgraph_pkg.ops.scale"}
    assert "callgraph_pkg.ops.doubled" in graph.callees(
        "callgraph_pkg.driver.schedule")


def test_functools_partial_resolves_to_wrapped_function(graph):
    # ``functools.partial(rescale, ...)`` — through the import alias.
    assert graph.callees("callgraph_pkg.driver.schedule") == {
        "callgraph_pkg.ops.doubled", "callgraph_pkg.ops.scale"}


def test_self_dispatch_and_virtual_overrides(graph):
    # self.step() resolves statically to Gadget.step and, for
    # reachability soundness, also to the TurboGadget override.
    assert graph.callees("callgraph_pkg.gadgets.Gadget.run") == {
        "callgraph_pkg.gadgets.Gadget.prepare",
        "callgraph_pkg.gadgets.Gadget.step",
        "callgraph_pkg.gadgets.TurboGadget.step",
    }
    # self.clamp() lands on the @staticmethod; no override exists.
    assert graph.callees("callgraph_pkg.gadgets.Gadget.prepare") == {
        "callgraph_pkg.gadgets.Gadget.clamp"}


def test_star_import_and_instance_typing(graph):
    # Gadget arrives via ``from .gadgets import *``; the constructor
    # resolves to __init__ and ``gadget.run()`` through the local's
    # inferred class.
    assert graph.callees("callgraph_pkg.driver.launch") == {
        "callgraph_pkg.cycle.ping",
        "callgraph_pkg.gadgets.Gadget.__init__",
        "callgraph_pkg.gadgets.Gadget.run",
        "callgraph_pkg.ops.scale",
    }


def test_inherited_constructor_resolves_to_base_init(graph):
    # TurboGadget defines no __init__; Gadget's is found on the MRO walk.
    assert graph.callees("callgraph_pkg.driver.fleet") == {
        "callgraph_pkg.gadgets.Gadget.__init__",
        "callgraph_pkg.gadgets.TurboGadget.step",
    }


def test_reachability_closure_from_launch(graph):
    reachable, parents = graph.reachable_from(
        ["callgraph_pkg.driver.launch"])
    assert len(reachable) == 10
    assert "callgraph_pkg.ops.offset" not in reachable  # never called
    assert "callgraph_pkg.driver.schedule" not in reachable
    # The parent map reconstructs a root-to-function chain.
    chain = graph.chain_to("callgraph_pkg.cycle.pong", parents)
    assert chain[0] == "callgraph_pkg.driver.launch"
    assert chain[-1] == "callgraph_pkg.cycle.pong"
