"""Bit-for-bit equivalence of the vectorized fast paths vs references.

The engine's hot paths (scheduler assignment, cluster draws, KiBaM step
coefficients, IPDU metering) were rewritten for throughput with the
explicit contract that every simulated number stays *bit-identical* to
the straightforward implementations they replaced.  This suite holds
them to it with randomized inputs:

* ``LoadScheduler.assign`` (memoized, argsort fast path) vs
  :func:`repro.core.scheduler.reference_assign` — the pre-optimization
  implementation kept verbatim as an oracle, including across stateful
  call sequences that exercise every memo.
* ``ServerCluster.draws_w`` (cached mask + array patching) vs a
  per-server ``Server.draw_w`` loop, across random shutdown/restart
  states.
* ``kibam_step`` / max-current helpers with precomputed coefficients vs
  the coefficient-free path vs a verbatim transcription of the original
  inline formula.
* ``IPDU.record`` dict API vs the array ring: same meter totals, same
  history.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import prototype_cluster
from repro.core.scheduler import LoadScheduler, reference_assign
from repro.power.components import IPDU
from repro.server.cluster import ServerCluster
from repro.storage.kibam import (
    KiBaMState,
    kibam_coefficients,
    kibam_max_charge_current,
    kibam_max_discharge_current,
    kibam_step,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

demand_strategy = st.floats(min_value=0.0, max_value=400.0,
                            allow_nan=False, allow_infinity=False)
demands_strategy = st.lists(demand_strategy, min_size=1, max_size=12)
budget_strategy = st.floats(min_value=0.0, max_value=3000.0)
# Deliberately wider than [0, 1]: assign must clamp exactly as the
# reference does.
r_lambda_strategy = st.floats(min_value=-0.5, max_value=1.5,
                              allow_nan=False)


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------

class TestSchedulerEquivalence:
    @given(demands=demands_strategy, budget=budget_strategy,
           r_lambda=r_lambda_strategy, use_sc=st.booleans(),
           use_battery=st.booleans(), data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_single_call_matches_reference(self, demands, budget, r_lambda,
                                           use_sc, use_battery, data):
        available = data.draw(
            st.lists(st.booleans(), min_size=len(demands),
                     max_size=len(demands)))
        as_array = data.draw(st.booleans())
        arg = np.array(demands, dtype=float) if as_array else demands

        expected = reference_assign(demands, available, budget, r_lambda,
                                    use_sc=use_sc, use_battery=use_battery)
        actual = LoadScheduler().assign(arg, available, budget, r_lambda,
                                        use_sc=use_sc,
                                        use_battery=use_battery)
        assert actual == expected

    @given(st.lists(st.tuples(demands_strategy, budget_strategy,
                              r_lambda_strategy),
                    min_size=2, max_size=8),
           st.integers(min_value=2, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_stateful_sequence_matches_reference(self, calls, n):
        """Memo reuse across repeated and alternating inputs is invisible."""
        scheduler = LoadScheduler()
        available = [True] * n
        # Repeat each call twice so the identity/memo caches actually hit.
        for demands, budget, r_lambda in calls:
            demands = (demands * n)[:n]
            arr = np.array(demands, dtype=float)
            for _ in range(2):
                actual = scheduler.assign(arr, available, budget, r_lambda)
                expected = reference_assign(demands, available, budget,
                                            r_lambda)
                assert actual == expected

    @given(demands=demands_strategy, budget=budget_strategy)
    @settings(max_examples=40, deadline=None)
    def test_readonly_mask_identity_cache(self, demands, budget):
        """The read-only ndarray mask path equals the list path."""
        n = len(demands)
        mask = np.ones(n, dtype=bool)
        mask.setflags(write=False)
        scheduler = LoadScheduler()
        arr = np.array(demands, dtype=float)
        for _ in range(3):  # repeated calls hit the identity cache
            actual = scheduler.assign(arr, mask, budget, 0.5)
            expected = reference_assign(demands, [True] * n, budget, 0.5)
            assert actual == expected


# ----------------------------------------------------------------------
# Cluster draws
# ----------------------------------------------------------------------

class TestClusterDrawEquivalence:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_draws_match_per_server_loop(self, data):
        cluster = ServerCluster(prototype_cluster())
        n = cluster.num_servers
        demands = data.draw(st.lists(demand_strategy, min_size=n,
                                     max_size=n))
        # Random state mutations: shut some servers down, restart a few.
        to_shut = data.draw(st.lists(st.integers(0, n - 1), max_size=n,
                                     unique=True))
        for index in to_shut:
            cluster.servers[index].shut_down()
        to_restart = data.draw(st.lists(st.sampled_from(range(n)),
                                        max_size=len(to_shut),
                                        unique=True))
        for index in to_restart:
            if index in to_shut:
                cluster.servers[index].begin_restart()

        reference = [server.draw_w(demand)
                     for server, demand in zip(cluster.servers, demands)]
        actual = cluster.draws_w(demands)
        assert actual.tolist() == reference

        # And again from an ndarray input (the engine's fast path).
        actual_arr = cluster.draws_w(np.array(demands, dtype=float))
        assert actual_arr.tolist() == reference


# ----------------------------------------------------------------------
# KiBaM
# ----------------------------------------------------------------------

def _reference_kibam_step(state, current_a, dt):
    """Verbatim transcription of the pre-optimization inline formula."""
    k, c = state.k, state.c
    y1, y2, y0 = state.available_c, state.bound_c, state.total_c
    i = current_a
    ekt = math.exp(-k * dt)
    one_m_ekt = 1.0 - ekt
    new_y1 = (y1 * ekt
              + (y0 * k * c - i) * one_m_ekt / k
              - i * c * (k * dt - one_m_ekt) / k)
    new_y2 = (y2 * ekt
              + y0 * (1.0 - c) * one_m_ekt
              - i * (1.0 - c) * (k * dt - one_m_ekt) / k)
    available_capacity = state.capacity_c * c
    bound_capacity = state.capacity_c * (1.0 - c)
    new_y1 = min(max(new_y1, 0.0), available_capacity)
    new_y2 = min(max(new_y2, 0.0), bound_capacity)
    return new_y1, new_y2


state_strategy = st.builds(
    KiBaMState.at_soc,
    capacity_c=st.floats(min_value=100.0, max_value=1e6),
    c=st.floats(min_value=0.05, max_value=0.95),
    k=st.floats(min_value=1e-5, max_value=1.0),
    soc=st.floats(min_value=0.0, max_value=1.0))
current_strategy = st.floats(min_value=-50.0, max_value=50.0)
dt_strategy = st.floats(min_value=1e-3, max_value=3600.0)


class TestKiBaMEquivalence:
    @given(state=state_strategy, current=current_strategy, dt=dt_strategy)
    @settings(max_examples=120, deadline=None)
    def test_step_with_and_without_coefficients(self, state, current, dt):
        coeffs = kibam_coefficients(state.k, state.c, dt)
        with_coeffs = kibam_step(state, current, dt, coeffs)
        without = kibam_step(state, current, dt)
        reference = _reference_kibam_step(state, current, dt)
        assert with_coeffs.available_c == without.available_c
        assert with_coeffs.bound_c == without.bound_c
        assert (with_coeffs.available_c, with_coeffs.bound_c) == reference

    @given(state=state_strategy, dt=dt_strategy)
    @settings(max_examples=80, deadline=None)
    def test_max_currents_with_and_without_coefficients(self, state, dt):
        coeffs = kibam_coefficients(state.k, state.c, dt)
        assert (kibam_max_discharge_current(state, dt, coeffs)
                == kibam_max_discharge_current(state, dt))
        assert (kibam_max_charge_current(state, dt, coeffs)
                == kibam_max_charge_current(state, dt))


# ----------------------------------------------------------------------
# IPDU metering
# ----------------------------------------------------------------------

class TestIPDUEquivalence:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_dict_and_array_apis_agree(self, data):
        n = data.draw(st.integers(min_value=1, max_value=8))
        samples = data.draw(st.lists(
            st.lists(demand_strategy, min_size=n, max_size=n),
            min_size=1, max_size=20))
        off = data.draw(st.lists(st.integers(0, n - 1), max_size=n,
                                 unique=True))

        via_dict = IPDU(n, history_limit=8)
        via_array = IPDU(n, history_limit=8)
        for outlet in off:
            via_dict.set_outlet(outlet, False)
            via_array.set_outlet(outlet, False)

        for timestamp, sample in enumerate(samples):
            via_dict.record(float(timestamp),
                            {index: value
                             for index, value in enumerate(sample)})
            via_array.record_array(float(timestamp),
                                   np.array(sample, dtype=float))

        assert via_dict.energy_metered_j == via_array.energy_metered_j
        dict_history = via_dict.history()
        array_history = via_array.history()
        assert len(dict_history) == len(array_history)
        for lhs, rhs in zip(dict_history, array_history):
            assert lhs.timestamp_s == rhs.timestamp_s
            assert lhs.per_outlet_w == rhs.per_outlet_w
