"""Static analysis for the HEB reproduction (``python -m repro lint``).

A small AST-based lint framework plus a rule pack enforcing this
codebase's three load-bearing conventions:

* **unit discipline** (RPR1xx) — SI units with ``_w``/``_j``/``_c``
  name suffixes, conversions only through :mod:`repro.units`;
* **determinism** (RPR2xx) — code feeding the content-addressed result
  cache must not read clocks, entropy, or unordered containers;
* **exception hygiene** (RPR3xx) — raises stay inside the
  :class:`repro.errors.ReproError` contract, no broad ``except``.

On top of the per-file rules, three *whole-program* passes (see
:mod:`repro.analysis.semantics`) analyze every scanned module at once:
dimensional dataflow (RPR11x) infers physical units across assignments,
returns, and call-site bindings; cache-purity taint (RPR21x) flags
impurities reachable from the cache-feeding entry points; array
semantics (RPR4xx) and the batch-readiness audit (RPR5xx) track NumPy
shape, dtype, aliasing, and batchable-axis facts interprocedurally.
Reports render as text, JSON, or SARIF 2.1.0
(:mod:`repro.analysis.sarif`) for GitHub code scanning.  Results are
served incrementally from an on-disk cache keyed by content hashes
(:mod:`repro.analysis.cache`), and a baseline ratchet
(:mod:`repro.analysis.baseline`) lets legacy findings be adopted
without blocking new code.

Suppress a finding in place with ``# repro: noqa[RPR102]`` (or a bare
``# repro: noqa`` for every rule on that line); on a multi-line simple
statement the marker covers the whole statement.  See
``docs/analysis.md`` for how to add a rule.
"""

from __future__ import annotations

from .baseline import (
    DEFAULT_BASELINE_FILE,
    baseline_counts,
    load_baseline,
    new_findings,
    write_baseline,
)
from .cache import AnalysisCache, analysis_fingerprint
from .changed import changed_python_files
from .engine import (
    PARSE_ERROR_RULE_ID,
    LintReport,
    iter_python_files,
    lint_paths,
    lint_source,
)
from .findings import Finding
from .reporter import render_json, render_text
from .rules import FileContext, Rule, all_rules, register, resolve_rule_ids
from .sarif import render_sarif, sarif_document
from .suppressions import collect_suppressions, expand_suppressions

__all__ = [
    "AnalysisCache",
    "DEFAULT_BASELINE_FILE",
    "PARSE_ERROR_RULE_ID",
    "Finding",
    "FileContext",
    "LintReport",
    "Rule",
    "all_rules",
    "analysis_fingerprint",
    "baseline_counts",
    "changed_python_files",
    "collect_suppressions",
    "expand_suppressions",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "new_findings",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "sarif_document",
    "resolve_rule_ids",
    "write_baseline",
]
