"""Static analysis for the HEB reproduction (``python -m repro lint``).

A small AST-based lint framework plus a rule pack enforcing this
codebase's three load-bearing conventions:

* **unit discipline** (RPR1xx) — SI units with ``_w``/``_j``/``_c``
  name suffixes, conversions only through :mod:`repro.units`;
* **determinism** (RPR2xx) — code feeding the content-addressed result
  cache must not read clocks, entropy, or unordered containers;
* **exception hygiene** (RPR3xx) — raises stay inside the
  :class:`repro.errors.ReproError` contract, no broad ``except``.

Suppress a finding in place with ``# repro: noqa[RPR102]`` (or a bare
``# repro: noqa`` for every rule on that line).  See ``docs/analysis.md``
for how to add a rule.
"""

from __future__ import annotations

from .engine import (
    PARSE_ERROR_RULE_ID,
    LintReport,
    iter_python_files,
    lint_paths,
    lint_source,
)
from .findings import Finding
from .reporter import render_json, render_text
from .rules import FileContext, Rule, all_rules, register
from .suppressions import collect_suppressions

__all__ = [
    "PARSE_ERROR_RULE_ID",
    "Finding",
    "FileContext",
    "LintReport",
    "Rule",
    "all_rules",
    "collect_suppressions",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
]
