"""Project call graph: who calls whom, resolved through the index.

Resolution is intentionally static and conservative.  The shapes that
resolve (and are exercised by the adversarial fixture tests):

* module-level functions, through plain, aliased, relative, and star
  imports;
* ``self.method()`` and ``cls`` methods, walking project base classes;
* ``self.attr.method()`` where ``attr`` was assigned a known class
  instance (or annotated) anywhere in the class;
* ``obj.method()`` where ``obj`` is a parameter or local whose class is
  known from an annotation or a ``obj = ClassName(...)`` assignment;
* ``ClassName(...)`` constructor calls (edge to ``__init__`` when one
  exists, else to the class itself for dataclass-style classes);
* ``functools.partial(f, ...)`` (edge to ``f``);
* decorated functions (the decorator is ignored; the definition is the
  callee);
* recursion and call cycles (the graph is just edges; reachability
  tracks visited nodes).

What does *not* resolve — values pulled out of dicts, higher-order
callbacks, ``getattr`` — simply produces no edge; the purity pass's
guarantee is therefore "everything the graph can see", which the docs
spell out.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .symbols import (
    FUNCTION_NODES,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)


def _dotted(expr: ast.expr) -> Optional[str]:
    chain: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    chain.append(node.id)
    return ".".join(reversed(chain))


@dataclass
class CallSite:
    """One resolved call expression inside a project function."""

    caller: str
    callee: str
    call: ast.Call
    path: str
    #: True when ``callee`` is a project function/class qualname.
    is_project: bool
    #: Function whose signature binds this site's arguments (the target
    #: function, or a constructor's ``__init__``); None when binding is
    #: not meaningful (``functools.partial``, externals).
    bind_function: Optional[FunctionInfo] = None
    #: Dataclass-style class bound by keyword fields (no ``__init__``).
    bind_class: Optional[ClassInfo] = None
    #: Skip the leading ``self``/``cls`` slot when binding positionals.
    skip_first: bool = False


@dataclass
class CallGraph:
    """Edges between project functions plus every resolved call site."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    sites: List[CallSite] = field(default_factory=list)

    def add_edge(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    def callees(self, caller: str) -> Set[str]:
        return self.edges.get(caller, set())

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.edges.values())

    def reachable_from(self, roots: Sequence[str],
                       ) -> Tuple[Set[str], Dict[str, str]]:
        """BFS closure over edges; returns (reachable, parent map)."""
        reachable: Set[str] = set()
        parents: Dict[str, str] = {}
        queue = [root for root in roots]
        reachable.update(queue)
        while queue:
            current = queue.pop(0)
            for callee in sorted(self.edges.get(current, ())):
                if callee not in reachable:
                    reachable.add(callee)
                    parents[callee] = current
                    queue.append(callee)
        return reachable, parents

    def chain_to(self, qualname: str, parents: Dict[str, str],
                 limit: int = 6) -> List[str]:
        """Root-to-function path recorded by :meth:`reachable_from`."""
        chain = [qualname]
        while qualname in parents and len(chain) < limit:
            qualname = parents[qualname]
            chain.append(qualname)
        return list(reversed(chain))


def local_types(index: ProjectIndex, function: FunctionInfo,
                ) -> Dict[str, str]:
    """name -> class qualname for parameters and simple locals."""
    module = index.modules[function.module]
    env: Dict[str, str] = {}
    node = function.node
    assert isinstance(node, FUNCTION_NODES)
    for arg in (*node.args.posonlyargs, *node.args.args,
                *node.args.kwonlyargs):
        resolved = index.resolve_annotation(module, arg.annotation)
        if resolved:
            env[arg.arg] = resolved
    for stmt in iter_function_nodes(node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                cls = _class_of_call(index, module, stmt.value)
                if cls:
                    env[target.id] = cls
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            if isinstance(target, ast.Name):
                resolved = index.resolve_annotation(module, stmt.annotation)
                if resolved:
                    env[target.id] = resolved
    return env


def _class_of_call(index: ProjectIndex, module: ModuleInfo,
                   value: ast.expr) -> Optional[str]:
    if not isinstance(value, ast.Call):
        return None
    dotted = _dotted(value.func)
    if dotted is None:
        return None
    resolved = index.resolve_name(module, dotted)
    return resolved if resolved in index.classes else None


def iter_function_nodes(node: ast.AST):
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (*FUNCTION_NODES, ast.ClassDef)):
            # Nested definitions are separate FunctionInfo entries; only
            # their decorators/defaults run in this scope.
            stack.extend(child.decorator_list)
            if isinstance(child, FUNCTION_NODES):
                stack.extend(child.args.defaults)
                stack.extend(d for d in child.args.kw_defaults if d)
            continue
        stack.extend(ast.iter_child_nodes(child))


class _FunctionResolver:
    """Resolves call expressions inside one function."""

    def __init__(self, index: ProjectIndex,
                 function: FunctionInfo) -> None:
        self.index = index
        self.function = function
        self.module = index.modules[function.module]
        self.locals = local_types(index, function)
        node = function.node
        assert isinstance(node, FUNCTION_NODES)
        self.local_functions = {
            stmt.name: f"{function.qualname}.{stmt.name}"
            for stmt in ast.walk(node)
            if isinstance(stmt, FUNCTION_NODES) and stmt is not node}
        self.own_class = (index.classes.get(function.class_qualname)
                          if function.class_qualname else None)

    def resolve(self, call: ast.Call) -> Optional[CallSite]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_plain(call, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(call, func)
        return None

    # -- helpers --------------------------------------------------------

    def _site(self, call: ast.Call, callee: str, *,
              is_project: bool,
              bind_function: Optional[FunctionInfo] = None,
              bind_class: Optional[ClassInfo] = None,
              skip_first: bool = False) -> CallSite:
        return CallSite(caller=self.function.qualname, callee=callee,
                        call=call, path=self.function.path,
                        is_project=is_project,
                        bind_function=bind_function,
                        bind_class=bind_class, skip_first=skip_first)

    def _function_site(self, call: ast.Call, qualname: str,
                       skip_first: bool = False) -> CallSite:
        target = self.index.functions[qualname]
        # ``self.helper(...)`` on a @staticmethod has no implicit slot.
        return self._site(call, qualname, is_project=True,
                          bind_function=target,
                          skip_first=skip_first and target.binds_instance())

    def _constructor_site(self, call: ast.Call,
                          class_qualname: str) -> CallSite:
        cls = self.index.classes[class_qualname]
        init = self.index.lookup_method(class_qualname, "__init__")
        if init is not None:
            return self._site(call, init, is_project=True,
                              bind_function=self.index.functions[init],
                              skip_first=True)
        return self._site(call, class_qualname, is_project=True,
                          bind_class=cls)

    def _resolve_qualified(self, call: ast.Call,
                           dotted: str) -> Optional[CallSite]:
        resolved = self.index.resolve_name(self.module, dotted)
        if resolved in self.index.functions:
            target = self.index.functions[resolved]
            # ``ClassName.method(x)`` binds ``cls`` implicitly only for
            # classmethods; plain methods called unbound take ``self``
            # as an explicit first argument.
            implicit_cls = (target.is_method
                            and "classmethod" in target.decorator_names())
            return self._function_site(call, resolved,
                                       skip_first=implicit_cls)
        if resolved in self.index.classes:
            return self._constructor_site(call, resolved)
        if resolved != dotted or "." in dotted:
            return self._site(call, resolved, is_project=False)
        return None

    def _resolve_plain(self, call: ast.Call,
                       name: str) -> Optional[CallSite]:
        if name in self.local_functions:
            qualname = self.local_functions[name]
            if qualname in self.index.functions:
                return self._function_site(call, qualname)
        site = self._resolve_qualified(call, name)
        if site is not None:
            return site
        # Unresolved bare name: a builtin or shadowed callable.
        return self._site(call, name, is_project=False)

    def _resolve_attribute(self, call: ast.Call,
                           func: ast.Attribute) -> Optional[CallSite]:
        method = func.attr
        base = func.value
        # self.method() / cls.method()
        if (isinstance(base, ast.Name) and base.id in ("self", "cls")
                and self.own_class is not None):
            target = self.index.lookup_method(
                self.own_class.qualname, method)
            if target is not None:
                return self._function_site(call, target, skip_first=True)
            return None
        # self.attr.method()
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self" and self.own_class is not None):
            attr_class = self.own_class.attr_types.get(base.attr)
            if attr_class is not None:
                target = self.index.lookup_method(attr_class, method)
                if target is not None:
                    return self._function_site(call, target,
                                               skip_first=True)
            return None
        # local_var.method() with a known instance type
        if isinstance(base, ast.Name) and base.id in self.locals:
            target = self.index.lookup_method(self.locals[base.id], method)
            if target is not None:
                return self._function_site(call, target, skip_first=True)
            return None
        # Fully-dotted module access (units.hours, np.random.rand, ...)
        dotted = _dotted(func)
        if dotted is not None:
            return self._resolve_qualified(call, dotted)
        return None


def build_call_graph(index: ProjectIndex,
                     virtual_dispatch: bool = True) -> CallGraph:
    """Resolve every call site in every indexed function.

    Args:
        index: The project symbol table.
        virtual_dispatch: Also add edges from a resolved method to its
            overrides in project subclasses (sound for reachability;
            the recorded :class:`CallSite` keeps the static target).
    """
    graph = CallGraph()
    for qualname in sorted(index.functions):
        function = index.functions[qualname]
        resolver = _FunctionResolver(index, function)
        node = function.node
        for child in iter_function_nodes(node):
            if not isinstance(child, ast.Call):
                continue
            site = resolver.resolve(child)
            if site is None:
                continue
            if site.callee == "functools.partial" and child.args:
                target = _partial_target(resolver, child)
                if target is not None:
                    graph.add_edge(qualname, target)
                    graph.sites.append(CallSite(
                        caller=qualname, callee=target, call=child,
                        path=function.path, is_project=True))
                continue
            graph.sites.append(site)
            if not site.is_project:
                continue
            graph.add_edge(qualname, site.callee)
            if virtual_dispatch and site.bind_function is not None:
                bound = site.bind_function
                if bound.class_qualname is not None:
                    for override in index.override_methods(
                            bound.class_qualname, bound.name):
                        graph.add_edge(qualname, override)
    return graph


def _partial_target(resolver: _FunctionResolver,
                    call: ast.Call) -> Optional[str]:
    """The project function a ``functools.partial(f, ...)`` wraps."""
    dotted = _dotted(call.args[0])
    if dotted is None:
        return None
    resolved = resolver.index.resolve_name(resolver.module, dotted)
    if resolved in resolver.index.functions:
        return resolved
    if resolved in resolver.index.classes:
        init = resolver.index.lookup_method(resolved, "__init__")
        return init or resolved
    return None
