"""Whole-program analysis layer (``repro.analysis.semantics``).

The per-file rules in :mod:`repro.analysis.checkers` see one module at a
time; this package builds a *project-wide* view — a symbol table over
every scanned module plus a call graph resolving the common call shapes
(module functions through imports, ``self.method()``, annotated
parameters, ``ClassName(...)`` constructors, ``functools.partial``) —
and runs two interprocedural passes on top of it:

* **dimensional dataflow** (RPR11x, :mod:`.dimensions`) — infers a
  physical unit for every name from suffixes, ``repro.units`` helper
  signatures, and literals, propagates it through assignments, returns,
  and call-site argument binding, and flags cross-function mismatches a
  single-file rule cannot see;
* **cache-purity taint** (RPR21x, :mod:`.purity`) — computes the set of
  functions reachable from the cache-feeding entry points
  (``execute_request``, ``Simulation.run``) and flags any impurity on a
  reachable path (clocks, unseeded RNGs, env/filesystem reads,
  unordered-set iteration, mutable module-global writes), wherever the
  function lives;
* **array semantics** (RPR4xx/RPR5xx, :mod:`.arrays`) — an abstract
  value per name tracking NumPy shape (symbolic dims), dtype,
  view-vs-copy provenance, cache-aliasing taint, and batch-axis
  exposure, flagging dtype narrowing, impossible broadcasts, mutations
  of cache-aliased arrays, uninitialized ``np.empty`` reads, and the
  batch-readiness debt ROADMAP item 2 must clear;
* **twin parity** (RPR601/602, :mod:`.twins`) — checks the declared
  scalar↔batched class pairs (``Simulation``↔``BatchSimulation`` and
  friends) for public methods, attributes, and numeric constants with
  no batched counterpart or with drifted signatures/values;
* **lane isolation** (RPR603/604, :mod:`.lanes`) — reuses the array
  lattice's lane-axis facts to flag writes to lane-leading arrays that
  skip the lane dimension, scalar state shared across per-lane replay
  loops, and lane-axis reductions outside sanctioned points;
* **concurrency safety** (RPR701–704, :mod:`.concurrency`) — finds the
  process-pool boundaries, closes over the worker-reachable functions,
  and flags unpicklable submissions, worker-side module-global writes,
  shared RNG/cache state, and blocking calls in ``async def`` bodies.

The passes are wired into the lint engine: their rule ids register in
the ordinary registry, and :func:`run_whole_program` is invoked by
:func:`repro.analysis.engine.lint_paths` whenever one of them is
selected.
"""

from __future__ import annotations

from .analyzer import run_whole_program
from .arrays import ArrayAnalysis, ArrayValue, run_array_pass
from .callgraph import CallGraph, CallSite, build_call_graph
from .concurrency import run_concurrency_pass
from .lanes import run_lane_pass
from .twins import TWIN_REGISTRY, TwinPair, run_twin_pass
from .symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    SourceModule,
    build_project_index,
    module_name_for_path,
)

__all__ = [
    "ArrayAnalysis",
    "ArrayValue",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "SourceModule",
    "TWIN_REGISTRY",
    "TwinPair",
    "build_call_graph",
    "build_project_index",
    "module_name_for_path",
    "run_array_pass",
    "run_concurrency_pass",
    "run_lane_pass",
    "run_twin_pass",
    "run_whole_program",
]
