"""Pass 3: interprocedural array semantics (RPR4xx) and batch readiness (RPR5xx).

The batched multi-scenario engine (ROADMAP item 2) will thread a new
leading scenario axis through every NumPy array in ``sim/``,
``server/``, ``storage/``, and ``faults/`` — exactly the kind of change
where a silent broadcast, a float32 narrowing, or a mutation of an
array aliased into a cache destroys the bit-exactness the golden
fixtures guarantee.  This pass learns array semantics *before* that
refactor: an abstract value per name tracking

* **shape rank with symbolic dims** — ``np.zeros((num_servers,
  num_samples))`` carries ``(num_servers, num_samples)``; literal ints
  stay literal, anything unresolvable is ``?`` (compatible with
  everything);
* **dtype** — from ``dtype=`` keywords, NumPy scalar types, and the
  float64 creation defaults;
* **view vs copy** — basic slicing, ``asarray``/``ascontiguousarray``,
  and ``.T`` keep the provenance of their base; ``np.array``,
  ``.copy()``, ``astype``, ``tolist`` and arithmetic results are fresh;
* **aliasing taint** — the set of cache/memo cells (``Class.attr`` or
  ``module.global`` labels) a value may share memory with.  Loading an
  instance-attribute array taints the loaded value; storing a local
  into an instance attribute or module-level container taints the
  local.  Taint is *forward-only*: handing a locally-built array to a
  constructor does not retroactively taint the local (the ubiquitous
  fill-then-hand-over pattern stays clean);
* **batchable** — whether the value's leading axis is a per-server /
  per-outlet axis that the batch refactor will displace.  Seeded from
  symbolic creation dims (``num_servers`` …) and the engine's state
  vocabulary (``demands_w``, ``draws_w``, ``values_w``,
  ``powered_mask``), and preserved through views, ``tolist()`` and
  arithmetic.

Propagation is the same flow-insensitive fixpoint as the RPR110-113
dimensional pass: assignments, ``return`` values, call-site argument
binding, and attribute stores, iterated over the whole project until
the environment stops changing.  Flow-insensitivity is a feature and a
boundary at once: a mutation is flagged if *any* binding of the name
may alias a cache, so proving a copy safe means giving the copy its own
name — which is also what makes the code reviewable.

Findings:

* **RPR401** — dtype narrowing (float64 -> float32/float16) or mixed
  float32/float64 arithmetic inside ``sim|server|storage|faults``;
* **RPR402** — statically incompatible broadcast shapes at an operator
  or elementwise ``np.*`` call site (two known, conflicting dims);
* **RPR403** — in-place mutation (``+=``, ``[...] =``, ``out=``,
  mutator methods) of an array aliased into cached state, in a
  function with no version-counter/dirty-flag invalidation;
* **RPR404** — ``np.empty`` allocation whose elements may be read
  before every element is assigned;
* **RPR501** — hardcoded non-negative ``axis=`` or literal leading
  index on a batchable array (a leading scenario axis shifts both);
* **RPR502** — Python-level loop or builtin reduction over a batchable
  axis in an engine/scheduler hot path;
* **RPR503** — ``float()``/``.item()`` scalarization of a batchable
  array or of a reduction over one, in a hot path.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..rules import Rule, register
from .callgraph import (
    CallGraph,
    CallSite,
    iter_function_nodes,
    local_types,
)
from .symbols import FunctionInfo, ModuleInfo, ProjectIndex

#: Placeholder dim compatible with every other dim.
UNKNOWN_DIM = "?"

#: Symbolic dims whose axis the scenario-batch refactor will displace.
BATCHABLE_DIMS = frozenset({
    "num_servers", "n_servers", "server_count",
    "num_outlets", "n_outlets", "outlet_count",
})

#: Engine state vocabulary: names whose leading axis is per-server.
BATCHABLE_NAMES = frozenset({
    "demands_w", "draws_w", "values_w", "powered_mask",
})

#: Module basenames whose tick/assign loops are batch-critical.
HOT_PATH_MODULES = frozenset({"engine", "scheduler"})

#: Path/module segments inside which RPR401 dtype discipline applies.
ARRAY_SCOPE_SEGMENTS = frozenset({"sim", "server", "storage", "faults"})

#: Attribute writes that count as cache invalidation evidence.
INVALIDATION_ATTR_RE = re.compile(
    r"version|dirty|stale|generation|revision")

#: Method calls that count as cache invalidation evidence.
INVALIDATION_CALL_RE = re.compile(r"invalidate|mark_\w*dirty|bump")

#: Count-like names that may stand for a single symbolic dim.
_COUNT_NAME_RE = re.compile(
    r"(?:^|_)(?:n|num|count|len|size|limit|samples|servers|outlets)"
    r"(?:_|$)|(?:count|samples|servers|outlets|limit|size)$")

#: ndarray methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "fill", "sort", "partition", "put", "resize", "setfield", "itemset",
})

#: ndarray methods that reduce away an axis (or the whole array).
_REDUCTION_METHODS = frozenset({
    "sum", "max", "min", "mean", "prod", "std", "var",
    "argmax", "argmin", "any", "all", "dot",
})

#: np.* creation calls taking an explicit shape first argument.
_SHAPE_CREATORS = frozenset({"zeros", "ones", "empty", "full"})

#: np.* calls returning an array shaped like their first argument.
_LIKE_CREATORS = frozenset({
    "zeros_like", "ones_like", "empty_like", "full_like",
})

#: np.* calls that may alias (view) their argument.
_ALIASING_CALLS = frozenset({
    "asarray", "ascontiguousarray", "asfortranarray", "atleast_1d",
    "ravel", "reshape", "broadcast_to",
})

#: np.* calls that always copy their argument.
_COPYING_CALLS = frozenset({"array", "copy"})

#: np.* elementwise/broadcasting binary calls (RPR402 checks these).
_ELEMENTWISE_CALLS = frozenset({
    "add", "subtract", "multiply", "divide", "true_divide",
    "floor_divide", "power", "mod", "hypot", "arctan2",
    "minimum", "maximum", "fmin", "fmax", "where", "clip", "copysign",
})

#: np.* reductions (RPR503 flags float() of these over batchables).
_NP_REDUCTIONS = frozenset({
    "sum", "max", "min", "mean", "prod", "median", "percentile",
    "amax", "amin", "nansum", "nanmax", "nanmin", "nanmean",
    "dot", "vdot", "inner", "trapz", "ptp", "count_nonzero",
})

#: Builtins that reduce or materialize an iterable at Python level.
_PY_REDUCERS = frozenset({
    "sum", "sorted", "min", "max", "list", "tuple", "any", "all",
})

#: dtype spellings -> canonical label.
_DTYPE_LABELS = {
    "float64": "float64", "double": "float64", "float_": "float64",
    "float32": "float32", "single": "float32",
    "float16": "float16", "half": "float16",
    "int64": "int64", "int32": "int32", "intp": "intp", "int_": "int64",
    "bool_": "bool", "bool": "bool",
    "float": "float64", "int": "int64",
}

#: Float dtypes ordered widest-first (for narrowing detection).
_FLOAT_WIDTH = {"float64": 64, "float32": 32, "float16": 16}


@dataclass(frozen=True)
class ArrayValue:
    """Abstract value for one binding of a (possible) NumPy array."""

    #: Some binding of this value is an ndarray.
    is_array: bool = False
    #: Symbolic per-axis dims, or None when rank/dims are unknown.
    shape: Optional[Tuple[str, ...]] = None
    #: Canonical dtype label, or None when unknown/ambiguous.
    dtype: Optional[str] = None
    #: Allocated via np.empty and possibly never fully initialized.
    uninit: bool = False
    #: Leading axis is a per-server/per-outlet (batchable) axis.
    batchable: bool = False
    #: Cache/memo cells this value may share memory with.
    taints: FrozenSet[str] = frozenset()


def _merge_dim(a: str, b: str) -> str:
    if a == b:
        return a
    if a == UNKNOWN_DIM:
        return b
    if b == UNKNOWN_DIM:
        return a
    return UNKNOWN_DIM


def _merge_shapes(a: Optional[Tuple[str, ...]],
                  b: Optional[Tuple[str, ...]],
                  ) -> Optional[Tuple[str, ...]]:
    if a is None:
        return b
    if b is None:
        return a
    if len(a) != len(b):
        return None
    return tuple(_merge_dim(da, db) for da, db in zip(a, b))


def join_values(current: Optional[ArrayValue],
                incoming: Optional[ArrayValue]) -> Optional[ArrayValue]:
    """Least upper bound of two abstract values (None = no fact)."""
    if incoming is None:
        return current
    if current is None:
        return incoming
    return ArrayValue(
        is_array=current.is_array or incoming.is_array,
        shape=_merge_shapes(current.shape, incoming.shape),
        dtype=(current.dtype if current.dtype == incoming.dtype
               else current.dtype or incoming.dtype
               if None in (current.dtype, incoming.dtype) else None),
        uninit=current.uninit or incoming.uninit,
        batchable=current.batchable or incoming.batchable,
        taints=current.taints | incoming.taints)


def broadcast_conflict(a: Tuple[str, ...], b: Tuple[str, ...],
                       ) -> Optional[Tuple[str, str]]:
    """First provably incompatible dim pair under broadcasting rules.

    Dims align from the trailing end.  ``?`` matches anything, ``1``
    broadcasts, a symbolic dim is only *provably* incompatible with a
    different symbolic dim or another literal is with another literal;
    symbolic-vs-literal is unknown and passes.
    """
    for da, db in zip(reversed(a), reversed(b)):
        if UNKNOWN_DIM in (da, db) or da == db or "1" in (da, db):
            continue
        a_lit, b_lit = da.isdigit(), db.isdigit()
        if a_lit == b_lit:
            return (da, db)
    return None


def _format_shape(shape: Tuple[str, ...]) -> str:
    return "(" + ", ".join(shape) + ("," if len(shape) == 1 else "") + ")"


def _is_full_slice(node: ast.expr) -> bool:
    return (isinstance(node, ast.Slice) and node.lower is None
            and node.upper is None and node.step is None)


def _is_int_constant(node: ast.expr) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, int)
            and not isinstance(node.value, bool))


def _int_literal(node: ast.expr) -> Optional[int]:
    """Integer value of a literal, unwrapping unary minus (``-1``)."""
    if _is_int_constant(node):
        return node.value  # type: ignore[attr-defined]
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub) \
            and _is_int_constant(node.operand):
        return -node.operand.value  # type: ignore[attr-defined]
    return None


# ----------------------------------------------------------------------
# Registered rule markers (logic lives in ArrayAnalysis)
# ----------------------------------------------------------------------

@register
class DtypeNarrowingRule(Rule):
    """No float64 -> float32 narrowing in the bit-exact core.

    Whole-program: the golden fixtures hold at 1e-9 only in float64;
    an ``astype(np.float32)`` or a mixed float32/float64 expression in
    ``sim|server|storage|faults`` silently loses the guarantee.
    """

    id = "RPR401"
    whole_program = True


@register
class BroadcastShapeRule(Rule):
    """No statically incompatible broadcast at operators or np calls.

    Whole-program: shapes flow through assignments, returns and call
    bindings, so ``per_server + per_outlet`` flags even when the two
    arrays were created in different modules.
    """

    id = "RPR402"
    whole_program = True


@register
class AliasedMutationRule(Rule):
    """No in-place mutation of arrays aliased into cached state.

    Whole-program: an array stored into a ``ServerCluster`` cache or a
    scheduler/KiBaM memo shares memory with it; mutating it later
    silently corrupts the memo unless the function also bumps a
    version counter or dirty flag.  Copies must be *provably* fresh
    under flow-insensitive analysis — give the copy its own name.
    """

    id = "RPR403"
    whole_program = True


@register
class UninitializedEmptyRule(Rule):
    """No np.empty read before every element is assigned.

    Whole-program: ``np.empty`` contents are garbage; unless the
    function fully initializes the buffer (full-slice store, ``fill``,
    or a store under every loop index), any read may observe it.
    """

    id = "RPR404"
    whole_program = True


@register
class HardcodedAxisRule(Rule):
    """No hardcoded axis=0 / literal leading index on batchable arrays.

    Batch-readiness: the scenario-batch refactor prepends a scenario
    axis to per-server state arrays, so ``axis=0`` and ``arr[0]`` stop
    meaning "the server axis"; negative axes survive the change.
    """

    id = "RPR501"
    whole_program = True


@register
class PythonLoopOverBatchAxisRule(Rule):
    """No Python-level loop over a batchable axis in hot paths.

    Batch-readiness: a ``for`` loop (or ``sum``/``sorted`` builtin)
    over per-server state in engine/scheduler code is exactly the code
    the batched engine cannot vectorize; each occurrence is batch debt.
    """

    id = "RPR502"
    whole_program = True


@register
class ScalarizedBatchValueRule(Rule):
    """No float()/.item() scalarization of batchable intermediates.

    Batch-readiness: collapsing a per-server array (or a reduction
    over one) to a Python scalar pins the computation to one scenario;
    keeping it an array lets the batch axis ride through.
    """

    id = "RPR503"
    whole_program = True


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------

#: Environment keys: ("local", fn_qual, name) / ("attr", cls_qual, name)
#: / ("global", module, name) / ("ret", fn_qual).
_EnvKey = Tuple[str, ...]


class ArrayAnalysis:
    """Flow-insensitive array-provenance inference over the project."""

    #: Fixpoint guard; facts only accumulate, so convergence is fast.
    MAX_ROUNDS = 10

    def __init__(self, index: ProjectIndex, graph: CallGraph) -> None:
        self.index = index
        self.graph = graph
        self.site_by_call: Dict[int, CallSite] = {
            id(site.call): site for site in graph.sites}
        self.env: Dict[_EnvKey, ArrayValue] = {}
        self._invalidates: Dict[str, bool] = {}
        self._locals_cache: Dict[str, Dict[str, str]] = {}
        #: (class qualname, attr) -> class qualname, inferred from
        #: ``self.x = param`` passthrough stores (attr_types only sees
        #: constructor calls and annotations).
        self.attr_classes: Dict[Tuple[str, str], str] = {}
        #: (fn qualname, local name) -> symbolic dims, for the common
        #: ``shape = (n, num_servers); np.zeros(shape)`` pattern: a
        #: local bound once to a literal tuple of dims resolves as that
        #: shape at creation calls.  Rebinding the name to a second,
        #: different tuple drops the fact (flow-insensitive safety).
        self._local_tuple_shapes: Dict[Tuple[str, str],
                                       Optional[Tuple[str, ...]]] = {}
        for fn in index.functions.values():
            for node in iter_function_nodes(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, (ast.Tuple, ast.List)):
                    continue
                dims = tuple(self._dim_label(elt)
                             for elt in node.value.elts)
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    key = (fn.qualname, target.id)
                    if key in self._local_tuple_shapes \
                            and self._local_tuple_shapes[key] != dims:
                        self._local_tuple_shapes[key] = None
                    else:
                        self._local_tuple_shapes[key] = dims
        #: (fn qualname, local name) pairs with at least one element
        #: store (``x[i] = ...`` / ``x.fill(...)``).  Flow-insensitive
        #: optimism: any store clears ``uninit`` for interprocedural
        #: flow — the precise per-function coverage check (RPR404)
        #: still analyzes direct ``np.empty`` allocations exactly.
        self._element_stores: Set[Tuple[str, str]] = set()
        for fn in index.functions.values():
            for node in iter_function_nodes(fn.node):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                elif isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "fill" \
                        and isinstance(node.func.value, ast.Name):
                    self._element_stores.add(
                        (fn.qualname, node.func.value.id))
                for target in targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name):
                        self._element_stores.add(
                            (fn.qualname, target.value.id))
        for fn in index.functions.values():
            if not fn.class_qualname:
                continue
            types = local_types(index, fn)
            for node in iter_function_nodes(fn.node):
                if not isinstance(node, ast.Assign) \
                        or not isinstance(node.value, ast.Name):
                    continue
                cls = types.get(node.value.id)
                if cls is None:
                    continue
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        self.attr_classes.setdefault(
                            (fn.class_qualname, target.attr), cls)

    # -- environment ----------------------------------------------------

    def _join(self, key: _EnvKey, value: Optional[ArrayValue]) -> None:
        if value is None:
            return
        self.env[key] = join_values(self.env.get(key), value)

    def _lookup(self, key: _EnvKey) -> Optional[ArrayValue]:
        return self.env.get(key)

    # -- shared resolution helpers --------------------------------------

    def _np_callee(self, call: ast.Call) -> Optional[str]:
        """``numpy.``-stripped target of an external call, or None."""
        site = self.site_by_call.get(id(call))
        if site is None or site.is_project:
            return None
        if site.callee.startswith("numpy."):
            return site.callee[len("numpy."):]
        return None

    def _dtype_label(self, expr: Optional[ast.expr]) -> Optional[str]:
        if expr is None:
            return None
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return _DTYPE_LABELS.get(expr.value)
        if isinstance(expr, ast.Attribute):
            return _DTYPE_LABELS.get(expr.attr)
        if isinstance(expr, ast.Name):
            return _DTYPE_LABELS.get(expr.id)
        return None

    def _dim_label(self, expr: ast.expr) -> str:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int) \
                and not isinstance(expr.value, bool):
            return str(expr.value)
        name = None
        if isinstance(expr, ast.Name):
            name = expr.id
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
        if name and _COUNT_NAME_RE.search(name):
            return name
        return UNKNOWN_DIM

    def _shape_from_arg(self, expr: ast.expr,
                        fn: Optional[FunctionInfo] = None,
                        ) -> Optional[Tuple[str, ...]]:
        if isinstance(expr, (ast.Tuple, ast.List)):
            return tuple(self._dim_label(elt) for elt in expr.elts)
        if isinstance(expr, ast.Name) and fn is not None:
            dims = self._local_tuple_shapes.get((fn.qualname, expr.id))
            if dims is not None:
                return dims
        # A scalar count: rank-1.  Non-count names could hold a tuple,
        # so they become rank-1 (?,) — broadcast checks treat ? as
        # compatible with everything, keeping the guess harmless.
        return (self._dim_label(expr),)

    @staticmethod
    def _leading_batchable(shape: Optional[Tuple[str, ...]]) -> bool:
        return bool(shape) and shape[0] in BATCHABLE_DIMS

    def _keyword(self, call: ast.Call, name: str) -> Optional[ast.expr]:
        for keyword in call.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    # -- abstract evaluation --------------------------------------------

    def value_of(self, expr: ast.expr,
                 fn: Optional[FunctionInfo]) -> Optional[ArrayValue]:
        """Abstract value of ``expr`` (None = no array fact)."""
        if isinstance(expr, ast.Name):
            value = None
            if fn is not None:
                value = self._lookup(("local", fn.qualname, expr.id))
                if value is None:
                    module = self.index.modules.get(fn.module)
                    if module is not None and expr.id in module.globals:
                        value = self._lookup(
                            ("global", fn.module, expr.id))
            if value is not None and value.uninit and fn is not None \
                    and (fn.qualname, expr.id) in self._element_stores:
                value = replace(value, uninit=False)
            if expr.id in BATCHABLE_NAMES:
                seed = ArrayValue(batchable=True)
                return join_values(value, seed)
            return value
        if isinstance(expr, ast.Attribute):
            return self._value_of_attribute(expr, fn)
        if isinstance(expr, ast.Call):
            return self._value_of_call(expr, fn)
        if isinstance(expr, ast.Subscript):
            return self._value_of_subscript(expr, fn)
        if isinstance(expr, ast.BinOp):
            return self._value_of_binop(expr, fn)
        if isinstance(expr, ast.UnaryOp):
            return self.value_of(expr.operand, fn)
        if isinstance(expr, ast.IfExp):
            return join_values(self.value_of(expr.body, fn),
                               self.value_of(expr.orelse, fn))
        return None

    def _attr_class(self, cls_qual: str, attr: str) -> Optional[str]:
        info = self.index.classes.get(cls_qual)
        if info is not None and attr in info.attr_types:
            return info.attr_types[attr]
        return self.attr_classes.get((cls_qual, attr))

    def _local_classes(self, fn: FunctionInfo) -> Dict[str, str]:
        """name -> class qualname for params, locals and attr aliases."""
        cached = self._locals_cache.get(fn.qualname)
        if cached is not None:
            return cached
        env = dict(local_types(self.index, fn))
        if fn.class_qualname:
            for node in iter_function_nodes(fn.node):
                if isinstance(node, ast.Assign) \
                        and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name) \
                        and isinstance(node.value, ast.Attribute) \
                        and isinstance(node.value.value, ast.Name) \
                        and node.value.value.id == "self":
                    cls = self._attr_class(fn.class_qualname,
                                           node.value.attr)
                    if cls is not None:
                        env.setdefault(node.targets[0].id, cls)
        self._locals_cache[fn.qualname] = env
        return env

    def _attr_owner(self, base: ast.expr,
                    fn: Optional[FunctionInfo]) -> Optional[str]:
        """Class qualname owning ``base`` in ``base.attr``, if known."""
        if fn is None:
            return None
        if isinstance(base, ast.Name):
            if base.id == "self" and fn.class_qualname:
                return fn.class_qualname
            return self._local_classes(fn).get(base.id)
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self" and fn.class_qualname):
            return self._attr_class(fn.class_qualname, base.attr)
        return None

    def _value_of_attribute(self, expr: ast.Attribute,
                            fn: Optional[FunctionInfo],
                            ) -> Optional[ArrayValue]:
        if expr.attr == "T":
            base = self.value_of(expr.value, fn)
            if base is not None and base.is_array:
                shape = (tuple(reversed(base.shape))
                         if base.shape else None)
                return replace(base, shape=shape, batchable=False)
            return None
        cls_qual = self._attr_owner(expr.value, fn)
        value = None
        if cls_qual is not None:
            value = self._lookup(("attr", cls_qual, expr.attr))
            if value is None:
                value = self._property_value(cls_qual, expr.attr)
            if value is not None and value.is_array:
                # An instance-attribute array *is* cached state: loads
                # alias it, so the loaded value carries its label.
                label = f"{cls_qual.rsplit('.', 1)[-1]}.{expr.attr}"
                value = replace(value, taints=value.taints | {label})
        if expr.attr in BATCHABLE_NAMES:
            return join_values(value, ArrayValue(batchable=True))
        return value

    def _property_value(self, cls_qual: str,
                        attr: str) -> Optional[ArrayValue]:
        """Return value of an ``@property`` accessor, if ``attr`` is one."""
        method_qual = self.index.lookup_method(cls_qual, attr)
        if method_qual is None:
            return None
        method = self.index.functions.get(method_qual)
        if method is None or "property" not in method.decorator_names():
            return None
        return self._lookup(("ret", method_qual))

    def _value_of_call(self, call: ast.Call,
                       fn: Optional[FunctionInfo],
                       ) -> Optional[ArrayValue]:
        np_name = self._np_callee(call)
        if np_name is not None:
            return self._value_of_np(np_name, call, fn)
        if isinstance(call.func, ast.Attribute):
            method_value = self._value_of_method(call, fn)
            if method_value is not None:
                return method_value
        site = self.site_by_call.get(id(call))
        if site is not None and site.bind_function is not None:
            target = site.bind_function
            if target.name != "__init__":
                return self._lookup(("ret", target.qualname))
        return None

    def _value_of_method(self, call: ast.Call,
                         fn: Optional[FunctionInfo],
                         ) -> Optional[ArrayValue]:
        assert isinstance(call.func, ast.Attribute)
        method = call.func.attr
        base = self.value_of(call.func.value, fn)
        if base is None or not base.is_array:
            return None
        if method == "astype":
            dtype = self._dtype_label(
                call.args[0] if call.args
                else self._keyword(call, "dtype"))
            return ArrayValue(is_array=True, shape=base.shape,
                              dtype=dtype, uninit=base.uninit,
                              batchable=base.batchable)
        if method == "copy":
            return replace(base, taints=frozenset())
        if method == "tolist":
            # A Python list copy: not an array, but still a per-server
            # sequence — batch debt follows it into sum()/loops.
            return ArrayValue(batchable=base.batchable)
        if method in ("ravel", "reshape", "flatten", "transpose",
                      "squeeze", "view"):
            return ArrayValue(is_array=True, dtype=base.dtype,
                              uninit=base.uninit, taints=base.taints)
        if method == "argsort":
            return ArrayValue(is_array=True, shape=base.shape,
                              dtype="intp", batchable=base.batchable)
        if method in _REDUCTION_METHODS:
            return self._reduced(base, call)
        if method == "item":
            return None
        return None

    def _reduced(self, base: ArrayValue,
                 call: ast.Call) -> Optional[ArrayValue]:
        """Result of an axis reduction over ``base`` (None = scalar)."""
        axis = self._keyword(call, "axis")
        if axis is None and len(call.args) >= 2:
            axis = call.args[1]
        if axis is None:
            return None
        shape: Optional[Tuple[str, ...]] = None
        keep_leading = False
        index = _int_literal(axis)
        if base.shape is not None and index is not None:
            if -len(base.shape) <= index < len(base.shape):
                normalized = index % len(base.shape)
                shape = tuple(dim for pos, dim in enumerate(base.shape)
                              if pos != normalized)
                keep_leading = normalized != 0
                if not shape:
                    return None
        return ArrayValue(is_array=True, shape=shape, dtype=base.dtype,
                          batchable=base.batchable and keep_leading)

    def _value_of_np(self, np_name: str, call: ast.Call,
                     fn: Optional[FunctionInfo],
                     ) -> Optional[ArrayValue]:
        dtype = self._dtype_label(self._keyword(call, "dtype"))
        if np_name in _SHAPE_CREATORS:
            if not call.args:
                return ArrayValue(is_array=True)
            shape = self._shape_from_arg(call.args[0], fn)
            uninit = (np_name == "empty" and shape is not None
                      and shape[0] != "0")
            return ArrayValue(
                is_array=True, shape=shape,
                dtype=dtype or ("float64" if np_name != "full" else None),
                uninit=uninit,
                batchable=self._leading_batchable(shape))
        if np_name in _LIKE_CREATORS:
            base = self.value_of(call.args[0], fn) if call.args else None
            return ArrayValue(
                is_array=True,
                shape=base.shape if base else None,
                dtype=dtype or (base.dtype if base else None),
                uninit=np_name == "empty_like",
                batchable=bool(base and base.batchable))
        if np_name in _COPYING_CALLS:
            base = self.value_of(call.args[0], fn) if call.args else None
            return ArrayValue(
                is_array=True,
                shape=base.shape if base else None,
                dtype=dtype or (base.dtype if base else None),
                uninit=bool(base and base.uninit),
                batchable=bool(base and base.batchable))
        if np_name in _ALIASING_CALLS:
            base = self.value_of(call.args[0], fn) if call.args else None
            if base is None:
                return ArrayValue(is_array=True, dtype=dtype)
            return replace(base, is_array=True, dtype=dtype or base.dtype)
        if np_name in ("arange", "linspace"):
            return ArrayValue(is_array=True, shape=(UNKNOWN_DIM,),
                              dtype=dtype)
        if np_name == "argsort":
            base = self.value_of(call.args[0], fn) if call.args else None
            return ArrayValue(is_array=True,
                              shape=base.shape if base else None,
                              dtype="intp",
                              batchable=bool(base and base.batchable))
        if np_name in ("flatnonzero", "nonzero", "unique"):
            return ArrayValue(is_array=True, shape=(UNKNOWN_DIM,),
                              dtype="intp" if np_name != "unique" else None)
        if np_name in ("concatenate", "stack", "vstack", "hstack",
                       "column_stack"):
            return ArrayValue(is_array=True)
        if np_name in _NP_REDUCTIONS or np_name.endswith(".reduce"):
            base = self.value_of(call.args[0], fn) if call.args else None
            if base is None or not base.is_array:
                return None
            return self._reduced(base, call)
        if np_name in ("cumsum", "cumprod", "sort", "clip", "abs",
                       "sqrt", "exp", "log", "round"):
            base = self.value_of(call.args[0], fn) if call.args else None
            if base is None:
                return None
            return ArrayValue(is_array=base.is_array, shape=base.shape,
                              dtype=dtype or base.dtype,
                              batchable=base.batchable)
        if np_name in _ELEMENTWISE_CALLS:
            values = [self.value_of(arg, fn) for arg in call.args]
            arrays = [v for v in values if v is not None and v.is_array]
            if not arrays:
                return None
            shape = None
            for value in arrays:
                shape = _merge_shapes(shape, value.shape) \
                    if shape is None else self._broadcast_shape(
                        shape, value.shape)
            return ArrayValue(
                is_array=True, shape=shape,
                dtype=self._promote([v.dtype for v in arrays]),
                uninit=any(v.uninit for v in arrays),
                batchable=any(v.batchable for v in arrays))
        if np_name in ("float64", "float32", "float16"):
            base = self.value_of(call.args[0], fn) if call.args else None
            if base is not None and base.is_array:
                return replace(base, dtype=np_name, taints=frozenset())
            return None
        return None

    @staticmethod
    def _broadcast_shape(a: Optional[Tuple[str, ...]],
                         b: Optional[Tuple[str, ...]],
                         ) -> Optional[Tuple[str, ...]]:
        if a is None or b is None:
            return None
        longer, shorter = (a, b) if len(a) >= len(b) else (b, a)
        pad = len(longer) - len(shorter)
        result = list(longer[:pad])
        for da, db in zip(longer[pad:], shorter):
            if da == db:
                result.append(da)
            elif da == "1":
                result.append(db)
            elif db == "1":
                result.append(da)
            elif UNKNOWN_DIM in (da, db):
                result.append(da if db == UNKNOWN_DIM else db)
            else:
                result.append(UNKNOWN_DIM)
        return tuple(result)

    @staticmethod
    def _promote(dtypes: List[Optional[str]]) -> Optional[str]:
        known = [d for d in dtypes if d is not None]
        if not known:
            return None
        floats = [d for d in known if d in _FLOAT_WIDTH]
        if floats:
            return max(floats, key=lambda d: _FLOAT_WIDTH[d])
        if len(set(known)) == 1:
            return known[0]
        return None

    def _value_of_subscript(self, expr: ast.Subscript,
                            fn: Optional[FunctionInfo],
                            ) -> Optional[ArrayValue]:
        base = self.value_of(expr.value, fn)
        if base is None or not base.is_array:
            return None
        elts = (list(expr.slice.elts)
                if isinstance(expr.slice, ast.Tuple) else [expr.slice])
        if any(isinstance(e, ast.Constant) and e.value is Ellipsis
               for e in elts):
            return ArrayValue(is_array=True, dtype=base.dtype,
                              uninit=base.uninit, taints=base.taints)
        first_full = _is_full_slice(elts[0])
        has_slice = False
        fancy = False
        dims: List[str] = []
        known = list(base.shape) if base.shape is not None else None
        for pos, elt in enumerate(elts):
            if isinstance(elt, ast.Slice):
                has_slice = True
                if known is not None and pos < len(known):
                    dims.append(known[pos] if _is_full_slice(elt)
                                else UNKNOWN_DIM)
                else:
                    dims.append(UNKNOWN_DIM)
            else:
                index_value = self.value_of(elt, fn)
                if index_value is not None and index_value.is_array:
                    fancy = True
                # An integer-like index: the dim is consumed.
        if fancy:
            # Advanced indexing copies; the filtered axis order is no
            # longer the plain server axis.
            return ArrayValue(is_array=True, dtype=base.dtype,
                              uninit=base.uninit)
        if known is not None:
            dims.extend(known[len(elts):])
            if not dims:
                return None  # fully indexed: a scalar
            return ArrayValue(is_array=True, shape=tuple(dims),
                              dtype=base.dtype, uninit=base.uninit,
                              batchable=base.batchable and first_full,
                              taints=base.taints)
        if not has_slice:
            return None  # probably a scalar element
        return ArrayValue(is_array=True, dtype=base.dtype,
                          uninit=base.uninit,
                          batchable=base.batchable and first_full,
                          taints=base.taints)

    def _value_of_binop(self, expr: ast.BinOp,
                        fn: Optional[FunctionInfo],
                        ) -> Optional[ArrayValue]:
        left = self.value_of(expr.left, fn)
        right = self.value_of(expr.right, fn)
        arrays = [v for v in (left, right)
                  if v is not None and v.is_array]
        if not arrays:
            return None
        shape = (self._broadcast_shape(arrays[0].shape, arrays[1].shape)
                 if len(arrays) == 2 else arrays[0].shape)
        return ArrayValue(
            is_array=True, shape=shape,
            dtype=self._promote([v.dtype for v in arrays]),
            uninit=any(v.uninit for v in arrays),
            batchable=any(v.batchable for v in arrays))

    # -- propagation ----------------------------------------------------

    def propagate(self) -> None:
        """Run assignments/returns/bindings to a fixpoint."""
        for _ in range(self.MAX_ROUNDS):
            before = dict(self.env)
            for module in self.index.modules.values():
                for stmt in module.tree.body:
                    self._propagate_module_stmt(module.name, stmt)
            for qualname in sorted(self.index.functions):
                self._propagate_function(
                    self.index.functions[qualname])
            self._propagate_call_bindings()
            if self.env == before:
                break

    def _propagate_module_stmt(self, module: str,
                               stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            return
        inferred = self.value_of(value, None)
        for target in targets:
            if isinstance(target, ast.Name):
                self._join(("global", module, target.id), inferred)

    def _seed_parameters(self, fn: FunctionInfo) -> None:
        module = self.index.modules.get(fn.module)
        args = fn.node.args  # type: ignore[union-attr]
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            seed = None
            if module is not None and arg.annotation is not None:
                dotted = _dotted_name(arg.annotation)
                if dotted and self.index.resolve_name(
                        module, dotted) == "numpy.ndarray":
                    seed = ArrayValue(is_array=True)
            if arg.arg in BATCHABLE_NAMES:
                seed = join_values(seed, ArrayValue(batchable=True))
            if seed is not None:
                self._join(("local", fn.qualname, arg.arg), seed)

    def _propagate_function(self, fn: FunctionInfo) -> None:
        self._seed_parameters(fn)
        for node in iter_function_nodes(fn.node):
            if isinstance(node, ast.Assign):
                inferred = self.value_of(node.value, fn)
                for target in node.targets:
                    self._bind_target(fn, target, inferred)
                self._taint_store(fn, node.targets, node.value)
            elif isinstance(node, ast.AnnAssign) \
                    and node.value is not None:
                self._bind_target(fn, node.target,
                                  self.value_of(node.value, fn))
                self._taint_store(fn, [node.target], node.value)
            elif isinstance(node, ast.For):
                # ``for row in matrix:`` binds each row (a view).
                source = self.value_of(node.iter, fn)
                if source is not None and source.is_array \
                        and isinstance(node.target, ast.Name):
                    row = ArrayValue(
                        is_array=source.shape is None
                        or len(source.shape) > 1,
                        dtype=source.dtype, uninit=source.uninit,
                        taints=source.taints)
                    if row.is_array:
                        self._join(("local", fn.qualname,
                                    node.target.id), row)
            elif isinstance(node, ast.Return) and node.value is not None:
                self._join(("ret", fn.qualname),
                           self.value_of(node.value, fn))

    def _bind_target(self, fn: FunctionInfo, target: ast.expr,
                     value: Optional[ArrayValue]) -> None:
        if isinstance(target, ast.Name):
            self._join(("local", fn.qualname, target.id), value)
        elif (isinstance(target, ast.Attribute)
              and isinstance(target.value, ast.Name)
              and target.value.id == "self" and fn.class_qualname):
            self._join(("attr", fn.class_qualname, target.attr), value)

    def _sink_label(self, target: ast.expr,
                    fn: FunctionInfo) -> Optional[str]:
        """Cache-cell label a store into ``target`` aliases, or None."""
        if isinstance(target, ast.Subscript):
            inner = target.value
            if (isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self" and fn.class_qualname):
                cls = fn.class_qualname.rsplit(".", 1)[-1]
                return f"{cls}.{inner.attr}"
            if isinstance(inner, ast.Name):
                module = self.index.modules.get(fn.module)
                if module is not None \
                        and inner.id in module.mutable_globals:
                    short = fn.module.rsplit(".", 1)[-1]
                    return f"{short}.{inner.id}"
        elif (isinstance(target, ast.Attribute)
              and isinstance(target.value, ast.Name)
              and target.value.id == "self" and fn.class_qualname):
            cls = fn.class_qualname.rsplit(".", 1)[-1]
            return f"{cls}.{target.attr}"
        return None

    def _taint_store(self, fn: FunctionInfo,
                     targets: List[ast.expr],
                     value: ast.expr) -> None:
        """Storing a local into a cache cell taints the local name."""
        if not isinstance(value, ast.Name):
            return
        key = ("local", fn.qualname, value.id)
        current = self.env.get(key)
        if current is None or not current.is_array:
            return
        for target in targets:
            label = self._sink_label(target, fn)
            if label is not None:
                self.env[key] = replace(
                    current, taints=current.taints | {label})

    def _propagate_call_bindings(self) -> None:
        """Flow argument values into callee parameters."""
        for site in self.graph.sites:
            if site.bind_function is None:
                continue
            caller = self.index.functions.get(site.caller)
            callee = site.bind_function.qualname
            for param, arg in _bindings(site, site.call):
                self._join(("local", callee, param),
                           self.value_of(arg, caller))

    # -- invalidation evidence ------------------------------------------

    def _function_invalidates(self, fn: FunctionInfo) -> bool:
        cached = self._invalidates.get(fn.qualname)
        if cached is not None:
            return cached
        result = False
        for node in iter_function_nodes(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and INVALIDATION_ATTR_RE.search(target.attr):
                        result = True
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and INVALIDATION_CALL_RE.search(node.func.attr):
                result = True
            if result:
                break
        self._invalidates[fn.qualname] = result
        return result

    # -- checking -------------------------------------------------------

    def check(self, enabled: frozenset) -> List[Finding]:
        findings: List[Finding] = []
        for qualname in sorted(self.index.functions):
            fn = self.index.functions[qualname]
            in_scope = _in_array_scope(fn)
            hot = _in_hot_path(fn)
            if "RPR404" in enabled:
                findings.extend(self._check_empty_reads(fn))
            for node in iter_function_nodes(fn.node):
                if isinstance(node, ast.BinOp):
                    if "RPR401" in enabled and in_scope:
                        findings.extend(self._check_mixed_dtype(fn, node))
                    if "RPR402" in enabled:
                        findings.extend(
                            self._check_binop_broadcast(fn, node))
                elif isinstance(node, ast.Call):
                    findings.extend(
                        self._check_call(fn, node, enabled, in_scope,
                                         hot))
                elif isinstance(node, ast.Subscript):
                    if "RPR501" in enabled:
                        findings.extend(
                            self._check_literal_index(fn, node))
                elif isinstance(node, (ast.Assign, ast.AnnAssign,
                                       ast.AugAssign)):
                    if "RPR403" in enabled:
                        findings.extend(self._check_mutation(fn, node))
                elif isinstance(node, ast.For):
                    if "RPR502" in enabled and hot:
                        findings.extend(
                            self._check_loop(fn, node, node.iter,
                                             "for loop"))
                elif isinstance(node, ast.comprehension):
                    if "RPR502" in enabled and hot:
                        findings.extend(
                            self._check_loop(fn, node.iter, node.iter,
                                             "comprehension"))
        return findings

    def _finding(self, fn: FunctionInfo, node: ast.AST, rule_id: str,
                 message: str) -> Finding:
        return Finding(path=fn.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       rule_id=rule_id, message=message)

    # RPR401 ------------------------------------------------------------

    def _check_mixed_dtype(self, fn: FunctionInfo,
                           node: ast.BinOp) -> Iterator[Finding]:
        left = self.value_of(node.left, fn)
        right = self.value_of(node.right, fn)
        dtypes = {v.dtype for v in (left, right)
                  if v is not None and v.dtype in _FLOAT_WIDTH}
        if len(dtypes) > 1:
            yield self._finding(
                fn, node, "RPR401",
                f"mixed {'/'.join(sorted(dtypes))} arithmetic silently "
                f"promotes and re-narrows; the bit-exact core is "
                f"float64 end to end")

    def _check_narrowing(self, fn: FunctionInfo, call: ast.Call,
                         ) -> Iterator[Finding]:
        narrowed: Optional[str] = None
        source: Optional[ArrayValue] = None
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr == "astype":
            dtype = self._dtype_label(
                call.args[0] if call.args
                else self._keyword(call, "dtype"))
            if dtype in _FLOAT_WIDTH:
                narrowed = dtype
                source = self.value_of(call.func.value, fn)
        else:
            np_name = self._np_callee(call)
            if np_name in (_COPYING_CALLS | _ALIASING_CALLS
                           | {"float32", "float16"}):
                dtype = (np_name if np_name in ("float32", "float16")
                         else self._dtype_label(
                             self._keyword(call, "dtype")))
                if dtype in _FLOAT_WIDTH and call.args:
                    narrowed = dtype
                    source = self.value_of(call.args[0], fn)
        if narrowed is None or source is None:
            return
        if source.dtype in _FLOAT_WIDTH \
                and _FLOAT_WIDTH[narrowed] < _FLOAT_WIDTH[source.dtype]:
            yield self._finding(
                fn, call, "RPR401",
                f"{source.dtype} value narrowed to {narrowed}; the "
                f"golden fixtures hold at 1e-9 only in float64")

    # RPR402 ------------------------------------------------------------

    def _check_binop_broadcast(self, fn: FunctionInfo,
                               node: ast.BinOp) -> Iterator[Finding]:
        left = self.value_of(node.left, fn)
        right = self.value_of(node.right, fn)
        if not (left is not None and left.is_array and left.shape
                and right is not None and right.is_array and right.shape):
            return
        conflict = broadcast_conflict(left.shape, right.shape)
        if conflict is not None:
            yield self._finding(
                fn, node, "RPR402",
                f"operands have statically incompatible broadcast "
                f"shapes {_format_shape(left.shape)} vs "
                f"{_format_shape(right.shape)}: dim {conflict[0]!r} "
                f"cannot align with {conflict[1]!r}")

    def _check_np_broadcast(self, fn: FunctionInfo, call: ast.Call,
                            np_name: str) -> Iterator[Finding]:
        if np_name not in _ELEMENTWISE_CALLS:
            return
        shaped = [(arg, value) for arg in call.args
                  if (value := self.value_of(arg, fn)) is not None
                  and value.is_array and value.shape]
        for pos in range(1, len(shaped)):
            conflict = broadcast_conflict(shaped[0][1].shape,
                                          shaped[pos][1].shape)
            if conflict is not None:
                yield self._finding(
                    fn, call, "RPR402",
                    f"np.{np_name} arguments have statically "
                    f"incompatible shapes "
                    f"{_format_shape(shaped[0][1].shape)} vs "
                    f"{_format_shape(shaped[pos][1].shape)}: dim "
                    f"{conflict[0]!r} cannot align with {conflict[1]!r}")
                return

    # RPR403 ------------------------------------------------------------

    def _mutation_finding(self, fn: FunctionInfo, node: ast.AST,
                          value: Optional[ArrayValue],
                          what: str) -> Iterator[Finding]:
        if value is None or not value.is_array or not value.taints:
            return
        if self._function_invalidates(fn):
            return
        cells = ", ".join(sorted(value.taints))
        yield self._finding(
            fn, node, "RPR403",
            f"{what} mutates an array aliased into cached state "
            f"({cells}) with no version/dirty invalidation in "
            f"{fn.name!r}; copy into a fresh name first or bump the "
            f"cache's version counter")

    def _check_mutation(self, fn: FunctionInfo,
                        node: ast.stmt) -> Iterator[Finding]:
        if isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name):
                yield from self._mutation_finding(
                    fn, node, self.value_of(target, fn),
                    f"augmented assignment to {target.id!r}")
                return
            if isinstance(target, ast.Subscript):
                yield from self._mutation_finding(
                    fn, node, self.value_of(target.value, fn),
                    "augmented subscript assignment")
            return
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            base = target.value
            # Storing into ``self._cache[k]`` is the cache update
            # itself, not an aliasing hazard; _taint_store covers it.
            if isinstance(base, ast.Attribute):
                continue
            yield from self._mutation_finding(
                fn, node, self.value_of(base, fn),
                "subscript store")

    def _check_out_kwarg(self, fn: FunctionInfo,
                         call: ast.Call) -> Iterator[Finding]:
        out = self._keyword(call, "out")
        if out is None:
            return
        yield from self._mutation_finding(
            fn, call, self.value_of(out, fn), "out= target")

    def _check_mutator_method(self, fn: FunctionInfo,
                              call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS):
            return
        yield from self._mutation_finding(
            fn, call, self.value_of(func.value, fn),
            f".{func.attr}() call")

    # RPR404 ------------------------------------------------------------

    def _check_empty_reads(self, fn: FunctionInfo) -> Iterator[Finding]:
        allocs: Dict[str, ast.Call] = {}
        loop_vars: Set[str] = set()
        fully_initialized: Set[str] = set()
        store_base_ids: Set[int] = set()
        partial_targets: List[Tuple[str, ast.expr]] = []

        for node in iter_function_nodes(fn.node):
            if isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Call):
                # Direct ``np.empty`` calls and helpers whose inferred
                # return value is still uninitialized both count: the
                # lattice carries ``uninit`` through project-local
                # return flow, so allocation wrappers don't launder it.
                value = self.value_of(node.value, fn)
                if value is not None and value.uninit:
                    allocs.setdefault(node.targets[0].id, node.value)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iter_expr = node.iter
                is_counted = (isinstance(iter_expr, ast.Call)
                              and isinstance(iter_expr.func, ast.Name)
                              and iter_expr.func.id in ("range",
                                                        "enumerate"))
                if is_counted:
                    target = node.target
                    names = ([target] if isinstance(target, ast.Name)
                             else list(target.elts)
                             if isinstance(target, ast.Tuple) else [])
                    loop_vars.update(n.id for n in names
                                     if isinstance(n, ast.Name))
        if not allocs:
            return

        def record_store(target: ast.expr) -> None:
            if not (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in allocs):
                return
            store_base_ids.add(id(target.value))
            name = target.value.id
            index = target.slice
            elts = (list(index.elts) if isinstance(index, ast.Tuple)
                    else [index])
            first = elts[0]
            if _is_full_slice(first) or (
                    isinstance(first, ast.Constant)
                    and first.value is Ellipsis):
                fully_initialized.add(name)
            elif isinstance(first, ast.Name) and first.id in loop_vars:
                # A store under every index of a counted loop: treated
                # as covering (the loop bound matching the dim is the
                # author's responsibility; this pass checks intent).
                fully_initialized.add(name)
            else:
                partial_targets.append((name, target))

        for node in iter_function_nodes(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    record_store(target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                # ``buf[i] += x`` reads before writing: not an init.
                pass
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "fill" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in allocs:
                fully_initialized.add(node.func.value.id)
                store_base_ids.add(id(node.func.value))

        read_names: Set[str] = set()
        for node in iter_function_nodes(fn.node):
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load) \
                    and node.id in allocs \
                    and id(node) not in store_base_ids:
                read_names.add(node.id)

        for name in sorted(allocs):
            if name in fully_initialized:
                continue
            if name in read_names:
                yield self._finding(
                    fn, allocs[name], "RPR404",
                    f"np.empty array {name!r} may be read before every "
                    f"element is assigned; use np.zeros/np.full or "
                    f"prove coverage with a full-slice or counted-loop "
                    f"store")

    # RPR501 ------------------------------------------------------------

    def _check_axis_kwarg(self, fn: FunctionInfo,
                          call: ast.Call) -> Iterator[Finding]:
        axis = self._keyword(call, "axis")
        if axis is None and self._np_callee(call) is not None \
                and len(call.args) >= 2 \
                and (self._np_callee(call) in _NP_REDUCTIONS
                     or self._np_callee(call).endswith(".reduce")):
            axis = call.args[1]
        if not (axis is not None and _is_int_constant(axis)
                and axis.value >= 0):  # type: ignore[attr-defined]
            return
        base: Optional[ArrayValue] = None
        if self._np_callee(call) is not None and call.args:
            base = self.value_of(call.args[0], fn)
        elif isinstance(call.func, ast.Attribute):
            base = self.value_of(call.func.value, fn)
        if base is not None and base.is_array and base.batchable:
            yield self._finding(
                fn, call, "RPR501",
                f"hardcoded axis={axis.value} on a batchable "  # type: ignore[attr-defined]
                f"per-server array; a leading scenario-batch axis "
                f"shifts positive axes — count from the end "
                f"(axis=-{len(base.shape) - axis.value if base.shape else 1} here)"  # type: ignore[attr-defined]
                )

    def _check_literal_index(self, fn: FunctionInfo,
                             sub: ast.Subscript) -> Iterator[Finding]:
        base = self.value_of(sub.value, fn)
        if base is None or not base.is_array or not base.batchable:
            return
        first = (sub.slice.elts[0] if isinstance(sub.slice, ast.Tuple)
                 and sub.slice.elts else sub.slice)
        if _is_int_constant(first) \
                and first.value >= 0:  # type: ignore[attr-defined]
            yield self._finding(
                fn, sub, "RPR501",
                f"literal index [{first.value}] on the leading axis "  # type: ignore[attr-defined]
                f"of a batchable per-server array; a scenario-batch "
                f"axis will occupy axis 0 — index the server axis "
                f"explicitly or from the end")

    # RPR502 ------------------------------------------------------------

    def _iteration_sources(self, expr: ast.expr) -> Iterator[ast.expr]:
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) \
                    and func.id in ("enumerate", "zip", "reversed"):
                for arg in expr.args:
                    yield from self._iteration_sources(arg)
                return
            if isinstance(func, ast.Name) and func.id == "range":
                if expr.args and isinstance(expr.args[0], ast.Call) \
                        and isinstance(expr.args[0].func, ast.Name) \
                        and expr.args[0].func.id == "len" \
                        and expr.args[0].args:
                    yield expr.args[0].args[0]
                return
            if isinstance(func, ast.Attribute) and func.attr == "tolist":
                yield func.value
                return
        yield expr

    def _batchable_source(self, expr: ast.expr,
                          fn: FunctionInfo) -> bool:
        for source in self._iteration_sources(expr):
            value = self.value_of(source, fn)
            if value is not None and value.batchable:
                return True
        return False

    def _check_loop(self, fn: FunctionInfo, node: ast.AST,
                    iter_expr: ast.expr, what: str) -> Iterator[Finding]:
        if self._batchable_source(iter_expr, fn):
            yield self._finding(
                fn, node, "RPR502",
                f"Python-level {what} over a batchable per-server axis "
                f"in a batch-critical module; the batched engine "
                f"(ROADMAP item 2) needs this vectorized")

    def _check_py_reducer(self, fn: FunctionInfo,
                          call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if not (isinstance(func, ast.Name)
                and func.id in _PY_REDUCERS and call.args):
            return
        first = call.args[0]
        if isinstance(first, (ast.GeneratorExp, ast.ListComp,
                              ast.SetComp)):
            return  # the comprehension's own iter is checked instead
        if self._batchable_source(first, fn):
            yield self._finding(
                fn, call, "RPR502",
                f"builtin {func.id}() reduces a batchable per-server "
                f"sequence element-by-element in a batch-critical "
                f"module; use the NumPy equivalent so the scenario "
                f"axis can ride through")

    # RPR503 ------------------------------------------------------------

    def _is_batchable_reduction(self, expr: ast.expr,
                                fn: FunctionInfo) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        np_name = self._np_callee(expr)
        if np_name is not None \
                and (np_name in _NP_REDUCTIONS
                     or np_name.endswith(".reduce")) and expr.args:
            value = self.value_of(expr.args[0], fn)
            return value is not None and value.batchable
        func = expr.func
        if isinstance(func, ast.Attribute) \
                and func.attr in _REDUCTION_METHODS:
            value = self.value_of(func.value, fn)
            return value is not None and value.batchable
        return False

    def _check_scalarize(self, fn: FunctionInfo,
                         call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "float" \
                and len(call.args) == 1:
            arg = call.args[0]
            value = self.value_of(arg, fn)
            if value is not None and value.is_array and value.batchable:
                yield self._finding(
                    fn, call, "RPR503",
                    "float() scalarizes a whole batchable array; keep "
                    "it an array so the scenario axis can ride through")
            elif self._is_batchable_reduction(arg, fn):
                yield self._finding(
                    fn, call, "RPR503",
                    "float() collapses a reduction over a batchable "
                    "per-server axis to a Python scalar; keeping the "
                    "NumPy scalar/array lets the batch axis survive")
        elif isinstance(func, ast.Attribute) and func.attr == "item" \
                and not call.args:
            base = self.value_of(func.value, fn)
            if (base is not None and base.is_array and base.batchable) \
                    or self._is_batchable_reduction(func.value, fn):
                yield self._finding(
                    fn, call, "RPR503",
                    ".item() scalarizes a batchable intermediate; "
                    "keeping the NumPy value lets the batch axis "
                    "survive")

    # -- per-call dispatch ----------------------------------------------

    def _check_call(self, fn: FunctionInfo, call: ast.Call,
                    enabled: frozenset, in_scope: bool,
                    hot: bool) -> Iterator[Finding]:
        np_name = self._np_callee(call)
        if "RPR401" in enabled and in_scope:
            yield from self._check_narrowing(fn, call)
        if "RPR402" in enabled and np_name is not None:
            yield from self._check_np_broadcast(fn, call, np_name)
        if "RPR403" in enabled:
            yield from self._check_out_kwarg(fn, call)
            yield from self._check_mutator_method(fn, call)
        if "RPR501" in enabled:
            yield from self._check_axis_kwarg(fn, call)
        if "RPR502" in enabled and hot:
            yield from self._check_py_reducer(fn, call)
        if "RPR503" in enabled and hot:
            yield from self._check_scalarize(fn, call)


def _dotted_name(expr: ast.expr) -> Optional[str]:
    chain: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
        return ".".join(reversed(chain))
    return None


def _bindings(site: CallSite,
              call: ast.Call) -> Iterator[Tuple[str, ast.expr]]:
    """(parameter name, argument expression) pairs for a site."""
    if site.bind_function is not None:
        params = [arg.arg for arg in site.bind_function.parameters()]
        if site.skip_first and params:
            params = params[1:]
        for param, arg in zip(params, call.args):
            if isinstance(arg, ast.Starred):
                break
            yield param, arg
        keyword_names = {
            arg.arg for arg in site.bind_function.keyword_parameters()}
        for keyword in call.keywords:
            if keyword.arg and keyword.arg in keyword_names:
                yield keyword.arg, keyword.value
    elif site.bind_class is not None:
        fields = site.bind_class.fields
        for param, arg in zip(fields, call.args):
            if isinstance(arg, ast.Starred):
                break
            yield param, arg
        for keyword in call.keywords:
            if keyword.arg and keyword.arg in fields:
                yield keyword.arg, keyword.value


def _in_array_scope(fn: FunctionInfo) -> bool:
    segments = set(fn.module.split("."))
    segments.update(fn.module.rsplit(".", 1)[-1].split("_"))
    segments.update(part for part in fn.path.replace("\\", "/").split("/"))
    return bool(segments & ARRAY_SCOPE_SEGMENTS)


def _in_hot_path(fn: FunctionInfo) -> bool:
    tokens = set(fn.module.rsplit(".", 1)[-1].split("_"))
    return bool(tokens & HOT_PATH_MODULES)


def run_array_pass(index: ProjectIndex, graph: CallGraph,
                   enabled: frozenset,
                   analysis: Optional[ArrayAnalysis] = None,
                   ) -> List[Finding]:
    """Propagate array facts to a fixpoint, then collect findings.

    Args:
        analysis: An already-propagated :class:`ArrayAnalysis` to reuse
            (the lane-isolation pass shares the same lattice); built
            and propagated here when omitted.
    """
    if analysis is None:
        analysis = ArrayAnalysis(index, graph)
        analysis.propagate()
    return analysis.check(enabled)
