"""Pass 4a: scalar/batch twin parity over a declared pairing registry (RPR60x).

The batched engine (PR 7) is bit-exact with the scalar oracle because
every scalar structure grew a lane-parallel twin: ``Simulation`` ↔
``BatchSimulation``, ``ServerCluster`` ↔ ``BatchCluster``, scheduler,
storage, and IPDU twins.  Nothing *structural* enforced that pairing —
the next engine PR can add a scalar method, attribute, or tuning
constant and silently leave the batched twin behind, and the drift only
surfaces when a golden fixture diverges (or worse, doesn't, because the
batched path quietly falls back or misbehaves).

This pass makes the pairing a checked contract.  A **pairing registry**
(:data:`TWIN_REGISTRY`) declares, per twin, the scalar and batch class
*names*, member aliases that intentionally differ (``run`` ↔
``run_all``), and exemptions — scalar members that deliberately have no
batched counterpart, each carrying the reason, so the registry doubles
as documentation of the twin API surface.

For every registered pair present in the scanned module set the pass
checks:

* **RPR601 — missing counterpart.**  Every public scalar method,
  public instance attribute, and class-level numeric constant must have
  a batched counterpart: the same name, a conventional per-lane variant
  (``shed_lru`` → ``shed_lru_lane``, ``total_downtime_s`` →
  ``total_downtime_lane``), a registry alias, or — for constants — a
  read of ``ScalarClass.CONST`` anywhere in the batch module.
* **RPR602 — signature / constant drift.**  Where a counterpart method
  exists, every scalar parameter must be accepted by the batched twin
  (extra lane/mask parameters are expected and ignored), literal
  defaults shared by name must agree, and same-named class constants
  must hold the same numeric value.

Both rules anchor at the *batch* class — the incomplete twin is the
thing to fix — while the message names the scalar definition site, so
the finding reads across the module boundary the defect actually spans.
A pair whose classes are not both in the scanned set is skipped: a
``--changed`` lint of one module must not report the other missing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..findings import Finding
from ..rules import Rule, register
from .callgraph import iter_function_nodes
from .symbols import FUNCTION_NODES, ClassInfo, ProjectIndex

#: Unit suffixes stripped when deriving per-lane counterpart names
#: (``total_downtime_s`` -> ``total_downtime_lane``).
_UNIT_SUFFIXES = ("_s", "_j", "_w", "_wh", "_c")

#: Batch parameter names that are expected extras (the lane selector,
#: masks, and preallocated outputs) and never count as drift.
BATCH_EXTRA_PARAMS = frozenset({
    "lane", "lanes", "mask", "out", "n", "no_pools", "total",
})


@dataclass(frozen=True)
class TwinPair:
    """One declared scalar/batch pairing.

    Attributes:
        scalar: Simple class name of the scalar structure.
        batch: Simple class name of its lane-parallel twin.
        aliases: scalar member name -> batch member name for
            counterparts whose names intentionally differ.
        exempt: scalar member name -> reason, for scalar API surface
            that deliberately has no batched counterpart.  The reason
            string is the documentation; an empty reason is invalid by
            convention (reviewed in ``docs/analysis.md``).
        check_attrs: Set False for twins that wrap whole scalar
            instances (per-lane state lives in the wrapped objects, so
            attribute parity is meaningless).
    """

    scalar: str
    batch: str
    aliases: Mapping[str, str] = field(default_factory=dict)
    exempt: Mapping[str, str] = field(default_factory=dict)
    check_attrs: bool = True


#: The declared pairing registry for this repository.  Exemptions carry
#: their reasons inline — this table *is* the twin contract reviewers
#: audit when the engine grows state (see docs/analysis.md, Pass 4).
TWIN_REGISTRY: Tuple[TwinPair, ...] = (
    TwinPair(
        scalar="Simulation", batch="BatchSimulation",
        aliases={"run": "run_all"},
        # The batch twin consumes whole scalar Simulation objects; all
        # constructor attributes live on the wrapped sims.
        check_attrs=False,
    ),
    TwinPair(
        scalar="ServerCluster", batch="BatchCluster",
        aliases={
            "shed_lru": "shed_lru_lane",
            "restart_offline": "restart_offline_lane",
            "total_downtime_s": "total_downtime_lane",
            "total_restart_energy_j": "total_restart_energy_lane",
            "total_restarts": "total_restarts_lane",
        },
        exempt={
            "config": "lanes share one ServerConfig; the cluster-level "
                      "config is validated by the batch simulation",
            "servers": "no per-lane Server objects exist; state is the "
                       "(lanes, servers) code arrays",
            "version": "the scalar cache-invalidation counter; batch "
                       "state arrays are rebuilt per tick, not memoized",
            "off_indices": "scalar fast-path index cache; the batch "
                           "loop uses off_mask()",
            "available_servers": "object-level view; batch callers use "
                                 "powered_mask()",
            "offline_servers": "object-level view; batch callers use "
                               "off_mask()",
            "draws_w": "list-based wrapper kept for the scalar API; "
                       "batch callers use draw_array()",
            "draws_by_source": "scalar reporting helper the batched "
                               "engine never needs (draws are grouped "
                               "via source-code masks)",
            "assign_all": "the batch scheduler's read-only all-utility "
                          "template makes the broadcast assignment "
                          "explicit",
            "reset": "batch lanes are single-use (one run per "
                     "BatchSimulation); fresh lanes are new arrays",
        },
    ),
    TwinPair(
        scalar="LoadScheduler", batch="BatchScheduler",
        exempt={
            "calls": "scalar-side telemetry counter; batch groups "
                     "report through BatchAssignment, and a per-lane "
                     "call count would always equal the tick count",
            "within_budget_hits": "counts the scalar all-utility fast "
                                  "path; the batch scheduler takes the "
                                  "equivalent fast path per whole tick "
                                  "(no per-lane decision to count)",
            "order_reuses": "counts scalar order-cache hits; the batch "
                            "scheduler argsorts the (lanes, servers) "
                            "demand slab every call (no cache)",
        },
    ),
    TwinPair(
        scalar="HybridBuffers", batch="BatchBuffers",
        aliases={
            "sc_usable_energy_j": "sc_usable_j",
            "battery_usable_energy_j": "battery_usable_j",
        },
        # The batch twin mirrors the engine-facing charge/discharge
        # surface; sizing/TCO helpers stay scalar-only by design.
        exempt={
            "sc": "per-lane devices live in BatchSupercap arrays",
            "battery": "per-lane devices live in BatchBattery arrays",
            "config": "lanes share one BufferConfig (validated by the "
                      "batch simulation)",
            "reset": "batch lanes are single-use; fresh lanes are new "
                     "arrays",
            "total_capex": "TCO sizing math stays on the scalar object "
                           "(computed before/after a run, never per "
                           "tick)",
            "charge": "decomposed into charge_battery/charge_sc (plus "
                      "settle) in the batch API; the merged scalar "
                      "entry point has no single lane analogue",
            "discharge": "decomposed into discharge_battery/"
                         "discharge_sc in the batch API",
            "pool": "scalar pool-object lookup; batch callers address "
                    "devices through the sc_*/battery_* lane arrays",
            "energy_in_j": "accounting reads come from the wrapped "
                           "scalar buffers after write_back()",
            "energy_out_j": "accounting reads come from the wrapped "
                            "scalar buffers after write_back()",
            "total_stored_j": "accounting reads come from the wrapped "
                              "scalar buffers after write_back()",
            "lifetime_report": "reporting stays on the wrapped scalar "
                               "buffers after write_back()",
        },
        check_attrs=False,
    ),
    TwinPair(
        scalar="LeadAcidBattery", batch="BatchBattery",
        aliases={"stored_energy_j": "stored_j"},
        exempt={
            "state": "the KiBaM wells live in the (lanes,) available/"
                     "bound arrays; the scalar state object is rebuilt "
                     "at write_back()",
            "internal_resistance_ohm": "captured as a constant lane "
                                       "array and inlined into the "
                                       "batch voltage arithmetic",
            "age_fraction": "aging is frozen for the duration of a run "
                            "(captured at construction); throughput "
                            "rides BatchLifetime and writes back per "
                            "lane",
            "apply_aging": "a between-runs mutator; lanes are "
                           "single-use, so aging lands on the wrapped "
                           "scalar battery via write_back()",
            "config": "lanes share per-lane scalar configs captured as "
                      "constant arrays at construction",
            "telemetry": "per-lane telemetry lives in BatchTelemetry "
                         "and is written back after the run",
            "max_discharge_power_w": "the batch discharge path inlines "
                                     "the bound (mask arithmetic), "
                                     "bit-exact with the scalar method",
            "max_charge_power_w": "inlined into the batch charge path, "
                                  "bit-exact with the scalar method",
            "is_full": "inlined as a mask in the batch charge path",
            "is_depleted": "inlined as a mask in the batch discharge "
                           "path",
            "rest": "flush_step() covers the batched rest semantics "
                    "(KiBaM bound-charge equalization)",
            "reset": "batch lanes are single-use; fresh lanes are new "
                     "arrays",
            "set_depth_of_discharge": "DoD is fixed per run; lanes "
                                      "capture it at construction",
            "nominal_energy_j": "captured as a constant lane array at "
                                "construction",
            "headroom_j": "inlined as mask arithmetic in the batch "
                          "charge path",
        },
        check_attrs=False,
    ),
    TwinPair(
        scalar="Supercapacitor", batch="BatchSupercap",
        aliases={"stored_energy_j": "stored_j"},
        exempt={
            "voltage": "per-lane terminal voltage is internal batch "
                       "state; the scalar accessor is served by the "
                       "wrapped device after write_back()",
            "esr_ohm": "captured as the constant (lanes,) esr array at "
                       "construction",
            "apply_esr_drift": "a between-runs mutator; lanes are "
                               "single-use and capture ESR at "
                               "construction",
            "apply_leakage": "a caller-facing self-discharge hook the "
                             "engine's settle path never invokes; "
                             "batch rest() mirrors settle exactly",
            "config": "lanes share per-lane scalar configs captured as "
                      "constant arrays at construction",
            "telemetry": "per-lane telemetry lives in BatchTelemetry "
                         "and is written back after the run",
            "max_discharge_power_w": "inlined into the batch discharge "
                                     "voltage loop, bit-exact",
            "max_charge_power_w": "inlined into the batch charge "
                                  "voltage loop, bit-exact",
            "is_full": "inlined as a mask in the batch charge path",
            "is_depleted": "inlined as a mask in the batch discharge "
                           "path",
            "reset": "batch lanes are single-use; fresh lanes are new "
                     "arrays",
            "set_depth_of_discharge": "DoD is fixed per run; lanes "
                                      "capture it at construction",
            "nominal_energy_j": "captured as a constant lane array at "
                                "construction",
            "headroom_j": "inlined as mask arithmetic in the batch "
                          "charge path",
            "open_circuit_voltage": "the batch voltage loop tracks "
                                    "per-lane voltage state directly",
        },
        check_attrs=False,
    ),
    TwinPair(
        scalar="IPDU", batch="BatchIPDU",
        aliases={
            "record_array": "record_tick",
            "total_energy_j": "total_energy_lane",
        },
        exempt={
            "record": "scalar-convenience wrapper over record_array; "
                      "the batch path meters whole (lanes, outlets) "
                      "slices",
            "set_outlet": "outlet gating rides the cluster state codes "
                          "in the batched engine",
            "latest": "ring reads never feed results; the batch ring "
                      "exists only for component fidelity",
            "history": "ring reads never feed results; the batch ring "
                       "exists only for component fidelity",
        },
        check_attrs=False,
    ),
    TwinPair(
        scalar="SwitchFabric", batch="BatchFabric",
        aliases={
            "apply": "apply_sources",
            "total_switches": "total_switches_lane",
        },
        exempt={
            "positions": "exposed as the (lanes, relays) code array "
                         "attribute rather than a RelayPosition list",
        },
        check_attrs=False,
    ),
)


@register
class MissingTwinCounterpartRule(Rule):
    """Every public scalar member needs a batched-twin counterpart.

    Whole-program: the scalar and batch classes live in different
    modules; only a project-wide view can see that a scalar method,
    attribute, or tuning constant has no lane-parallel counterpart in
    the registered twin (the registry's aliases/exemptions are the
    sanctioned escape hatches).
    """

    id = "RPR601"
    whole_program = True


@register
class TwinSignatureDriftRule(Rule):
    """Twin counterparts must not drift in signature or constant value.

    Whole-program: a scalar method growing a parameter (or a retuned
    scalar constant) that the batched twin does not mirror makes the
    pair silently diverge; the check compares the definitions across
    their modules.
    """

    id = "RPR602"
    whole_program = True


def _counterpart_names(scalar_name: str,
                       pair: TwinPair) -> List[str]:
    """Accepted batch member names for one scalar member, in order."""
    names = [scalar_name]
    alias = pair.aliases.get(scalar_name)
    if alias:
        names.insert(0, alias)
    names.extend([f"{scalar_name}_lane", f"{scalar_name}_lanes",
                  f"{scalar_name}_all", f"batch_{scalar_name}"])
    for suffix in _UNIT_SUFFIXES:
        if scalar_name.endswith(suffix):
            stem = scalar_name[:-len(suffix)]
            names.extend([f"{stem}_lane", f"{stem}_lanes"])
    seen: Dict[str, None] = {}
    for name in names:
        seen.setdefault(name)
    return list(seen)


def _class_constants(cls: ClassInfo) -> Dict[str, Tuple[float, int]]:
    """Class-level numeric constants: name -> (value, line)."""
    constants: Dict[str, Tuple[float, int]] = {}
    for stmt in cls.node.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        if (value is not None and isinstance(value, ast.Constant)
                and isinstance(value.value, (int, float))
                and not isinstance(value.value, bool)):
            for target in targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = (value.value, stmt.lineno)
        elif (value is not None and isinstance(value, ast.UnaryOp)
              and isinstance(value.op, ast.USub)
              and isinstance(value.operand, ast.Constant)
              and isinstance(value.operand.value, (int, float))):
            for target in targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = (-value.operand.value,
                                            stmt.lineno)
    return constants


def _instance_attrs(index: ProjectIndex, cls: ClassInfo) -> List[str]:
    """Public instance-attribute names assigned anywhere in the class."""
    names: Dict[str, None] = {}
    for field_name in cls.fields:
        if not field_name.startswith("_"):
            names.setdefault(field_name)
    for method_qual in cls.methods.values():
        fn = index.functions[method_qual]
        for node in iter_function_nodes(fn.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and not target.attr.startswith("_")):
                    names.setdefault(target.attr)
    return list(names)


def _module_mentions_name(tree: ast.Module, name: str) -> bool:
    """True when ``name`` appears as an identifier anywhere in a tree."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == name:
            return True
        if isinstance(node, ast.Attribute) and node.attr == name:
            return True
    return False


class TwinParityAnalysis:
    """Registry-driven parity check between scalar/batch class pairs."""

    def __init__(self, index: ProjectIndex,
                 registry: Sequence[TwinPair] = TWIN_REGISTRY) -> None:
        self.index = index
        self.registry = registry
        self._by_name: Dict[str, List[ClassInfo]] = {}
        for cls in index.classes.values():
            self._by_name.setdefault(cls.name, []).append(cls)

    # -- pairing --------------------------------------------------------

    def _match(self, scalar: ClassInfo,
               candidates: List[ClassInfo]) -> ClassInfo:
        """Prefer the batch class sharing the scalar's package root."""
        root = scalar.module.split(".")[0]
        for candidate in candidates:
            if candidate.module.split(".")[0] == root:
                return candidate
        return candidates[0]

    def pairs(self) -> Iterator[Tuple[TwinPair, ClassInfo, ClassInfo]]:
        for spec in self.registry:
            scalars = sorted(self._by_name.get(spec.scalar, []),
                             key=lambda c: c.qualname)
            batches = sorted(self._by_name.get(spec.batch, []),
                             key=lambda c: c.qualname)
            if not batches:
                continue  # partial scan (e.g. --changed): not provable
            for scalar in scalars:
                yield spec, scalar, self._match(scalar, batches)

    # -- member surfaces ------------------------------------------------

    def _batch_members(self, batch: ClassInfo) -> Dict[str, str]:
        """Batch member name -> kind (method/attr/constant)."""
        members: Dict[str, str] = {}
        for name in _class_constants(batch):
            members[name] = "constant"
        for name in _instance_attrs(self.index, batch):
            members.setdefault(name, "attr")
        for name in batch.methods:
            members[name] = "method"
        return members

    # -- checks ---------------------------------------------------------

    def check(self, enabled: frozenset) -> List[Finding]:
        findings: List[Finding] = []
        for spec, scalar, batch in self.pairs():
            findings.extend(self._check_pair(spec, scalar, batch,
                                             enabled))
        return findings

    def _finding(self, cls: ClassInfo, line: int, rule_id: str,
                 message: str) -> Finding:
        return Finding(path=cls.path, line=line,
                       col=cls.node.col_offset + 1,
                       rule_id=rule_id, message=message)

    def _check_pair(self, spec: TwinPair, scalar: ClassInfo,
                    batch: ClassInfo,
                    enabled: frozenset) -> Iterator[Finding]:
        batch_members = self._batch_members(batch)
        batch_module = self.index.modules.get(batch.module)

        def resolve(name: str) -> Optional[str]:
            for candidate in _counterpart_names(name, spec):
                if candidate in batch_members:
                    return candidate
            return None

        # Public scalar methods.
        for name in sorted(scalar.methods):
            if name.startswith("_") or name in spec.exempt:
                continue
            counterpart = resolve(name)
            if counterpart is None:
                if "RPR601" in enabled:
                    yield self._finding(
                        batch, batch.node.lineno, "RPR601",
                        f"batched twin {batch.name!r} has no "
                        f"counterpart for scalar method "
                        f"{scalar.name}.{name} "
                        f"({scalar.module}); accepted names: "
                        f"{', '.join(_counterpart_names(name, spec))} "
                        f"— add the lane method or register an "
                        f"exemption with its reason")
                continue
            if "RPR602" in enabled \
                    and batch_members[counterpart] == "method":
                yield from self._check_signature(
                    spec, scalar, batch, name, counterpart)

        # Public scalar instance attributes.
        if spec.check_attrs:
            batch_attr_pool = dict(batch_members)
            for name in sorted(_instance_attrs(self.index, scalar)):
                if name in spec.exempt or name in scalar.methods:
                    continue
                found = None
                for candidate in _counterpart_names(name, spec):
                    if candidate in batch_attr_pool:
                        found = candidate
                        break
                if found is None and "RPR601" in enabled:
                    yield self._finding(
                        batch, batch.node.lineno, "RPR601",
                        f"batched twin {batch.name!r} has no "
                        f"counterpart for scalar attribute "
                        f"{scalar.name}.{name} ({scalar.module}); "
                        f"lane state must grow with the scalar state "
                        f"or be exempted with a reason")

        # Class-level numeric constants.
        scalar_constants = _class_constants(scalar)
        batch_constants = _class_constants(batch)
        for name in sorted(scalar_constants):
            if name.startswith("_") or name in spec.exempt:
                continue
            value, _ = scalar_constants[name]
            if name in batch_constants:
                batch_value, batch_line = batch_constants[name]
                if "RPR602" in enabled and batch_value != value:
                    yield self._finding(
                        batch, batch_line, "RPR602",
                        f"constant {batch.name}.{name} = {batch_value} "
                        f"drifted from scalar {scalar.name}.{name} = "
                        f"{value} ({scalar.module}); twins must share "
                        f"tuning constants")
                continue
            referenced = (batch_module is not None
                          and _module_mentions_name(batch_module.tree,
                                                    name))
            if not referenced and "RPR601" in enabled:
                yield self._finding(
                    batch, batch.node.lineno, "RPR601",
                    f"batched twin {batch.name!r} neither defines nor "
                    f"references scalar constant {scalar.name}.{name} "
                    f"= {value} ({scalar.module}); read it from the "
                    f"scalar class so retuning cannot diverge")

    # -- RPR602 signatures ----------------------------------------------

    def _check_signature(self, spec: TwinPair, scalar: ClassInfo,
                         batch: ClassInfo, scalar_name: str,
                         batch_name: str) -> Iterator[Finding]:
        scalar_fn = self.index.functions[scalar.methods[scalar_name]]
        batch_fn = self.index.functions[batch.methods[batch_name]]
        assert isinstance(scalar_fn.node, FUNCTION_NODES)
        assert isinstance(batch_fn.node, FUNCTION_NODES)
        if scalar_fn.node.args.vararg or scalar_fn.node.args.kwarg \
                or batch_fn.node.args.vararg or batch_fn.node.args.kwarg:
            return  # *args/**kwargs absorb anything; not provable
        scalar_params = [a.arg for a in scalar_fn.keyword_parameters()
                         if a.arg not in ("self", "cls")]
        batch_params = [a.arg for a in batch_fn.keyword_parameters()
                        if a.arg not in ("self", "cls")]
        batch_names = set(batch_params)
        missing = [p for p in scalar_params if p not in batch_names]
        if missing:
            yield self._finding(
                batch, batch_fn.node.lineno, "RPR602",
                f"{batch.name}.{batch_name} drifted from scalar "
                f"{scalar.name}.{scalar_name} ({scalar.module}): "
                f"scalar parameter{'s' if len(missing) != 1 else ''} "
                f"{', '.join(repr(p) for p in missing)} "
                f"{'have' if len(missing) != 1 else 'has'} no batched "
                f"equivalent (lane/mask extras are fine; renames need "
                f"a registry alias)")
            return
        scalar_defaults = _literal_defaults(scalar_fn.node)
        batch_defaults = _literal_defaults(batch_fn.node)
        for param in scalar_params:
            if param in scalar_defaults and param in batch_defaults \
                    and scalar_defaults[param] != batch_defaults[param]:
                yield self._finding(
                    batch, batch_fn.node.lineno, "RPR602",
                    f"{batch.name}.{batch_name} default for "
                    f"{param!r} ({batch_defaults[param]!r}) drifted "
                    f"from scalar {scalar.name}.{scalar_name} "
                    f"({scalar_defaults[param]!r})")


def _literal_defaults(node: ast.AST) -> Dict[str, object]:
    """Parameter name -> literal default value, literals only."""
    assert isinstance(node, FUNCTION_NODES)
    args = node.args
    defaults: Dict[str, object] = {}
    positional = [*args.posonlyargs, *args.args]
    for arg, default in zip(positional[len(positional)
                                       - len(args.defaults):],
                            args.defaults):
        if isinstance(default, ast.Constant):
            defaults[arg.arg] = default.value
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None and isinstance(default, ast.Constant):
            defaults[arg.arg] = default.value
    return defaults


def run_twin_pass(index: ProjectIndex, graph: object,
                  enabled: frozenset,
                  registry: Sequence[TwinPair] = TWIN_REGISTRY,
                  ) -> List[Finding]:
    """Check every registered twin pair present in the scanned set."""
    analysis = TwinParityAnalysis(index, registry)
    return analysis.check(enabled)
