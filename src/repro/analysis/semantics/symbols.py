"""Project-wide symbol table: modules, classes, functions, imports.

The index is built once per lint run from the already-parsed module
trees.  It answers the questions the interprocedural passes keep asking:

* what fully-qualified name does this local identifier refer to
  (through ``import``/``from``-imports, aliases, relative imports, and
  star imports)?
* what functions and classes does module ``M`` define, and which class
  does ``self.attr`` hold an instance of?
* which classes subclass which (within the project), so method calls
  can be resolved virtually?

Qualified names follow Python's own convention: a dotted module path
followed by the class/function path inside the module, e.g.
``repro.sim.engine.Simulation.run``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: AST node types that define a new function scope.
FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Mutable-literal expression types for module-global classification.
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "defaultdict",
                                   "deque", "OrderedDict", "Counter"})


def module_name_for_path(path: Path) -> str:
    """Dotted module name for ``path``, walking up while packages last.

    ``src/repro/sim/engine.py`` resolves to ``repro.sim.engine`` because
    ``repro`` and ``repro.sim`` carry ``__init__.py`` markers while
    ``src`` does not.  A standalone file is just its stem.
    """
    path = path.resolve()
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


@dataclass
class SourceModule:
    """One parsed module handed to the whole-program analyzer."""

    path: str
    source: str
    tree: ast.Module
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = module_name_for_path(Path(self.path))


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    path: str
    class_qualname: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None

    def decorator_names(self) -> Set[str]:
        """Trailing identifiers of the decorator expressions."""
        names: Set[str] = set()
        assert isinstance(self.node, FUNCTION_NODES)
        for dec in self.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if isinstance(target, ast.Attribute):
                names.add(target.attr)
            elif isinstance(target, ast.Name):
                names.add(target.id)
        return names

    def binds_instance(self) -> bool:
        """True when the first parameter is ``self``/``cls``."""
        if not self.is_method:
            return False
        return "staticmethod" not in self.decorator_names()

    def parameters(self) -> List[ast.arg]:
        """Positional-capable parameters, instance slot included."""
        assert isinstance(self.node, FUNCTION_NODES)
        args = self.node.args
        return [*args.posonlyargs, *args.args]

    def keyword_parameters(self) -> List[ast.arg]:
        assert isinstance(self.node, FUNCTION_NODES)
        args = self.node.args
        return [*args.posonlyargs, *args.args, *args.kwonlyargs]


@dataclass
class ClassInfo:
    """One class definition, with enough structure to bind arguments."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    #: method name -> function qualname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: Raw (unresolved) dotted base-class names.
    base_names: List[str] = field(default_factory=list)
    #: Dataclass-style annotated field names, in declaration order.
    fields: List[str] = field(default_factory=list)
    #: attribute name -> class qualname (from ``self.x = C(...)`` and
    #: annotated assignments), filled in by the index builder.
    attr_types: Dict[str, str] = field(default_factory=dict)

    def is_dataclass_like(self) -> bool:
        """Annotated fields and no explicit ``__init__``."""
        return bool(self.fields) and "__init__" not in self.methods


@dataclass
class ModuleInfo:
    """Per-module symbol information."""

    name: str
    path: str
    tree: ast.Module
    #: local name -> fully-qualified dotted target (project or external).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Modules star-imported by this module (resolved dotted names).
    star_imports: List[str] = field(default_factory=list)
    #: top-level function name -> qualname.
    functions: Dict[str, str] = field(default_factory=dict)
    #: top-level class name -> qualname.
    classes: Dict[str, str] = field(default_factory=dict)
    #: Names assigned at module level (any expression).
    globals: Set[str] = field(default_factory=set)
    #: Module-level names bound to mutable containers.
    mutable_globals: Set[str] = field(default_factory=set)


def _dotted(expr: ast.expr) -> Optional[str]:
    """``a.b.c`` as a string, or None for non-name expressions."""
    chain: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    chain.append(node.id)
    return ".".join(reversed(chain))


def _collect_module_imports(module_name: str, is_package: bool,
                            tree: ast.Module,
                            ) -> Tuple[Dict[str, str], List[str]]:
    """Local name -> dotted target, resolving relative imports.

    Unlike the per-file collector in :mod:`repro.analysis.rules`, this
    one understands ``from ..units import hours`` because it knows the
    importing module's own dotted name.
    """
    package_parts = module_name.split(".")
    if not is_package:
        package_parts = package_parts[:-1]
    imports: Dict[str, str] = {}
    stars: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = (alias.name if alias.asname
                                  else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[:len(package_parts) - node.level + 1]
                if node.module:
                    base = base + node.module.split(".")
                source = ".".join(base)
            else:
                source = node.module or ""
            if not source:
                continue
            for alias in node.names:
                if alias.name == "*":
                    stars.append(source)
                    continue
                imports[alias.asname or alias.name] = (
                    f"{source}.{alias.name}")
    return imports, stars


def _is_mutable_initializer(value: ast.expr) -> bool:
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in _MUTABLE_CONSTRUCTORS
    return False


class ProjectIndex:
    """Symbol table over every module in one lint run."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: class qualname -> direct subclasses (project-internal).
        self.subclasses: Dict[str, Set[str]] = {}

    # -- construction ---------------------------------------------------

    def add_module(self, module: SourceModule) -> None:
        is_package = Path(module.path).stem == "__init__"
        imports, stars = _collect_module_imports(
            module.name, is_package, module.tree)
        info = ModuleInfo(name=module.name, path=module.path,
                          tree=module.tree, imports=imports,
                          star_imports=stars)
        self.modules[module.name] = info
        self._index_body(module, info, module.tree.body,
                         prefix=module.name, class_info=None)
        for stmt in module.tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value: Optional[ast.expr] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    info.globals.add(target.id)
                    if value is not None and _is_mutable_initializer(value):
                        info.mutable_globals.add(target.id)

    def _index_body(self, module: SourceModule, info: ModuleInfo,
                    body: Sequence[ast.stmt], prefix: str,
                    class_info: Optional[ClassInfo]) -> None:
        for stmt in body:
            if isinstance(stmt, FUNCTION_NODES):
                qualname = f"{prefix}.{stmt.name}"
                function = FunctionInfo(
                    qualname=qualname, module=module.name, name=stmt.name,
                    node=stmt, path=module.path,
                    class_qualname=(class_info.qualname
                                    if class_info else None))
                self.functions[qualname] = function
                if class_info is not None:
                    class_info.methods[stmt.name] = qualname
                elif prefix == module.name:
                    info.functions[stmt.name] = qualname
                # Nested defs are indexed too (callable by local name).
                self._index_body(module, info, stmt.body,
                                 prefix=qualname, class_info=None)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{prefix}.{stmt.name}"
                cls = ClassInfo(qualname=qualname, module=module.name,
                                name=stmt.name, node=stmt,
                                path=module.path)
                cls.base_names = [name for base in stmt.bases
                                  if (name := _dotted(base)) is not None]
                for inner in stmt.body:
                    if (isinstance(inner, ast.AnnAssign)
                            and isinstance(inner.target, ast.Name)):
                        cls.fields.append(inner.target.id)
                self.classes[qualname] = cls
                if prefix == module.name:
                    info.classes[stmt.name] = qualname
                self._index_body(module, info, stmt.body,
                                 prefix=qualname, class_info=cls)

    def finalize(self) -> None:
        """Resolve cross-module facts once every module is indexed."""
        for cls in self.classes.values():
            module = self.modules[cls.module]
            for base_name in cls.base_names:
                base_qual = self.resolve_name(module, base_name)
                if base_qual in self.classes:
                    self.subclasses.setdefault(
                        base_qual, set()).add(cls.qualname)
        for cls in self.classes.values():
            self._infer_attr_types(cls)

    def _infer_attr_types(self, cls: ClassInfo) -> None:
        """``self.x = C(...)`` / ``self.x: C`` -> attr_types[x] = C."""
        module = self.modules[cls.module]
        for method_qual in cls.methods.values():
            node = self.functions[method_qual].node
            for stmt in ast.walk(node):
                target: Optional[ast.expr] = None
                type_qual: Optional[str] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    type_qual = self._class_of_value(module, stmt.value)
                elif isinstance(stmt, ast.AnnAssign):
                    target = stmt.target
                    type_qual = self.resolve_annotation(
                        module, stmt.annotation)
                    if type_qual is None and stmt.value is not None:
                        type_qual = self._class_of_value(module, stmt.value)
                if (type_qual and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    cls.attr_types.setdefault(target.attr, type_qual)

    def _class_of_value(self, module: ModuleInfo,
                        value: ast.expr) -> Optional[str]:
        """Class qualname when ``value`` is ``SomeClass(...)``."""
        if not isinstance(value, ast.Call):
            return None
        dotted = _dotted(value.func)
        if dotted is None:
            return None
        resolved = self.resolve_name(module, dotted)
        return resolved if resolved in self.classes else None

    # -- queries --------------------------------------------------------

    def resolve_name(self, module: ModuleInfo, dotted: str) -> str:
        """Fully qualify ``dotted`` as seen from ``module``.

        The head segment is resolved through the module's imports, then
        its own top-level definitions, then star imports; unresolvable
        heads come back unchanged (external names keep their dotted
        spelling, which is what the impurity tables match against).
        """
        head, _, rest = dotted.partition(".")
        target: Optional[str] = None
        if head in module.imports:
            target = module.imports[head]
        elif head in module.functions:
            target = module.functions[head]
        elif head in module.classes:
            target = module.classes[head]
        elif head in module.globals:
            target = f"{module.name}.{head}"
        else:
            for star in module.star_imports:
                starred = self.modules.get(star)
                if starred is None:
                    continue
                if head in starred.functions:
                    target = starred.functions[head]
                    break
                if head in starred.classes:
                    target = starred.classes[head]
                    break
                if head in starred.globals:
                    target = f"{starred.name}.{head}"
                    break
        if target is None:
            target = head
        resolved = f"{target}.{rest}" if rest else target
        # An import may name a module-level symbol of a scanned module
        # indirectly (``import repro.units as u`` -> ``u.hours``).
        return resolved

    def resolve_annotation(self, module: ModuleInfo,
                           annotation: Optional[ast.expr],
                           ) -> Optional[str]:
        """Class qualname an annotation refers to, if in the project."""
        if annotation is None:
            return None
        node: Optional[ast.expr] = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            base = _dotted(node.value)
            if base in ("Optional", "typing.Optional"):
                node = node.slice
            else:
                return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            for side in (node.left, node.right):
                if not (isinstance(side, ast.Constant)
                        and side.value is None):
                    node = side
                    break
        dotted = _dotted(node) if isinstance(node, ast.expr) else None
        if dotted is None:
            return None
        resolved = self.resolve_name(module, dotted)
        return resolved if resolved in self.classes else None

    def lookup_method(self, class_qualname: str,
                      method: str) -> Optional[str]:
        """Resolve ``method`` on a class, walking project base classes."""
        seen: Set[str] = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            module = self.modules.get(cls.module)
            if module is not None:
                queue.extend(self.resolve_name(module, base)
                             for base in cls.base_names)
        return None

    def override_methods(self, class_qualname: str,
                         method: str) -> Iterator[str]:
        """Overrides of ``method`` in transitive subclasses."""
        seen: Set[str] = set()
        queue = list(self.subclasses.get(class_qualname, ()))
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                yield cls.methods[method]
            queue.extend(self.subclasses.get(current, ()))


def build_project_index(modules: Sequence[SourceModule]) -> ProjectIndex:
    """Index every module and resolve cross-module structure."""
    index = ProjectIndex()
    for module in modules:
        index.add_module(module)
    index.finalize()
    return index
