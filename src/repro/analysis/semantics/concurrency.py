"""Pass 4c: concurrency safety for pool workers and async bodies (RPR70x).

:class:`~repro.runner.runner.ExperimentRunner` fans cache misses out
over a ``ProcessPoolExecutor``, and the lint engine does the same with
its per-file stage.  Everything that crosses that boundary is pickled,
and everything the workers execute runs in a *forked or spawned copy*
of the parent: module globals diverge silently, module-level RNG and
cache state is duplicated per worker, and nothing written in a worker
ever comes back except the return value.  The planned async ``repro
serve`` entry point adds the dual hazard — blocking calls inside
``async def`` bodies stall the whole event loop.

The pass finds every **pool boundary** statically: a call
``pool.map(...)`` / ``pool.submit(...)`` / ``pool.apply_async(...)``
where ``pool`` is bound (via ``with ... as`` or assignment) to a call
that resolves to a process-pool factory
(:data:`PROCESS_POOL_FACTORIES`).  The callable argument of each
boundary call defines the **worker roots**; the call-graph closure over
those roots is the worker-reachable set, the analogue of the purity
pass's cache-feeding closure.

Findings:

* RPR701 — unpicklable objects crossing the boundary: a ``lambda`` or
  nested function as the submitted callable (pickle refuses both), or a
  lambda/generator expression passed as a data argument.
* RPR702 — a worker-reachable function writes a mutable module global
  (rebind via ``global``, subscript store, or a mutating method call);
  the write lands in the worker's copy and the parent never sees it.
* RPR703 (advisory) — RNG or cache state shared across workers without
  reseed: a worker-reachable function draws from a module-level RNG it
  never reseeds (every forked worker inherits the same stream), or is
  itself ``lru_cache``-decorated (each worker grows a cold private
  cache — correct but silently N× the memory and 0% cross-worker hits).
* RPR704 — blocking calls in ``async def`` bodies: ``time.sleep``,
  synchronous ``open``/``Path.read_text``-style file I/O, subprocess
  and socket waits.

Soundness boundary: like the purity pass, only statically-resolvable
call shapes produce edges, and only pools bound to a local name are
recognized — a pool smuggled through an attribute or container is
invisible.  RPR704 needs no reachability at all: blocking inside *any*
``async def`` is wrong wherever it is awaited from.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..rules import Rule, register
from .callgraph import CallGraph, iter_function_nodes
from .purity import MUTATING_METHODS
from .symbols import (
    _dotted,
    FUNCTION_NODES,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)

#: Constructors whose workers run in separate processes (pickling
#: boundary + copied module state).
PROCESS_POOL_FACTORIES = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
    "multiprocessing.get_context.Pool",
})

#: Pool methods whose first argument is the worker callable.
SUBMIT_METHODS = frozenset({
    "map", "submit", "apply", "apply_async",
    "map_async", "imap", "imap_unordered",
    "starmap", "starmap_async",
})

#: Module-level RNG constructors (resolved dotted names).
RNG_FACTORIES = frozenset({
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
})

#: RNG methods that reseed/fork the stream (using one of these on the
#: shared RNG inside the worker-reachable function clears RPR703).
RNG_RESEED_METHODS = frozenset({"seed", "spawn", "jumped"})

#: Decorators that memoize into module-owned state.
CACHE_DECORATORS = frozenset({"lru_cache", "cache", "cached_property"})

#: Synchronous calls that block the event loop inside ``async def``.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
})

#: Method names that do synchronous file I/O wherever they appear
#: (``Path.read_text`` et al.).
BLOCKING_IO_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})


@register
class PoolBoundaryPickleRule(Rule):
    """Everything crossing a process-pool boundary must pickle.

    Whole-program: the boundary call and the unpicklable callable can
    live modules apart; pickle only fails at runtime, in the pool, with
    the original traceback swallowed.
    """

    id = "RPR701"
    whole_program = True


@register
class WorkerGlobalMutationRule(Rule):
    """No worker-reachable function may write a mutable module global.

    Whole-program: the write executes in a forked worker's copy of the
    module; the parent (and every other worker) never observes it, so
    parallel and serial runs silently diverge.
    """

    id = "RPR702"
    whole_program = True


@register
class WorkerSharedRandomCacheRule(Rule):
    """Advisory: module RNG/cache state duplicated across pool workers.

    Whole-program: a module-level RNG drawn from worker-reachable code
    gives every forked worker the same stream (correlated "random"
    scenarios); an ``lru_cache`` on a worker-reachable function becomes
    N cold private caches.  Advisory because both can be intended —
    suppress with a reasoned ``# repro: noqa[RPR703]`` when they are.
    """

    id = "RPR703"
    whole_program = True


@register
class BlockingCallInAsyncRule(Rule):
    """No blocking call inside an ``async def`` body.

    Whole-program only in machinery (it rides the project index);
    ``time.sleep`` or sync file I/O in a coroutine stalls every other
    task on the loop — use the async equivalent or a thread offload.
    """

    id = "RPR704"
    whole_program = True


class _Boundary:
    """One ``pool.<submit>(worker, ...)`` call site."""

    __slots__ = ("fn", "call", "method")

    def __init__(self, fn: FunctionInfo, call: ast.Call,
                 method: str) -> None:
        self.fn = fn
        self.call = call
        self.method = method


class ConcurrencyAnalysis:
    """Pool-boundary discovery, worker closure, and async-body checks."""

    def __init__(self, index: ProjectIndex, graph: CallGraph) -> None:
        self.index = index
        self.graph = graph
        self.boundaries: List[_Boundary] = []
        self.worker_roots: Set[str] = set()
        self._find_boundaries()
        self.reachable, self.parents = graph.reachable_from(
            sorted(self.worker_roots))

    # -- boundary discovery ---------------------------------------------

    def _resolves_to(self, fn: FunctionInfo, expr: ast.expr,
                     targets: frozenset) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        dotted = _dotted(expr.func)
        if dotted is None:
            return False
        module = self.index.modules[fn.module]
        return self.index.resolve_name(module, dotted) in targets

    def _pool_names(self, fn: FunctionInfo) -> Set[str]:
        """Local names bound to process-pool instances in ``fn``."""
        names: Set[str] = set()
        for node in iter_function_nodes(fn.node):
            if isinstance(node, ast.With):
                for item in node.items:
                    if (isinstance(item.optional_vars, ast.Name)
                            and self._resolves_to(
                                fn, item.context_expr,
                                PROCESS_POOL_FACTORIES)):
                        names.add(item.optional_vars.id)
            elif isinstance(node, ast.Assign):
                if self._resolves_to(fn, node.value,
                                     PROCESS_POOL_FACTORIES):
                    names.update(
                        target.id for target in node.targets
                        if isinstance(target, ast.Name))
        return names

    def _find_boundaries(self) -> None:
        for qualname in sorted(self.index.functions):
            fn = self.index.functions[qualname]
            pools = self._pool_names(fn)
            if not pools:
                continue
            for node in iter_function_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id in pools
                        and func.attr in SUBMIT_METHODS):
                    continue
                self.boundaries.append(_Boundary(fn, node, func.attr))
                self._add_worker_root(fn, node)

    def _add_worker_root(self, fn: FunctionInfo, call: ast.Call) -> None:
        if not call.args:
            return
        dotted = _dotted(call.args[0])
        if dotted is None:
            return
        module = self.index.modules[fn.module]
        resolved = self.index.resolve_name(module, dotted)
        if resolved in self.index.functions:
            self.worker_roots.add(resolved)
        elif resolved in self.index.classes:
            # Submitting a class runs __init__ in the worker.
            init = self.index.lookup_method(resolved, "__init__")
            if init is not None:
                self.worker_roots.add(init)

    # -- reporting ------------------------------------------------------

    def _finding(self, fn: FunctionInfo, node: ast.AST, rule_id: str,
                 message: str, chain: bool = False) -> Finding:
        if chain:
            links = self.graph.chain_to(fn.qualname, self.parents)
            tail = " -> ".join(
                link.rsplit(".", 2)[-1] if link.count(".") < 2
                else ".".join(link.rsplit(".", 2)[-2:])
                for link in links)
            message = f"{message} [worker-reachable: {tail}]"
        return Finding(
            path=fn.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message)

    # -- driver ---------------------------------------------------------

    def check(self, enabled: frozenset) -> List[Finding]:
        findings: List[Finding] = []
        if "RPR701" in enabled:
            for boundary in self.boundaries:
                findings.extend(self._check_boundary(boundary))
        worker_checks = ("RPR702" in enabled or "RPR703" in enabled)
        if worker_checks:
            rng_globals = self._module_rng_globals()
            for qualname in sorted(self.reachable):
                fn = self.index.functions.get(qualname)
                if fn is None:
                    continue
                if "RPR702" in enabled:
                    findings.extend(self._check_worker_globals(fn))
                if "RPR703" in enabled:
                    findings.extend(
                        self._check_shared_rng_cache(fn, rng_globals))
        if "RPR704" in enabled:
            for qualname in sorted(self.index.functions):
                fn = self.index.functions[qualname]
                if isinstance(fn.node, ast.AsyncFunctionDef):
                    findings.extend(self._check_async_body(fn))
        return findings

    # RPR701 ------------------------------------------------------------

    def _nested_def_names(self, fn: FunctionInfo) -> Set[str]:
        names: Set[str] = set()
        assert isinstance(fn.node, FUNCTION_NODES)
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, FUNCTION_NODES) and stmt is not fn.node:
                names.add(stmt.name)
        return names

    def _check_boundary(self, boundary: _Boundary) -> Iterator[Finding]:
        fn, call = boundary.fn, boundary.call
        if call.args:
            target = call.args[0]
            if isinstance(target, ast.Lambda):
                yield self._finding(
                    fn, target, "RPR701",
                    f"lambda submitted to pool.{boundary.method}() "
                    f"cannot be pickled into a worker process; use a "
                    f"module-level function")
            elif (isinstance(target, ast.Name)
                  and target.id in self._nested_def_names(fn)):
                yield self._finding(
                    fn, target, "RPR701",
                    f"nested function {target.id!r} submitted to "
                    f"pool.{boundary.method}() cannot be pickled into "
                    f"a worker process; hoist it to module level")
        for arg in [*call.args[1:],
                    *(kw.value for kw in call.keywords)]:
            if isinstance(arg, ast.Lambda):
                yield self._finding(
                    fn, arg, "RPR701",
                    f"lambda passed as a pool.{boundary.method}() "
                    f"argument cannot be pickled across the pool "
                    f"boundary")
            elif isinstance(arg, ast.GeneratorExp):
                # The pool consumes iterables in the parent, but a
                # generator of unpicklable items fails lazily and
                # cannot be re-consumed on retry; materialize it.
                yield self._finding(
                    fn, arg, "RPR701",
                    f"generator expression passed to "
                    f"pool.{boundary.method}() is consumed once and "
                    f"hides pickling failures until mid-iteration; "
                    f"materialize it as a list first")

    # RPR702 ------------------------------------------------------------

    def _check_worker_globals(self, fn: FunctionInfo) -> Iterator[Finding]:
        module = self.index.modules[fn.module]
        declared: Set[str] = set()
        for node in iter_function_nodes(fn.node):
            if isinstance(node, ast.Global):
                declared.update(node.names)
        for node in iter_function_nodes(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Name)
                            and target.id in declared):
                        yield self._finding(
                            fn, node, "RPR702",
                            f"rebinding module global {target.id!r} in "
                            f"a worker-reachable function lands in the "
                            f"worker's copy; the parent process never "
                            f"sees it", chain=True)
                    elif (isinstance(target, ast.Subscript)
                          and isinstance(target.value, ast.Name)
                          and target.value.id in module.mutable_globals):
                        yield self._finding(
                            fn, node, "RPR702",
                            f"writing into module-level container "
                            f"{target.value.id!r} in a worker-reachable "
                            f"function diverges per worker process",
                            chain=True)
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id in module.mutable_globals
                        and func.attr in MUTATING_METHODS):
                    yield self._finding(
                        fn, node, "RPR702",
                        f"{func.value.id}.{func.attr}() mutates a "
                        f"module global in a worker-reachable function; "
                        f"each worker mutates its own copy", chain=True)

    # RPR703 ------------------------------------------------------------

    def _module_rng_globals(self) -> Dict[str, Tuple[str, int]]:
        """``module.name`` -> (local name, def line) for RNG globals."""
        rngs: Dict[str, Tuple[str, int]] = {}
        for module in self.index.modules.values():
            for stmt in module.tree.body:
                if not (isinstance(stmt, ast.Assign)
                        and isinstance(stmt.value, ast.Call)):
                    continue
                dotted = _dotted(stmt.value.func)
                if dotted is None:
                    continue
                if self.index.resolve_name(module,
                                           dotted) not in RNG_FACTORIES:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        rngs[f"{module.name}.{target.id}"] = (
                            target.id, stmt.lineno)
        return rngs

    def _rng_accesses(self, fn: FunctionInfo, module: ModuleInfo,
                      rng_globals: Dict[str, Tuple[str, int]],
                      ) -> Tuple[Dict[str, ast.Attribute], Set[str]]:
        """(first draw per RNG qualname, reseeded RNG qualnames)."""
        draws: Dict[str, ast.Attribute] = {}
        reseeded: Set[str] = set()
        for node in iter_function_nodes(fn.node):
            if not (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)):
                continue
            resolved = self.index.resolve_name(module, node.value.id)
            if resolved not in rng_globals:
                continue
            if node.attr in RNG_RESEED_METHODS:
                reseeded.add(resolved)
            else:
                draws.setdefault(resolved, node)
        return draws, reseeded

    def _check_shared_rng_cache(self, fn: FunctionInfo,
                                rng_globals: Dict[str, Tuple[str, int]],
                                ) -> Iterator[Finding]:
        decorators = fn.decorator_names() & CACHE_DECORATORS
        if decorators:
            name = sorted(decorators)[0]
            yield self._finding(
                fn, fn.node, "RPR703",
                f"@{name} on worker-reachable {fn.name}() becomes a "
                f"cold private cache in every pool worker (no "
                f"cross-worker hits, N x the memory); cache in the "
                f"parent or key results through the result cache",
                chain=True)
        module = self.index.modules[fn.module]
        if rng_globals:
            draws, reseeded = self._rng_accesses(fn, module, rng_globals)
            for qualname, node in sorted(draws.items()):
                if qualname in reseeded:
                    continue
                local, _ = rng_globals[qualname]
                yield self._finding(
                    fn, node, "RPR703",
                    f"module-level RNG {local!r} drawn from a "
                    f"worker-reachable function without reseed; forked "
                    f"workers inherit identical streams — reseed per "
                    f"task or pass a seeded generator in", chain=True)

    # RPR704 ------------------------------------------------------------

    def _check_async_body(self, fn: FunctionInfo) -> Iterator[Finding]:
        module = self.index.modules[fn.module]
        for node in iter_function_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                yield self._finding(
                    fn, node, "RPR704",
                    "synchronous open() inside an async def blocks the "
                    "event loop; offload file I/O to a thread")
                continue
            if (isinstance(func, ast.Attribute)
                    and func.attr in BLOCKING_IO_METHODS):
                yield self._finding(
                    fn, node, "RPR704",
                    f".{func.attr}() inside an async def does "
                    f"synchronous file I/O on the event loop; offload "
                    f"it to a thread")
                continue
            dotted = _dotted(func)
            if dotted is None:
                continue
            resolved = self.index.resolve_name(module, dotted)
            if resolved in BLOCKING_CALLS:
                yield self._finding(
                    fn, node, "RPR704",
                    f"blocking call to {resolved!r} inside an async "
                    f"def stalls every task on the event loop; use "
                    f"the async equivalent (e.g. asyncio.sleep, "
                    f"asyncio.create_subprocess_exec)")


def run_concurrency_pass(index: ProjectIndex, graph: CallGraph,
                         enabled: frozenset) -> List[Finding]:
    """Pool boundaries, worker closure checks, async-body checks."""
    analysis = ConcurrencyAnalysis(index, graph)
    return analysis.check(enabled)
