"""Driver for the whole-program passes.

:func:`run_whole_program` is the single entry point the lint engine
calls: it builds the project index and call graph once, runs whichever
interprocedural passes the selected rule ids enable, and applies
``# repro: noqa`` suppressions (expanded to full statement extents) to
the combined findings.

The array lattice is shared: when both the RPR4xx/RPR5xx array pass and
the RPR603/RPR604 lane-isolation pass are enabled, one
:class:`~.arrays.ArrayAnalysis` is built and propagated once and both
passes read the same fixpoint.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..findings import Finding, PassStat
from ..suppressions import (
    collect_suppressions,
    expand_suppressions,
    is_suppressed,
)
from .arrays import ArrayAnalysis, run_array_pass
from .callgraph import build_call_graph
from .concurrency import run_concurrency_pass
from .dimensions import run_dimensional_pass
from .lanes import run_lane_pass
from .purity import run_purity_pass
from .symbols import SourceModule, build_project_index
from .twins import run_twin_pass

#: Rule-id prefixes owned by each interprocedural pass.
DIMENSION_PREFIX = "RPR11"
PURITY_PREFIX = "RPR21"
ARRAY_PREFIXES = ("RPR4", "RPR5")
TWIN_IDS = frozenset({"RPR601", "RPR602"})
LANE_IDS = frozenset({"RPR603", "RPR604"})
CONCURRENCY_PREFIX = "RPR7"


def whole_program_rule_ids() -> List[str]:
    """Ids of every registered whole-program rule."""
    from ..rules import all_rules
    return [rule_id for rule_id, rule in all_rules().items()
            if getattr(rule, "whole_program", False)]


def run_whole_program(modules: Sequence[SourceModule],
                      enabled_ids: Iterable[str],
                      stats: Optional[List[PassStat]] = None,
                      ) -> List[Finding]:
    """Run the enabled interprocedural passes over ``modules``.

    Args:
        modules: Every successfully-parsed module in the lint run; the
            passes see all of them at once (that is the point).
        enabled_ids: Selected rule ids; only the whole-program subsets
            (RPR11x, RPR21x, RPR4xx/5xx, RPR6xx, RPR7xx) matter here,
            the rest are ignored.
        stats: When given, one :class:`PassStat` per executed pass
            (plus the shared index/call-graph and array-lattice builds)
            is appended, for ``lint --stats``.

    Returns:
        Suppression-filtered findings, in (path, line, col, id) order.
    """
    enabled = frozenset(rule_id.upper() for rule_id in enabled_ids)
    want_dimensions = any(rule_id.startswith(DIMENSION_PREFIX)
                          for rule_id in enabled)
    want_purity = any(rule_id.startswith(PURITY_PREFIX)
                      for rule_id in enabled)
    want_arrays = any(rule_id.startswith(ARRAY_PREFIXES)
                      for rule_id in enabled)
    want_twins = bool(enabled & TWIN_IDS)
    want_lanes = bool(enabled & LANE_IDS)
    want_concurrency = any(rule_id.startswith(CONCURRENCY_PREFIX)
                           for rule_id in enabled)
    if not (want_dimensions or want_purity or want_arrays
            or want_twins or want_lanes or want_concurrency) \
            or not modules:
        return []

    # (index into ``stats``, ids of the findings the pass produced) so
    # the table can be re-counted after suppression filtering below.
    pass_findings: List[tuple] = []

    def timed(name, runner):
        start = time.perf_counter()
        result = runner()
        if stats is not None:
            count = len(result) if isinstance(result, list) else 0
            stats.append(PassStat(name=name,
                                  seconds=time.perf_counter() - start,
                                  findings=count))
            if isinstance(result, list):
                pass_findings.append(
                    (len(stats) - 1, {id(f) for f in result}))
        return result

    start = time.perf_counter()
    index = build_project_index(modules)
    graph = build_call_graph(index)
    if stats is not None:
        stats.append(PassStat(name="index+callgraph",
                              seconds=time.perf_counter() - start,
                              findings=0))

    shared_arrays: Optional[ArrayAnalysis] = None
    if want_arrays or want_lanes:
        def build_lattice() -> ArrayAnalysis:
            analysis = ArrayAnalysis(index, graph)
            analysis.propagate()
            return analysis
        shared_arrays = timed("array-lattice", build_lattice)

    findings: List[Finding] = []
    if want_dimensions:
        findings.extend(timed(
            "dimensions (RPR11x)",
            lambda: run_dimensional_pass(index, graph, enabled)))
    if want_purity:
        findings.extend(timed(
            "purity (RPR21x)",
            lambda: run_purity_pass(index, graph, enabled)))
    if want_arrays:
        findings.extend(timed(
            "arrays (RPR4xx/5xx)",
            lambda: run_array_pass(index, graph, enabled,
                                   analysis=shared_arrays)))
    if want_twins:
        findings.extend(timed(
            "twin-parity (RPR601/602)",
            lambda: run_twin_pass(index, graph, enabled)))
    if want_lanes:
        findings.extend(timed(
            "lane-isolation (RPR603/604)",
            lambda: run_lane_pass(index, graph, enabled,
                                  analysis=shared_arrays)))
    if want_concurrency:
        findings.extend(timed(
            "concurrency (RPR70x)",
            lambda: run_concurrency_pass(index, graph, enabled)))

    suppressions_by_path: Dict[str, Dict[int, FrozenSet[str]]] = {}
    for module in modules:
        suppressions = expand_suppressions(
            collect_suppressions(module.source), module.tree)
        suppressions_by_path[module.path] = suppressions
    kept = [finding for finding in findings
            if not is_suppressed(
                suppressions_by_path.get(finding.path, {}),
                finding.line, finding.rule_id)]
    if stats is not None:
        # Report what survives suppression, so the table agrees with
        # the verdict the run actually renders.
        surviving = {id(f) for f in kept}
        for position, produced in pass_findings:
            stat = stats[position]
            stats[position] = PassStat(
                name=stat.name, seconds=stat.seconds,
                findings=len(produced & surviving))
    return sorted(kept)
