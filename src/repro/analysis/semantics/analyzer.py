"""Driver for the whole-program passes.

:func:`run_whole_program` is the single entry point the lint engine
calls: it builds the project index and call graph once, runs whichever
interprocedural passes the selected rule ids enable, and applies
``# repro: noqa`` suppressions (expanded to full statement extents) to
the combined findings.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence

from ..findings import Finding
from ..suppressions import (
    collect_suppressions,
    expand_suppressions,
    is_suppressed,
)
from .arrays import run_array_pass
from .callgraph import build_call_graph
from .dimensions import run_dimensional_pass
from .purity import run_purity_pass
from .symbols import SourceModule, build_project_index

#: Rule-id prefixes owned by each interprocedural pass.
DIMENSION_PREFIX = "RPR11"
PURITY_PREFIX = "RPR21"
ARRAY_PREFIXES = ("RPR4", "RPR5")


def whole_program_rule_ids() -> List[str]:
    """Ids of every registered whole-program rule."""
    from ..rules import all_rules
    return [rule_id for rule_id, rule in all_rules().items()
            if getattr(rule, "whole_program", False)]


def run_whole_program(modules: Sequence[SourceModule],
                      enabled_ids: Iterable[str]) -> List[Finding]:
    """Run the enabled interprocedural passes over ``modules``.

    Args:
        modules: Every successfully-parsed module in the lint run; the
            passes see all of them at once (that is the point).
        enabled_ids: Selected rule ids; only the RPR11x/RPR21x subsets
            matter here, the rest are ignored.

    Returns:
        Suppression-filtered findings, in (path, line, col, id) order.
    """
    enabled = frozenset(rule_id.upper() for rule_id in enabled_ids)
    want_dimensions = any(rule_id.startswith(DIMENSION_PREFIX)
                          for rule_id in enabled)
    want_purity = any(rule_id.startswith(PURITY_PREFIX)
                      for rule_id in enabled)
    want_arrays = any(rule_id.startswith(ARRAY_PREFIXES)
                      for rule_id in enabled)
    if not (want_dimensions or want_purity or want_arrays) \
            or not modules:
        return []

    index = build_project_index(modules)
    graph = build_call_graph(index)

    findings: List[Finding] = []
    if want_dimensions:
        findings.extend(run_dimensional_pass(index, graph, enabled))
    if want_purity:
        findings.extend(run_purity_pass(index, graph, enabled))
    if want_arrays:
        findings.extend(run_array_pass(index, graph, enabled))

    suppressions_by_path: Dict[str, Dict[int, FrozenSet[str]]] = {}
    for module in modules:
        suppressions = expand_suppressions(
            collect_suppressions(module.source), module.tree)
        suppressions_by_path[module.path] = suppressions
    kept = [finding for finding in findings
            if not is_suppressed(
                suppressions_by_path.get(finding.path, {}),
                finding.line, finding.rule_id)]
    return sorted(kept)
