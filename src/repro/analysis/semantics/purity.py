"""Pass 2: cache-purity taint from the cache-feeding entry points (RPR21x).

The result cache stores a run's output under a SHA-256 of (request,
code); the experiment runner additionally promises parallel == serial
bit-for-bit.  Both guarantees require everything *reachable* from the
execution entry points to be pure: no clocks, no unseeded entropy, no
environment or filesystem reads, no unordered iteration, no mutable
module state.

The per-file RPR201/RPR202 rules approximate this with a directory
allowlist (``sim/ core/ storage/ runner/``).  This pass replaces that
approximation with an actual proof obligation: it walks the project
call graph from

* any function named ``execute_request`` (the runner's single
  execution path), and
* any method whose qualified name ends in ``Simulation.run`` (the
  engine tick loop),

and flags every impurity inside a reachable function — wherever the
function lives — attaching the call chain that makes it reachable.

Soundness boundary: the call graph resolves static call shapes only
(see :mod:`.callgraph`); calls through dict-registries, ``getattr``, or
injected objects (e.g. the engine's *injected* profiler) produce no
edge and are therefore not proven pure.  That is by design — the
profiler is injected precisely so the deterministic core never imports
a clock — and the docs spell the boundary out.

Findings: RPR210 clocks/entropy/unseeded RNG, RPR211 environment or
filesystem reads, RPR212 unordered-set iteration, RPR213 mutable
module-global writes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..checkers.determinism import (
    NondeterministicCallRule,
    _is_set_expression,
)
from ..findings import Finding
from ..rules import Rule, register
from .callgraph import CallGraph, iter_function_nodes
from .symbols import FunctionInfo, ProjectIndex

#: Function names treated as cache-feeding entry points wherever they
#: are defined (the runner's one execution path).
ROOT_FUNCTION_NAMES = frozenset({"execute_request"})

#: Qualified-name suffixes treated as entry points (the tick loop).
ROOT_QUALNAME_SUFFIXES = (".Simulation.run",)

#: Environment/filesystem call targets (resolved through imports).
IMPURE_IO_CALLS = frozenset({
    "open",
    "os.getenv",
    "os.environ.get",
    "os.listdir",
    "os.scandir",
    "os.walk",
    "os.stat",
    "os.getcwd",
    "os.cpu_count",
    "platform.node",
    "platform.platform",
    "socket.gethostname",
})

#: Methods that mutate a container in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
})


@register
class ReachableAmbientStateRule(Rule):
    """No clock/entropy/unseeded-RNG call reachable from the cache path.

    Whole-program: ``time.time()`` three frames below
    ``execute_request`` corrupts the content-addressed cache exactly
    like one in the tick loop; reachability, not directory, decides.
    """

    id = "RPR210"
    whole_program = True


@register
class ReachableIOReadRule(Rule):
    """No environment or filesystem read reachable from the cache path.

    Whole-program: results keyed by (request, code) must not depend on
    ``os.environ``, ``open()``, or host lookups anywhere downstream of
    the entry points.
    """

    id = "RPR211"
    whole_program = True


@register
class ReachableSetIterationRule(Rule):
    """No unordered-set iteration reachable from the cache path.

    Whole-program: set iteration order varies with hash seeds; a sum
    over a set two calls below the tick loop still breaks bit-for-bit
    reproducibility.
    """

    id = "RPR212"
    whole_program = True


@register
class ReachableGlobalMutationRule(Rule):
    """No mutable module-global write reachable from the cache path.

    Whole-program: memoizing into a module-level dict (or rebinding a
    module global) makes a run depend on what ran before it in the same
    process, which the parallel==serial guarantee forbids.
    """

    id = "RPR213"
    whole_program = True


def find_roots(index: ProjectIndex) -> List[str]:
    """Entry-point function qualnames present in this project."""
    roots = []
    for qualname, info in index.functions.items():
        if info.name in ROOT_FUNCTION_NAMES:
            roots.append(qualname)
        elif any(qualname.endswith(suffix)
                 for suffix in ROOT_QUALNAME_SUFFIXES):
            roots.append(qualname)
    return sorted(roots)


class PurityAnalysis:
    """Reachability closure plus per-function impurity detection."""

    def __init__(self, index: ProjectIndex, graph: CallGraph) -> None:
        self.index = index
        self.graph = graph
        self.site_by_call = {id(site.call): site for site in graph.sites}
        self.roots = find_roots(index)
        self.reachable, self.parents = graph.reachable_from(self.roots)

    # -- reporting helpers ---------------------------------------------

    def _finding(self, fn: FunctionInfo, node: ast.AST, rule_id: str,
                 message: str) -> Finding:
        chain = self.graph.chain_to(fn.qualname, self.parents)
        tail = " -> ".join(link.rsplit(".", 2)[-1] if link.count(".") < 2
                           else ".".join(link.rsplit(".", 2)[-2:])
                           for link in chain)
        return Finding(
            path=fn.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=f"{message} [reachable: {tail}]")

    # -- impurity detection --------------------------------------------

    def check(self, enabled: frozenset) -> List[Finding]:
        findings: List[Finding] = []
        for qualname in sorted(self.reachable):
            fn = self.index.functions.get(qualname)
            if fn is None:
                continue
            findings.extend(self._check_function(fn, enabled))
        return findings

    def _check_function(self, fn: FunctionInfo,
                        enabled: frozenset) -> Iterator[Finding]:
        module = self.index.modules[fn.module]
        declared_globals: Set[str] = set()
        for node in iter_function_nodes(fn.node):
            if isinstance(node, ast.Global):
                declared_globals.update(node.names)
        for node in iter_function_nodes(fn.node):
            if isinstance(node, ast.Call):
                yield from self._check_call(fn, node, enabled)
            if "RPR211" in enabled and isinstance(node, ast.Attribute):
                if (isinstance(node.value, ast.Name)
                        and module.imports.get(node.value.id,
                                               node.value.id) == "os"
                        and node.attr == "environ"):
                    yield self._finding(
                        fn, node, "RPR211",
                        "os.environ read on a cache-feeding path; "
                        "results must be a pure function of the request")
            if "RPR212" in enabled:
                yield from self._check_set_iteration(fn, node)
            if "RPR213" in enabled:
                yield from self._check_global_mutation(
                    fn, node, module.mutable_globals, declared_globals)

    def _check_call(self, fn: FunctionInfo, call: ast.Call,
                    enabled: frozenset) -> Iterator[Finding]:
        site = self.site_by_call.get(id(call))
        if site is None or site.is_project:
            return
        target = site.callee
        if "RPR210" in enabled:
            reason = NondeterministicCallRule._violation(target)
            if reason:
                yield self._finding(
                    fn, call, "RPR210",
                    f"call to {target!r} {reason} on a cache-feeding "
                    f"path; route entropy through the seeded request")
                return
        if "RPR211" in enabled and target in IMPURE_IO_CALLS:
            yield self._finding(
                fn, call, "RPR211",
                f"call to {target!r} reads the environment/filesystem "
                f"on a cache-feeding path; pass the data in explicitly")

    def _check_set_iteration(self, fn: FunctionInfo,
                             node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.For) and _is_set_expression(node.iter):
            yield self._finding(
                fn, node, "RPR212",
                "iteration over a set on a cache-feeding path has no "
                "deterministic order; wrap it in sorted(...)")
        elif isinstance(node, ast.comprehension) and _is_set_expression(
                node.iter):
            yield self._finding(
                fn, node.iter, "RPR212",
                "comprehension iterates a set on a cache-feeding path; "
                "wrap it in sorted(...)")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name) and func.id == "sum"
                    and node.args and _is_set_expression(node.args[0])):
                yield self._finding(
                    fn, node, "RPR212",
                    "sum() over a set on a cache-feeding path "
                    "accumulates in nondeterministic order; sort first")

    def _check_global_mutation(self, fn: FunctionInfo, node: ast.AST,
                               mutable_globals: Set[str],
                               declared_globals: Set[str],
                               ) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id in declared_globals):
                    yield self._finding(
                        fn, node, "RPR213",
                        f"rebinding module global {target.id!r} on a "
                        f"cache-feeding path couples runs executed in "
                        f"the same process")
                elif (isinstance(target, ast.Subscript)
                      and isinstance(target.value, ast.Name)
                      and target.value.id in mutable_globals):
                    yield self._finding(
                        fn, node, "RPR213",
                        f"writing into module-level container "
                        f"{target.value.id!r} on a cache-feeding path "
                        f"couples runs executed in the same process")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in mutable_globals
                    and func.attr in MUTATING_METHODS):
                yield self._finding(
                    fn, node, "RPR213",
                    f"{func.value.id}.{func.attr}() mutates a module "
                    f"global on a cache-feeding path; memoize on the "
                    f"instance or key the cache by the request")


def run_purity_pass(index: ProjectIndex, graph: CallGraph,
                    enabled: frozenset) -> List[Finding]:
    """Reachability closure, then impurity detection on the closure."""
    analysis = PurityAnalysis(index, graph)
    return analysis.check(enabled)
