"""Pass 1: interprocedural dimensional dataflow (RPR11x).

Every quantity in this codebase carries its unit in its name (``_w``,
``_j``, ``_s``, ...; see :mod:`repro.units`).  The per-file RPR101 rule
can only compare two suffixes sitting in the same expression; this pass
infers a unit for *values* — through assignments, function returns, and
call-site argument binding — so a ``_j`` quantity smuggled into a ``_w``
parameter two call hops away still surfaces.

The unit lattice is deliberately small and concrete:

``W kW J Wh kWh C Ah s h days years V A $`` plus *dimensionless* (bare
literals, ratios) and *unknown*.  Multiplication and division follow
the physical identities the codebase actually uses (``W x s = J``,
``J / s = W``, ``A x s = C``, ``V x A = W``, ...); anything else is
unknown.  A mismatch is only ever reported between two **known,
non-dimensionless** units, which keeps the pass quiet on code it cannot
prove anything about.

Findings:

* **RPR110** — a call-site argument whose inferred unit contradicts the
  unit declared by the parameter's name suffix (or by a
  ``repro.units`` helper signature);
* **RPR111** — an assignment or ``return`` binding a value to a name
  (or function) declaring a different unit;
* **RPR112** — a ``repro.units`` conversion applied to a value already
  in the helper's *output* unit (double conversion);
* **RPR113** — additive arithmetic mixing units that only
  whole-program inference can see (at least one operand's unit arrives
  through a return value or a tracked variable, or the operands share a
  dimension but not a scale — both invisible to RPR101).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..findings import Finding
from ..rules import Rule, register
from .callgraph import CallGraph, CallSite, iter_function_nodes
from .symbols import FUNCTION_NODES, FunctionInfo, ProjectIndex

#: Sentinel for "two different units joined here" (reads as unknown).
AMBIGUOUS = "<ambiguous>"

#: Dimensionless marker (literals, fractions, ratios).
DIMLESS = "1"

#: name suffix token -> unit.
SUFFIX_UNITS: Dict[str, str] = {
    "w": "W", "kw": "kW", "mw": "mW",
    "j": "J", "wh": "Wh", "kwh": "kWh",
    "c": "C", "ah": "Ah",
    "s": "s", "sec": "s", "secs": "s", "seconds": "s",
    "h": "h", "hr": "h", "hrs": "h", "hours": "h",
    "days": "days",
    "y": "years", "years": "years",
    "v": "V", "a": "A",
    "usd": "$", "dollars": "$",
}

#: unit -> physical dimension (for grouping in messages).
UNIT_DIMENSION: Dict[str, str] = {
    "W": "power", "kW": "power", "mW": "power",
    "J": "energy", "Wh": "energy", "kWh": "energy",
    "C": "charge", "Ah": "charge",
    "s": "time", "h": "time", "days": "time", "years": "time",
    "V": "potential", "A": "current",
    "$": "money",
}

#: ``repro.units`` helper -> (expected input unit, output unit).
UNITS_HELPER_SIGS: Dict[str, Tuple[Optional[str], str]] = {
    "repro.units.wh_to_joules": ("Wh", "J"),
    "repro.units.kwh_to_joules": ("kWh", "J"),
    "repro.units.joules_to_wh": ("J", "Wh"),
    "repro.units.joules_to_kwh": ("J", "kWh"),
    "repro.units.ah_to_coulombs": ("Ah", "C"),
    "repro.units.coulombs_to_ah": ("C", "Ah"),
    "repro.units.minutes": (None, "s"),
    "repro.units.hours": ("h", "s"),
    "repro.units.days": ("days", "s"),
    "repro.units.years": ("years", "s"),
}

#: Builtins that pass their argument's unit straight through.
_PASSTHROUGH_BUILTINS = frozenset({"min", "max", "abs", "float", "round"})

#: ``W x s = J``-style identities (symmetric).
_MULT_TABLE: Dict[frozenset, str] = {
    frozenset(("W", "s")): "J",
    frozenset(("W", "h")): "Wh",
    frozenset(("kW", "h")): "kWh",
    frozenset(("A", "s")): "C",
    frozenset(("A", "h")): "Ah",
    frozenset(("V", "A")): "W",
}

#: ``J / s = W``-style identities (numerator, denominator) -> result.
_DIV_TABLE: Dict[Tuple[str, str], str] = {
    ("J", "s"): "W", ("J", "W"): "s",
    ("Wh", "h"): "W", ("Wh", "W"): "h",
    ("kWh", "h"): "kW", ("kWh", "kW"): "h",
    ("C", "s"): "A", ("C", "A"): "s",
    ("Ah", "h"): "A", ("Ah", "A"): "h",
    ("W", "V"): "A", ("W", "A"): "V",
}


#: Two-token spelled-out suffixes (``watt_hours`` is Wh, not hours).
_COMPOUND_SUFFIX_UNITS: Dict[Tuple[str, str], str] = {
    ("watt", "hours"): "Wh",
    ("kilowatt", "hours"): "kWh",
    ("amp", "hours"): "Ah",
    ("ampere", "hours"): "Ah",
}


def name_unit(name: Optional[str]) -> Optional[str]:
    """Unit declared by a name's suffix, or None.

    Names carrying a ``_per_`` token are rates/densities (``$ per kWh``)
    whose suffix does not name the value's own unit; they are skipped.
    """
    if not name or "_" not in name:
        return None
    tokens = name.lower().split("_")
    if "per" in tokens:
        return None
    if len(tokens) >= 2:
        compound = _COMPOUND_SUFFIX_UNITS.get((tokens[-2], tokens[-1]))
        if compound:
            return compound
    return SUFFIX_UNITS.get(tokens[-1])


def unit_dimension(unit: Optional[str]) -> str:
    if unit is None or unit in (DIMLESS, AMBIGUOUS):
        return "unknown"
    return UNIT_DIMENSION.get(unit, "unknown")


def _describe(unit: str) -> str:
    dim = unit_dimension(unit)
    return f"{unit} ({dim})" if dim != "unknown" else unit


def _operand_name(node: ast.expr) -> Optional[str]:
    """Mirror of RPR101's operand naming: Name, Attribute, or Call."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _operand_name(node.func)
    return None


# ----------------------------------------------------------------------
# Registered rule markers (logic lives in DimensionAnalysis)
# ----------------------------------------------------------------------

@register
class CrossCallUnitRule(Rule):
    """Call arguments must match the unit the parameter declares.

    Whole-program: a ``_j`` expression bound to a ``_w`` parameter is
    flagged at the call site, however many modules apart definition and
    call are.
    """

    id = "RPR110"
    whole_program = True


@register
class BindingUnitRule(Rule):
    """Assignments and returns must respect declared name units.

    Whole-program: ``total_w = stored_energy_j()`` and ``return x_j``
    inside ``def peak_power_w()`` both flag, using units inferred
    across function boundaries.
    """

    id = "RPR111"
    whole_program = True


@register
class DoubleConversionRule(Rule):
    """No ``repro.units`` conversion of an already-converted value.

    Whole-program: ``wh_to_joules(x)`` where ``x`` is already joules is
    a silent factor-3600 bug.
    """

    id = "RPR112"
    whole_program = True


@register
class InferredMixedUnitRule(Rule):
    """Additive unit mixes that only dataflow inference can see.

    Whole-program: ``limit_w - battery_reserve()`` flags when the
    helper's return is known to be joules; RPR101 cannot see through
    the call.
    """

    id = "RPR113"
    whole_program = True


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------

#: Environment keys: ("local", fn_qual, name) / ("attr", cls_qual, name)
#: / ("global", module, name) / ("ret", fn_qual).
_EnvKey = Tuple[str, ...]


class DimensionAnalysis:
    """Flow-insensitive unit inference over the whole project."""

    #: Fixpoint guard; unit facts only ever move declared -> derived,
    #: so real projects converge in 2-3 rounds.
    MAX_ROUNDS = 10

    def __init__(self, index: ProjectIndex, graph: CallGraph) -> None:
        self.index = index
        self.graph = graph
        self.site_by_call: Dict[int, CallSite] = {
            id(site.call): site for site in graph.sites}
        self.env: Dict[_EnvKey, str] = {}

    # -- environment ----------------------------------------------------

    def _join(self, key: _EnvKey, unit: Optional[str]) -> None:
        if unit is None or unit == DIMLESS:
            return
        current = self.env.get(key)
        if current is None:
            self.env[key] = unit
        elif current != unit:
            self.env[key] = AMBIGUOUS

    def _lookup(self, key: _EnvKey) -> Optional[str]:
        unit = self.env.get(key)
        return None if unit == AMBIGUOUS else unit

    # -- inference ------------------------------------------------------

    def unit_of(self, expr: ast.expr,
                fn: Optional[FunctionInfo]) -> Optional[str]:
        """Inferred unit of ``expr`` (None = unknown)."""
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool):
                return None
            if isinstance(expr.value, (int, float)):
                return DIMLESS
            return None
        if isinstance(expr, ast.Name):
            declared = name_unit(expr.id)
            if declared:
                return declared
            if fn is not None:
                local = self._lookup(("local", fn.qualname, expr.id))
                if local:
                    return local
                module = self.index.modules.get(fn.module)
                if module is not None and expr.id in module.globals:
                    return self._lookup(("global", fn.module, expr.id))
            return None
        if isinstance(expr, ast.Attribute):
            declared = name_unit(expr.attr)
            if declared:
                return declared
            if (isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and fn is not None and fn.class_qualname):
                return self._lookup(("attr", fn.class_qualname, expr.attr))
            return None
        if isinstance(expr, ast.Call):
            return self._unit_of_call(expr, fn)
        if isinstance(expr, ast.BinOp):
            return self._unit_of_binop(expr, fn)
        if isinstance(expr, ast.UnaryOp):
            return self.unit_of(expr.operand, fn)
        if isinstance(expr, ast.IfExp):
            left = self.unit_of(expr.body, fn)
            right = self.unit_of(expr.orelse, fn)
            if left == right:
                return left
            if left in (None, DIMLESS):
                return right
            if right in (None, DIMLESS):
                return left
            return None
        if isinstance(expr, (ast.Compare, ast.BoolOp)):
            return None
        return None

    def _unit_of_call(self, call: ast.Call,
                      fn: Optional[FunctionInfo]) -> Optional[str]:
        site = self.site_by_call.get(id(call))
        if site is None:
            return None
        helper = UNITS_HELPER_SIGS.get(site.callee)
        if helper is not None:
            return helper[1]
        if site.callee == "repro.units.clamp" and call.args:
            return self.unit_of(call.args[0], fn)
        if not site.is_project:
            if site.callee in _PASSTHROUGH_BUILTINS:
                units = [self.unit_of(arg, fn) for arg in call.args]
                known = {u for u in units if u not in (None, DIMLESS)}
                if len(known) == 1:
                    return known.pop()
            return None
        target = site.bind_function
        if target is None or target.name == "__init__":
            return None
        declared = name_unit(target.name)
        if declared:
            return declared
        return self._lookup(("ret", target.qualname))

    def _unit_of_binop(self, expr: ast.BinOp,
                       fn: Optional[FunctionInfo]) -> Optional[str]:
        left = self.unit_of(expr.left, fn)
        right = self.unit_of(expr.right, fn)
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            if left == right:
                return left
            if left in (None, DIMLESS):
                return right if left == DIMLESS else None
            if right in (None, DIMLESS):
                return left if right == DIMLESS else None
            return None  # mismatch; RPR113 reports it, result unknown
        if left is None or right is None:
            return None
        if isinstance(expr.op, ast.Mult):
            if left == DIMLESS:
                return right
            if right == DIMLESS:
                return left
            return _MULT_TABLE.get(frozenset((left, right)))
        if isinstance(expr.op, ast.Div):
            if right == DIMLESS:
                return left
            if left == right:
                return DIMLESS
            return _DIV_TABLE.get((left, right))
        return None

    # -- propagation ----------------------------------------------------

    def propagate(self) -> None:
        """Run assignments/returns to a fixpoint over the project."""
        for _ in range(self.MAX_ROUNDS):
            before = dict(self.env)
            for module in self.index.modules.values():
                for stmt in module.tree.body:
                    self._propagate_module_stmt(module.name, stmt)
            for qualname in sorted(self.index.functions):
                self._propagate_function(self.index.functions[qualname])
            self._propagate_call_bindings()
            if self.env == before:
                break

    def _propagate_call_bindings(self) -> None:
        """Flow argument units into unsuffixed callee parameters."""
        for site in self.graph.sites:
            if site.bind_function is None:
                continue
            caller = self.index.functions.get(site.caller)
            callee = site.bind_function.qualname
            for param, arg in self._bindings(site, site.call):
                if name_unit(param):
                    continue
                self._join(("local", callee, param),
                           self.unit_of(arg, caller))

    def _propagate_module_stmt(self, module: str, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            return
        unit = self.unit_of(value, None)
        for target in targets:
            if isinstance(target, ast.Name) and not name_unit(target.id):
                self._join(("global", module, target.id), unit)

    def _propagate_function(self, fn: FunctionInfo) -> None:
        for node in iter_function_nodes(fn.node):
            if isinstance(node, ast.Assign):
                unit = self.unit_of(node.value, fn)
                for target in node.targets:
                    self._bind_target(fn, target, unit)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind_target(fn, node.target,
                                  self.unit_of(node.value, fn))
            elif isinstance(node, ast.Return) and node.value is not None:
                if not name_unit(fn.name):
                    self._join(("ret", fn.qualname),
                               self.unit_of(node.value, fn))

    def _bind_target(self, fn: FunctionInfo, target: ast.expr,
                     unit: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            if not name_unit(target.id):
                self._join(("local", fn.qualname, target.id), unit)
        elif (isinstance(target, ast.Attribute)
              and isinstance(target.value, ast.Name)
              and target.value.id == "self" and fn.class_qualname):
            if not name_unit(target.attr):
                self._join(("attr", fn.class_qualname, target.attr), unit)
        elif isinstance(target, (ast.Tuple, ast.List)):
            return  # tuple unpacking: no per-element inference

    # -- checking -------------------------------------------------------

    def check(self, enabled: frozenset) -> List[Finding]:
        findings: List[Finding] = []
        for qualname in sorted(self.index.functions):
            fn = self.index.functions[qualname]
            for node in iter_function_nodes(fn.node):
                if isinstance(node, ast.Call):
                    findings.extend(self._check_call(fn, node, enabled))
                elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                    if "RPR111" in enabled:
                        findings.extend(self._check_assign(fn, node))
                elif isinstance(node, ast.Return):
                    if "RPR111" in enabled:
                        findings.extend(self._check_return(fn, node))
                elif isinstance(node, (ast.BinOp, ast.AugAssign)):
                    if "RPR113" in enabled:
                        findings.extend(self._check_additive(fn, node))
        return findings

    def _finding(self, fn: FunctionInfo, node: ast.AST, rule_id: str,
                 message: str) -> Finding:
        return Finding(path=fn.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       rule_id=rule_id, message=message)

    def _check_call(self, fn: FunctionInfo, call: ast.Call,
                    enabled: frozenset) -> Iterator[Finding]:
        site = self.site_by_call.get(id(call))
        if site is None:
            return
        helper = UNITS_HELPER_SIGS.get(site.callee)
        if helper is not None:
            yield from self._check_units_helper(fn, call, site, helper,
                                                enabled)
            return
        if "RPR110" not in enabled:
            return
        for param_name, arg in self._bindings(site, call):
            expected = name_unit(param_name)
            if not expected:
                continue
            actual = self.unit_of(arg, fn)
            if actual in (None, DIMLESS, expected):
                continue
            yield self._finding(
                fn, arg, "RPR110",
                f"argument bound to parameter {param_name!r} of "
                f"{site.callee!r} expects {_describe(expected)} but the "
                f"value is {_describe(actual)}; convert explicitly via "
                f"repro.units")

    def _check_units_helper(self, fn: FunctionInfo, call: ast.Call,
                            site: CallSite,
                            helper: Tuple[Optional[str], str],
                            enabled: frozenset) -> Iterator[Finding]:
        expected, output = helper
        if not call.args or len(call.args) != 1:
            return
        actual = self.unit_of(call.args[0], fn)
        if actual in (None, DIMLESS):
            return
        if actual == output and "RPR112" in enabled:
            yield self._finding(
                fn, call, "RPR112",
                f"{site.callee.rsplit('.', 1)[-1]}() applied to a value "
                f"already in {_describe(output)}; this converts twice")
        elif expected is not None and actual != expected \
                and "RPR110" in enabled:
            yield self._finding(
                fn, call.args[0], "RPR110",
                f"{site.callee.rsplit('.', 1)[-1]}() expects "
                f"{_describe(expected)} but the value is "
                f"{_describe(actual)}")

    def _bindings(self, site: CallSite,
                  call: ast.Call) -> Iterator[Tuple[str, ast.expr]]:
        """(parameter name, argument expression) pairs for a site."""
        if site.bind_function is not None:
            params = [arg.arg
                      for arg in site.bind_function.parameters()]
            if site.skip_first and params:
                params = params[1:]
            for param, arg in zip(params, call.args):
                if isinstance(arg, ast.Starred):
                    break
                yield param, arg
            keyword_names = {
                arg.arg for arg in site.bind_function.keyword_parameters()}
            for keyword in call.keywords:
                if keyword.arg and keyword.arg in keyword_names:
                    yield keyword.arg, keyword.value
        elif site.bind_class is not None:
            fields = site.bind_class.fields
            for param, arg in zip(fields, call.args):
                if isinstance(arg, ast.Starred):
                    break
                yield param, arg
            for keyword in call.keywords:
                if keyword.arg and keyword.arg in fields:
                    yield keyword.arg, keyword.value

    def _check_assign(self, fn: FunctionInfo,
                      node: ast.stmt) -> Iterator[Finding]:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        else:
            assert isinstance(node, ast.AnnAssign)
            if node.value is None:
                return
            targets, value = [node.target], node.value
        actual = self.unit_of(value, fn)
        if actual in (None, DIMLESS):
            return
        for target in targets:
            declared = None
            label = None
            if isinstance(target, ast.Name):
                declared, label = name_unit(target.id), target.id
            elif isinstance(target, ast.Attribute):
                declared, label = name_unit(target.attr), target.attr
            if declared and actual != declared:
                yield self._finding(
                    fn, node, "RPR111",
                    f"{label!r} declares {_describe(declared)} but is "
                    f"assigned a {_describe(actual)} value; convert "
                    f"explicitly via repro.units")

    def _check_return(self, fn: FunctionInfo,
                      node: ast.Return) -> Iterator[Finding]:
        declared = name_unit(fn.name)
        if not declared or node.value is None:
            return
        if UNITS_HELPER_SIGS.get(f"{fn.module}.{fn.name}"):
            return  # the units helpers themselves convert by definition
        actual = self.unit_of(node.value, fn)
        if actual in (None, DIMLESS, declared):
            return
        yield self._finding(
            fn, node, "RPR111",
            f"{fn.name!r} declares a {_describe(declared)} return but "
            f"this path returns {_describe(actual)}")

    def _check_additive(self, fn: FunctionInfo,
                        node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.BinOp):
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                return
            left_expr, right_expr = node.left, node.right
        else:
            assert isinstance(node, ast.AugAssign)
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                return
            left_expr, right_expr = node.target, node.value
        left = self.unit_of(left_expr, fn)
        right = self.unit_of(right_expr, fn)
        if left in (None, DIMLESS) or right in (None, DIMLESS):
            return
        if left == right:
            return
        # RPR101's territory: both operands carry a direct suffix *and*
        # their dimensions differ (that is exactly when RPR101 fires).
        left_direct = name_unit(_operand_name(left_expr))
        right_direct = name_unit(_operand_name(right_expr))
        if (left_direct and right_direct
                and unit_dimension(left_direct)
                != unit_dimension(right_direct)):
            return
        yield self._finding(
            fn, node, "RPR113",
            f"additive arithmetic mixes {_describe(left)} with "
            f"{_describe(right)} through inferred dataflow; convert "
            f"explicitly via repro.units first")


def run_dimensional_pass(index: ProjectIndex, graph: CallGraph,
                         enabled: frozenset) -> List[Finding]:
    """Propagate units to a fixpoint, then collect findings."""
    analysis = DimensionAnalysis(index, graph)
    analysis.propagate()
    return analysis.check(enabled)
