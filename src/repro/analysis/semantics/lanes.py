"""Pass 4b: lane-isolation analysis for batch modules (RPR603/RPR604).

The batched engine's core invariant is **lane independence**: scenario
lanes share one tick loop but must never share *state*.  Every array in
a ``*batch*`` module carries the scenario lane as its leading axis, so
two write shapes break the invariant silently:

* indexing the lane axis with something that is not a lane — a literal
  (``state[0] = ...``) or a server/rank index (``state[sid] = ...``)
  writes one lane's row on behalf of every lane;
* mutating Python scalar state (``self.flag``, a module global) inside
  a per-lane replay loop — each lane's iteration clobbers the value the
  previous lane just wrote, and whatever reads it afterwards sees only
  the last lane.

A third shape is legal only at sanctioned points: a reduction **over
the lane axis** (``axis=0`` of a lane-leading array) folds independent
scenarios into one number, which only finalization/reporting code may
do.  Inside tick/assign paths it almost always means a lost lane axis.

The pass reuses the RPR4xx :class:`~.arrays.ArrayAnalysis` lattice —
the same propagated :class:`~.arrays.ArrayValue` facts answer "is this
expression an array and what is its leading symbolic dim" — and keys
lane-ness on :data:`LANE_DIMS` (``n``, ``num_lanes``, ...), the
vocabulary the batch twins actually allocate with
(``np.zeros((n, num_servers))``).  Scope is any module whose basename
tokens include ``batch`` (``sim.batch``, ``server.batch``,
``replay_batch`` fixtures, ...), mirroring the hot-path gating of
RPR502/503.

Findings: RPR603 lane-axis write without the lane dimension, RPR604
shared scalar state in a per-lane loop / lane-axis reduction outside a
sanctioned reduction point.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from ..findings import Finding
from ..rules import Rule, register
from .arrays import (
    _NP_REDUCTIONS,
    _REDUCTION_METHODS,
    _int_literal,
    _is_full_slice,
    ArrayAnalysis,
    ArrayValue,
)
from .callgraph import CallGraph, iter_function_nodes
from .symbols import FunctionInfo, ProjectIndex

#: Leading symbolic dims that denote the scenario-lane axis (what the
#: batch twins allocate with: ``np.zeros((n, num_servers))``).
LANE_DIMS = frozenset({
    "n", "lanes", "num_lanes", "n_lanes",
    "num_scenarios", "n_scenarios",
})

#: Names that select a single lane legitimately.
LANE_INDEX_RE = re.compile(r"^(?:lanes?|lanes?_\w+|li|l)$")

#: Names that conventionally hold boolean masks or index arrays; these
#: address lanes collectively even when the lattice cannot prove the
#: value is an array (e.g. a comparison result).
MASK_NAME_RE = re.compile(r"(?:^|_)(?:mask|masks|sel|idx|indices|ids)(?:_|$)")

#: Functions allowed to reduce over the lane axis: finalization,
#: write-back, and reporting code that *intentionally* folds lanes.
SANCTIONED_REDUCTION_RE = re.compile(
    r"write_back|finali[sz]e|result|report|run_all|summar|metric|close")

#: Module-basename token that puts a module in lane scope.
_BATCH_TOKEN = "batch"


@register
class LaneCoupledWriteRule(Rule):
    """Writes to a lane-leading array must address the lane axis.

    Whole-program: whether ``arr`` carries the scenario lane on axis 0
    is an :class:`ArrayValue` fact propagated across modules (the array
    may be allocated in one module and written in another); a non-lane
    first index then writes one lane's row for every scenario.
    """

    id = "RPR603"
    whole_program = True


@register
class LaneSharedStateRule(Rule):
    """No shared scalar state in per-lane loops; no stray lane folds.

    Whole-program: per-lane replay loops mutating ``self``/module state
    couple scenario lanes through Python objects the array lattice
    proves are *not* per-lane, and a lane-axis reduction outside
    finalization collapses provably independent scenarios.
    """

    id = "RPR604"
    whole_program = True


def in_lane_scope(fn: FunctionInfo) -> bool:
    """True for functions in batch modules (basename token ``batch``)."""
    tokens = set(fn.module.rsplit(".", 1)[-1].split("_"))
    return _BATCH_TOKEN in tokens


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)


class LaneIsolationAnalysis:
    """Lane-axis write/state/reduction checks on top of the lattice."""

    def __init__(self, index: ProjectIndex, graph: CallGraph,
                 arrays: ArrayAnalysis) -> None:
        self.index = index
        self.graph = graph
        self.arrays = arrays

    # -- lane facts -----------------------------------------------------

    def _lane_leading(self, value: Optional[ArrayValue]) -> bool:
        return (value is not None and value.is_array
                and bool(value.shape) and value.shape[0] in LANE_DIMS)

    def _is_lane_count(self, expr: ast.expr) -> bool:
        """``n`` / ``self.n`` / any :data:`LANE_DIMS` name."""
        if isinstance(expr, ast.Name):
            return expr.id in LANE_DIMS
        if isinstance(expr, ast.Attribute):
            return expr.attr in LANE_DIMS
        return False

    def _is_lane_loop(self, node: ast.For) -> bool:
        """A loop whose target walks scenario lanes."""
        for name in _target_names(node.target):
            if LANE_INDEX_RE.match(name):
                return True
        iter_expr = node.iter
        if isinstance(iter_expr, ast.Call) \
                and isinstance(iter_expr.func, ast.Name) \
                and iter_expr.func.id == "range" and iter_expr.args:
            return self._is_lane_count(iter_expr.args[0])
        return False

    def _lane_index_names(self, fn: FunctionInfo) -> Set[str]:
        """Names that legitimately select one lane in ``fn``."""
        names: Set[str] = set()
        node = fn.node
        for arg in fn.keyword_parameters():
            if LANE_INDEX_RE.match(arg.arg):
                names.add(arg.arg)
        for child in iter_function_nodes(node):
            if isinstance(child, ast.For) and self._is_lane_loop(child):
                names.update(_target_names(child.target))
        return names

    # -- reporting ------------------------------------------------------

    def _finding(self, fn: FunctionInfo, node: ast.AST, rule_id: str,
                 message: str) -> Finding:
        return Finding(
            path=fn.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message)

    # -- checks ---------------------------------------------------------

    def check(self, enabled: frozenset) -> List[Finding]:
        findings: List[Finding] = []
        for qualname in sorted(self.index.functions):
            fn = self.index.functions[qualname]
            if not in_lane_scope(fn):
                continue
            if "RPR603" in enabled:
                findings.extend(self._check_lane_writes(fn))
            if "RPR604" in enabled:
                findings.extend(self._check_shared_state(fn))
                findings.extend(self._check_lane_reductions(fn))
        return findings

    # RPR603 ------------------------------------------------------------

    def _first_index(self, sub: ast.Subscript) -> ast.expr:
        if isinstance(sub.slice, ast.Tuple) and sub.slice.elts:
            return sub.slice.elts[0]
        return sub.slice

    def _lane_safe_index(self, first: ast.expr, fn: FunctionInfo,
                         lane_names: Set[str]) -> bool:
        if isinstance(first, ast.Slice):
            return True  # any slice addresses (a range of) lanes
        if isinstance(first, ast.Constant) and first.value is Ellipsis:
            return True
        if isinstance(first, ast.Name):
            if first.id in lane_names or LANE_INDEX_RE.match(first.id):
                return True
            if MASK_NAME_RE.search(first.id):
                return True
            value = self.arrays.value_of(first, fn)
            # A mask or fancy-index array addresses lanes collectively.
            return value is not None and value.is_array
        value = self.arrays.value_of(first, fn)
        if value is not None and value.is_array:
            return True
        # Anything else (attribute chains, arithmetic) is unprovable
        # either way; only constants and plain names are confident
        # enough to flag.
        return not isinstance(first, ast.Constant)

    def _check_lane_writes(self, fn: FunctionInfo) -> Iterator[Finding]:
        lane_names = self._lane_index_names(fn)
        for node in iter_function_nodes(fn.node):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Subscript):
                    continue
                base = self.arrays.value_of(target.value, fn)
                if not self._lane_leading(base):
                    continue
                first = self._first_index(target)
                if _is_full_slice(first) \
                        or self._lane_safe_index(first, fn, lane_names):
                    continue
                label = (repr(first.value)
                         if isinstance(first, ast.Constant)
                         else getattr(first, "id", "<index>"))
                assert base is not None and base.shape is not None
                yield self._finding(
                    fn, node, "RPR603",
                    f"write to lane-leading array (shape "
                    f"({', '.join(base.shape)})) indexes the lane axis "
                    f"with {label}, which is not a lane index; one "
                    f"lane's row is written on behalf of every "
                    f"scenario — select lanes with a lane index, mask, "
                    f"or ':' and put the server/rank index on axis 1")

    # RPR604a: shared scalar state in per-lane loops --------------------

    def _loop_body_nodes(self, loop: ast.For) -> Iterator[ast.AST]:
        """Walk a loop body without descending into nested defs."""
        stack: List[ast.AST] = list(loop.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _check_shared_state(self, fn: FunctionInfo) -> Iterator[Finding]:
        module = self.index.modules.get(fn.module)
        module_globals = module.globals if module is not None else set()
        seen: Set[int] = set()
        for loop in iter_function_nodes(fn.node):
            if not isinstance(loop, ast.For) \
                    or not self._is_lane_loop(loop):
                continue
            for node in self._loop_body_nodes(loop):
                if id(node) in seen:
                    continue
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                else:
                    continue
                for target in targets:
                    what: Optional[str] = None
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        what = f"self.{target.attr}"
                    elif (isinstance(target, ast.Name)
                          and target.id in module_globals):
                        what = f"module global {target.id!r}"
                    if what is None:
                        continue
                    seen.add(id(node))
                    yield self._finding(
                        fn, node, "RPR604",
                        f"{what} is mutated inside a per-lane replay "
                        f"loop but shared across lanes; each lane "
                        f"clobbers the previous lane's value — hoist "
                        f"the write out of the loop or make the state "
                        f"a (lanes,) array")

    # RPR604b: lane-axis reductions -------------------------------------

    def _reduction_parts(self, call: ast.Call, fn: FunctionInfo,
                         ) -> Optional[tuple]:
        """(base value, axis expr) when ``call`` is an axis reduction."""
        np_name = self.arrays._np_callee(call)
        if np_name is not None \
                and (np_name in _NP_REDUCTIONS
                     or np_name.endswith(".reduce")) and call.args:
            axis = self.arrays._keyword(call, "axis")
            if axis is None and len(call.args) >= 2:
                axis = call.args[1]
            return self.arrays.value_of(call.args[0], fn), axis
        func = call.func
        if isinstance(func, ast.Attribute) \
                and func.attr in _REDUCTION_METHODS:
            axis = self.arrays._keyword(call, "axis")
            if axis is None and call.args:
                axis = call.args[0]
            return self.arrays.value_of(func.value, fn), axis
        return None

    def _check_lane_reductions(self, fn: FunctionInfo,
                               ) -> Iterator[Finding]:
        if SANCTIONED_REDUCTION_RE.search(fn.name):
            return
        for node in iter_function_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            parts = self._reduction_parts(node, fn)
            if parts is None:
                continue
            base, axis = parts
            if not self._lane_leading(base) or axis is None:
                continue
            literal = _int_literal(axis)
            if literal is None:
                continue
            assert base is not None and base.shape is not None
            rank = len(base.shape)
            if not -rank <= literal < rank or literal % rank != 0:
                continue
            yield self._finding(
                fn, node, "RPR604",
                f"reduction over the lane axis (axis={literal} of "
                f"shape ({', '.join(base.shape)})) outside a "
                f"sanctioned reduction point; folding independent "
                f"scenario lanes belongs in finalization/reporting "
                f"code (or reduce axis 1, the per-server axis)")


def run_lane_pass(index: ProjectIndex, graph: CallGraph,
                  enabled: frozenset,
                  analysis: Optional[ArrayAnalysis] = None,
                  ) -> List[Finding]:
    """Lane-isolation checks; reuses a propagated array lattice.

    Args:
        analysis: An already-propagated :class:`ArrayAnalysis` (shared
            with :func:`~.arrays.run_array_pass` when both passes are
            selected); built and propagated here when omitted.
    """
    if analysis is None:
        analysis = ArrayAnalysis(index, graph)
        analysis.propagate()
    return LaneIsolationAnalysis(index, graph, analysis).check(enabled)
