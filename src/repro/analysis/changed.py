"""``--changed``: restrict a lint run to files modified on this branch.

The comparison point is ``git merge-base HEAD origin/main`` (falling
back to a local ``main`` when no remote-tracking ref exists), so the
selection is "everything this branch touched", not "everything not yet
committed".  Untracked ``.py`` files count as changed; deleted files
are dropped.  Designed for pre-commit hooks and fast local iteration —
CI still lints the full tree.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import List, Optional, Sequence

from ..errors import AnalysisError
from .engine import SKIPPED_DIRS

#: Refs tried, in order, as the comparison base.
BASE_REFS = ("origin/main", "main")


def _git(args: Sequence[str], cwd: Optional[Path]) -> Optional[str]:
    """stdout of one git command, or None on any failure."""
    try:
        completed = subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True,
            timeout=30, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout


def merge_base(cwd: Optional[Path] = None) -> Optional[str]:
    """``git merge-base HEAD <base>`` for the first base that exists."""
    for ref in BASE_REFS:
        output = _git(["merge-base", "HEAD", ref], cwd)
        if output and output.strip():
            return output.strip()
    return None


def changed_python_files(paths: Sequence[str],
                         cwd: Optional[Path] = None) -> List[str]:
    """``.py`` files under ``paths`` modified since the merge base.

    Includes committed, staged, unstaged, and untracked changes; files
    that no longer exist on disk are skipped.

    Raises:
        AnalysisError: When the working directory is not a git
            repository (there is nothing to diff against).
    """
    root_output = _git(["rev-parse", "--show-toplevel"], cwd)
    if root_output is None:
        raise AnalysisError(
            "--changed requires a git repository "
            "(git rev-parse --show-toplevel failed)")
    repo_root = Path(root_output.strip())

    base = merge_base(cwd)
    candidates: List[str] = []
    if base is not None:
        diff_output = _git(["diff", "--name-only", base], cwd)
        if diff_output:
            candidates.extend(diff_output.splitlines())
    untracked = _git(
        ["ls-files", "--others", "--exclude-standard"], cwd)
    if untracked:
        candidates.extend(untracked.splitlines())

    scopes = [Path(p).resolve() for p in paths]
    selected: List[str] = []
    seen = set()
    for candidate in candidates:
        name = candidate.strip()
        if not name.endswith(".py"):
            continue
        resolved = (repo_root / name).resolve()
        if not resolved.is_file() or resolved in seen:
            continue
        if SKIPPED_DIRS.intersection(Path(name).parts):
            continue
        if not any(scope == resolved or scope in resolved.parents
                   for scope in scopes):
            continue
        seen.add(resolved)
        selected.append(str(resolved))
    return sorted(selected)
