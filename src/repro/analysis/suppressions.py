"""``# repro: noqa`` suppression comments.

Two forms, both scoped to the line they appear on:

* ``# repro: noqa`` — suppress every rule on this line;
* ``# repro: noqa[RPR102]`` / ``# repro: noqa[RPR102, RPR201]`` —
  suppress only the listed rule ids.

Comments are located with :mod:`tokenize` rather than a substring scan
so the marker is never matched inside a string literal.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

#: Sentinel meaning "every rule is suppressed on this line".
ALL_RULES: FrozenSet[str] = frozenset({"*"})

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?",
)


def collect_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed rule ids (or :data:`ALL_RULES`).

    Unparseable source (tokenize errors) yields no suppressions; the
    engine reports the syntax error separately.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if not match:
                continue
            rules = match.group("rules")
            line = token.start[0]
            if rules is None:
                suppressions[line] = ALL_RULES
            else:
                ids = frozenset(
                    part.strip().upper()
                    for part in rules.split(",") if part.strip())
                if ids:
                    suppressions[line] = suppressions.get(
                        line, frozenset()) | ids
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return suppressions


def is_suppressed(suppressions: Dict[int, FrozenSet[str]],
                  line: int, rule_id: str) -> bool:
    """True when ``rule_id`` is silenced on ``line``."""
    rules = suppressions.get(line)
    if rules is None:
        return False
    return rules is ALL_RULES or "*" in rules or rule_id in rules
