"""``# repro: noqa`` suppression comments.

Two forms:

* ``# repro: noqa`` — suppress every rule;
* ``# repro: noqa[RPR102]`` / ``# repro: noqa[RPR102, RPR201]`` —
  suppress only the listed rule ids.

A marker covers the line it appears on; when that line belongs to a
*simple* statement that spans several lines (a parenthesised assignment,
a call split over arguments, ...), :func:`expand_suppressions` widens it
to the statement's full extent, so the marker works no matter which line
of the statement the checker anchors its finding to.  Compound
statements (``if``/``for``/``def``...) are deliberately not expanded — a
marker inside a branch must not silence the whole block.

Comments are located with :mod:`tokenize` rather than a substring scan
so the marker is never matched inside a string literal.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, FrozenSet, Optional

#: Sentinel meaning "every rule is suppressed on this line".
ALL_RULES: FrozenSet[str] = frozenset({"*"})

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?",
)


def collect_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed rule ids (or :data:`ALL_RULES`).

    Unparseable source (tokenize errors) yields no suppressions; the
    engine reports the syntax error separately.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if not match:
                continue
            rules = match.group("rules")
            line = token.start[0]
            if rules is None:
                suppressions[line] = ALL_RULES
            else:
                ids = frozenset(
                    part.strip().upper()
                    for part in rules.split(",") if part.strip())
                if ids:
                    suppressions[line] = suppressions.get(
                        line, frozenset()) | ids
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return suppressions


#: Statement types whose bodies are their own scopes; a noqa inside one
#: of these must stay line-scoped, not cover the whole construct.
_COMPOUND_STATEMENTS = (
    ast.If, ast.For, ast.AsyncFor, ast.While, ast.With, ast.AsyncWith,
    ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
)


def expand_suppressions(
        suppressions: Dict[int, FrozenSet[str]],
        tree: Optional[ast.Module],
) -> Dict[int, FrozenSet[str]]:
    """Widen markers to cover the full extent of multi-line statements.

    A ``# repro: noqa[RULE]`` on *any* line of a simple statement (e.g.
    the closing-paren line of a wrapped assignment) suppresses that rule
    on *every* line of the statement.  The result merges with, and never
    narrows, the line-scoped input.
    """
    if tree is None or not suppressions:
        return suppressions
    expanded = dict(suppressions)
    for node in ast.walk(tree):
        if (not isinstance(node, ast.stmt)
                or isinstance(node, _COMPOUND_STATEMENTS)):
            continue
        start = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if start is None or end is None or end <= start:
            continue
        combined: FrozenSet[str] = frozenset()
        for line in range(start, end + 1):
            combined = combined | suppressions.get(line, frozenset())
        if not combined:
            continue
        for line in range(start, end + 1):
            expanded[line] = expanded.get(line, frozenset()) | combined
    return expanded


def is_suppressed(suppressions: Dict[int, FrozenSet[str]],
                  line: int, rule_id: str) -> bool:
    """True when ``rule_id`` is silenced on ``line``."""
    rules = suppressions.get(line)
    if rules is None:
        return False
    return rules is ALL_RULES or "*" in rules or rule_id in rules
