"""Allow ``python -m repro.analysis`` as a standalone linter."""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
