"""The lint engine: discovery, per-file dispatch, whole-program passes.

:func:`lint_paths` is the library entry point the CLI wraps::

    report = lint_paths(["src"])
    for finding in report.findings:
        print(finding.render())

Per-file rules see one module at a time: each module is parsed once and
every AST node is dispatched to the rules that subscribed to its type.
Rules marked ``whole_program`` (the RPR11x/RPR21x passes) run after the
per-file stage over *all* scanned modules at once, via
:func:`repro.analysis.semantics.run_whole_program`.

Two optional accelerators mirror the experiment runner:

* an on-disk incremental cache (:mod:`repro.analysis.cache`) keyed by
  file content hashes plus a fingerprint of the analysis code itself,
  so a warm re-lint of an unchanged tree reads JSON instead of parsing;
* a ``jobs`` parameter fanning the per-file parse+lint stage out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (results are merged
  and re-sorted, so output is identical to a serial run).

Findings on lines carrying a matching ``# repro: noqa[...]`` comment
are dropped (a marker anywhere in a multi-line simple statement covers
the whole statement), and the remainder come back sorted by
(path, line, column, rule id) so output is deterministic.
"""

from __future__ import annotations

import ast
import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from ..errors import AnalysisError
from .cache import AnalysisCache, content_hash, file_key, project_key
from .findings import Finding, PassStat
from .rules import FileContext, Rule, all_rules, resolve_rule_ids
from .suppressions import (
    collect_suppressions,
    expand_suppressions,
    is_suppressed,
)

#: Rule id attached to files that fail to parse at all.
PARSE_ERROR_RULE_ID = "RPR000"

#: Directory names never descended into during discovery.  ``fixtures``
#: holds intentionally-failing lint specimens; passing such a file as an
#: explicit path still lints it (the skip applies to discovery only).
SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis",
                          "fixtures"})


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run."""

    findings: Tuple[Finding, ...]
    files_scanned: int
    rule_ids: Tuple[str, ...] = field(default_factory=tuple)
    #: Files whose per-file findings were served from the lint cache.
    files_from_cache: int = 0
    #: Per-stage wall time and finding counts (``lint --stats``); wall
    #: time is nondeterministic, so reporters omit these by default.
    stats: Tuple[PassStat, ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order.

    Raises:
        AnalysisError: When a path does not exist.
    """
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisError(f"no such file or directory: {raw}")
        if path.is_file():
            yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if SKIPPED_DIRS.intersection(candidate.parts):
                continue
            yield candidate


def _partition_rule_ids(select: Optional[Iterable[str]],
                        ignore: Optional[Iterable[str]],
                        ) -> Tuple[List[str], List[str]]:
    """(per-file rule ids, whole-program rule ids) for a selection."""
    registry = all_rules()
    selected = resolve_rule_ids(select) if select else list(registry)
    ignored = set(resolve_rule_ids(ignore)) if ignore else set()
    selected = [rid for rid in selected if rid not in ignored]
    per_file = [rid for rid in selected
                if not registry[rid].whole_program]
    semantic = [rid for rid in selected if registry[rid].whole_program]
    return per_file, semantic


def _instantiate(rule_ids: Sequence[str]) -> List[Rule]:
    registry = all_rules()
    return [registry[rule_id]() for rule_id in rule_ids]


def _dispatch_table(
        rules: Sequence[Rule],
) -> Dict[Type[ast.AST], List[Rule]]:
    table: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in rules:
        for node_type in rule.visits:
            table.setdefault(node_type, []).append(rule)
    return table


def lint_source(source: str, path: str,
                rules: Sequence[Rule]) -> List[Finding]:
    """Lint one in-memory module with per-file rules.

    Returns suppression-filtered findings in AST-walk order (callers
    sort the merged result).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(
            path=path,
            line=error.lineno or 1,
            col=(error.offset or 0) + 1,
            rule_id=PARSE_ERROR_RULE_ID,
            message=f"file does not parse: {error.msg}",
        )]
    ctx = FileContext(path, source, tree)
    table = _dispatch_table(rules)
    findings: List[Finding] = []
    for node in ast.walk(tree):
        for rule in table.get(type(node), ()):
            findings.extend(rule.visit(node, ctx))
    suppressions = expand_suppressions(collect_suppressions(source), tree)
    return [f for f in findings
            if not is_suppressed(suppressions, f.line, f.rule_id)]


def _lint_file_task(item: Tuple[str, str, Tuple[str, ...]]) -> List[Dict]:
    """Worker-side per-file lint; serializes findings for pickling."""
    path, source, rule_ids = item
    return [dataclasses.asdict(finding)
            for finding in lint_source(source, path,
                                       _instantiate(rule_ids))]


def _read_sources(files: Sequence[Path]) -> Dict[str, str]:
    sources: Dict[str, str] = {}
    for path in files:
        try:
            sources[str(path)] = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            raise AnalysisError(f"cannot read {path}: {error}") from error
    return sources


def _run_per_file_stage(sources: Dict[str, str],
                        per_file_ids: Sequence[str],
                        jobs: int,
                        cache: Optional[AnalysisCache],
                        hashes: Dict[str, str],
                        ) -> Tuple[List[Finding], int]:
    findings: List[Finding] = []
    hits = 0
    pending: List[Tuple[str, str]] = []
    keys: Dict[str, str] = {}
    for path, source in sources.items():
        if cache is not None:
            keys[path] = file_key(hashes[path], per_file_ids)
            cached = cache.get_file(keys[path], path)
            if cached is not None:
                findings.extend(cached)
                hits += 1
                continue
        pending.append((path, source))

    computed: List[Tuple[str, List[Finding]]] = []
    if jobs > 1 and len(pending) > 1:
        tasks = [(path, source, tuple(per_file_ids))
                 for path, source in pending]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for (path, _), entries in zip(pending,
                                          pool.map(_lint_file_task, tasks)):
                computed.append(
                    (path, [Finding(**entry) for entry in entries]))
    else:
        rules = _instantiate(per_file_ids)
        for path, source in pending:
            computed.append((path, lint_source(source, path, rules)))

    for path, file_findings in computed:
        findings.extend(file_findings)
        if cache is not None:
            cache.put_file(keys[path], file_findings)
    return findings, hits


def _run_whole_program_stage(sources: Dict[str, str],
                             semantic_ids: Sequence[str],
                             cache: Optional[AnalysisCache],
                             hashes: Dict[str, str],
                             stats: List[PassStat],
                             ) -> List[Finding]:
    key: Optional[str] = None
    start = time.perf_counter()
    if cache is not None:
        key = project_key(sorted(hashes.items()), semantic_ids)
        cached = cache.get_project(key)
        if cached is not None:
            stats.append(PassStat(name="whole-program (cached)",
                                  seconds=time.perf_counter() - start,
                                  findings=len(cached)))
            return cached
    # Imported here so merely loading the engine never pays for the
    # semantics package.
    from .semantics import SourceModule, run_whole_program
    modules: List[SourceModule] = []
    for path, source in sorted(sources.items()):
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue  # RPR000 already reported by the per-file stage
        modules.append(SourceModule(path=path, source=source, tree=tree))
    findings = run_whole_program(modules, semantic_ids, stats=stats)
    if cache is not None and key is not None:
        cache.put_project(key, findings)
    return findings


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None,
               *,
               jobs: int = 1,
               use_cache: bool = False,
               cache_dir: Union[str, Path, None] = None) -> LintReport:
    """Lint every Python file under ``paths``.

    Args:
        paths: Files and/or directories to scan.
        select: Rule ids or family prefixes to run (default: all).
        ignore: Rule ids or family prefixes to drop from the selection.
        jobs: Worker processes for the per-file stage (1 = in-process).
        use_cache: Serve unchanged files (and unchanged projects) from
            the incremental lint cache.
        cache_dir: Cache location override (default:
            ``$REPRO_LINT_CACHE_DIR`` or ``~/.cache/repro-heb-lint``).

    Raises:
        AnalysisError: On unknown rule ids or missing/unreadable paths.
    """
    per_file_ids, semantic_ids = _partition_rule_ids(select, ignore)
    files = list(iter_python_files(paths))
    sources = _read_sources(files)
    cache = AnalysisCache(cache_dir) if use_cache else None
    hashes: Dict[str, str] = {}
    if cache is not None:
        hashes = {path: content_hash(source)
                  for path, source in sources.items()}

    stats: List[PassStat] = []
    start = time.perf_counter()
    findings, hits = _run_per_file_stage(
        sources, per_file_ids, max(1, jobs), cache, hashes)
    stats.append(PassStat(name="per-file",
                          seconds=time.perf_counter() - start,
                          findings=len(findings)))
    if semantic_ids:
        findings.extend(_run_whole_program_stage(
            sources, semantic_ids, cache, hashes, stats))

    return LintReport(
        findings=tuple(sorted(findings)),
        files_scanned=len(files),
        rule_ids=tuple(sorted([*per_file_ids, *semantic_ids])),
        files_from_cache=hits,
        stats=tuple(stats),
    )
