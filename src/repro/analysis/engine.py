"""The lint engine: file discovery, one-pass AST dispatch, filtering.

:func:`lint_paths` is the library entry point the CLI wraps::

    report = lint_paths(["src"])
    for finding in report.findings:
        print(finding.render())

Each module is parsed once; every AST node is dispatched to the rules
that subscribed to its type.  Findings on lines carrying a matching
``# repro: noqa[...]`` comment are dropped, and the remainder come back
sorted by (path, line, column, rule id) so output is deterministic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from ..errors import AnalysisError
from .findings import Finding
from .rules import FileContext, Rule, all_rules, resolve_rule_ids
from .suppressions import collect_suppressions, is_suppressed

#: Rule id attached to files that fail to parse at all.
PARSE_ERROR_RULE_ID = "RPR000"

#: Directory names never descended into during discovery.
SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis"})


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run."""

    findings: Tuple[Finding, ...]
    files_scanned: int
    rule_ids: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order.

    Raises:
        AnalysisError: When a path does not exist.
    """
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisError(f"no such file or directory: {raw}")
        if path.is_file():
            yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if SKIPPED_DIRS.intersection(candidate.parts):
                continue
            yield candidate


def _select_rules(select: Optional[Iterable[str]],
                  ignore: Optional[Iterable[str]]) -> List[Rule]:
    registry = all_rules()
    selected = resolve_rule_ids(select) if select else list(registry)
    ignored = set(resolve_rule_ids(ignore)) if ignore else set()
    return [registry[rule_id]()
            for rule_id in selected if rule_id not in ignored]


def _dispatch_table(
        rules: Sequence[Rule],
) -> Dict[Type[ast.AST], List[Rule]]:
    table: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in rules:
        for node_type in rule.visits:
            table.setdefault(node_type, []).append(rule)
    return table


def lint_source(source: str, path: str,
                rules: Sequence[Rule]) -> List[Finding]:
    """Lint one in-memory module; returns unsorted, unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(
            path=path,
            line=error.lineno or 1,
            col=(error.offset or 0) + 1,
            rule_id=PARSE_ERROR_RULE_ID,
            message=f"file does not parse: {error.msg}",
        )]
    ctx = FileContext(path, source, tree)
    table = _dispatch_table(rules)
    findings: List[Finding] = []
    for node in ast.walk(tree):
        for rule in table.get(type(node), ()):
            findings.extend(rule.visit(node, ctx))
    suppressions = collect_suppressions(source)
    return [f for f in findings
            if not is_suppressed(suppressions, f.line, f.rule_id)]


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None) -> LintReport:
    """Lint every Python file under ``paths``.

    Args:
        paths: Files and/or directories to scan.
        select: Rule ids to run (default: all registered rules).
        ignore: Rule ids to drop from the selection.

    Raises:
        AnalysisError: On unknown rule ids or missing paths.
    """
    rules = _select_rules(select, ignore)
    findings: List[Finding] = []
    files_scanned = 0
    for path in iter_python_files(paths):
        files_scanned += 1
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            raise AnalysisError(f"cannot read {path}: {error}") from error
        findings.extend(lint_source(source, str(path), rules))
    return LintReport(
        findings=tuple(sorted(findings)),
        files_scanned=files_scanned,
        rule_ids=tuple(sorted(rule.id for rule in rules)),
    )
