"""Human-readable and machine-readable lint reports.

Stats (per-pass wall time, per-family finding counts) are opt-in via
the ``stats=`` renderer argument: wall time is the one nondeterministic
number in the system, so the default reports stay byte-stable.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .engine import LintReport

#: Bumped if the JSON report layout ever changes incompatibly.
REPORT_FORMAT_VERSION = 1


def _family_counts(report: LintReport) -> Dict[str, int]:
    """Finding counts keyed by rule family (``RPR6``-style prefix)."""
    families: Dict[str, int] = {}
    for finding in report.findings:
        family = finding.rule_id[:4]
        families[family] = families.get(family, 0) + 1
    return families


def _stats_lines(report: LintReport) -> List[str]:
    lines = ["", "pass timings:"]
    width = max((len(stat.name) for stat in report.stats), default=0)
    for stat in report.stats:
        lines.append(f"  {stat.name:<{width}}  "
                     f"{stat.seconds * 1000:9.1f} ms  "
                     f"{stat.findings:4d} findings")
    families = _family_counts(report)
    if families:
        lines.append("findings by family:")
        for family in sorted(families):
            lines.append(f"  {family}x  {families[family]:4d}")
    return lines


def render_text(report: LintReport, stats: bool = False) -> str:
    """Conventional ``path:line:col: RULE message`` lines plus a summary."""
    lines = [finding.render() for finding in report.findings]
    noun = "file" if report.files_scanned == 1 else "files"
    if report.findings:
        count = len(report.findings)
        lines.append(
            f"{count} finding{'s' if count != 1 else ''} "
            f"in {report.files_scanned} {noun}")
    else:
        lines.append(f"clean: {report.files_scanned} {noun} scanned")
    if stats:
        lines.extend(_stats_lines(report))
    return "\n".join(lines)


def render_json(report: LintReport, stats: bool = False) -> str:
    """Stable JSON document for tooling (sorted keys, 2-space indent).

    With ``stats=True`` a ``stats`` key is added (pass wall times are
    nondeterministic; everything else stays stable).
    """
    payload = {
        "format": REPORT_FORMAT_VERSION,
        "files_scanned": report.files_scanned,
        "files_from_cache": report.files_from_cache,
        "rules": list(report.rule_ids),
        "findings": [finding.to_dict() for finding in report.findings],
    }
    if stats:
        payload["stats"] = {
            "passes": [stat.to_dict() for stat in report.stats],
            "families": _family_counts(report),
        }
    return json.dumps(payload, sort_keys=True, indent=2)
