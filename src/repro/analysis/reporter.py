"""Human-readable and machine-readable lint reports."""

from __future__ import annotations

import json

from .engine import LintReport

#: Bumped if the JSON report layout ever changes incompatibly.
REPORT_FORMAT_VERSION = 1


def render_text(report: LintReport) -> str:
    """Conventional ``path:line:col: RULE message`` lines plus a summary."""
    lines = [finding.render() for finding in report.findings]
    noun = "file" if report.files_scanned == 1 else "files"
    if report.findings:
        count = len(report.findings)
        lines.append(
            f"{count} finding{'s' if count != 1 else ''} "
            f"in {report.files_scanned} {noun}")
    else:
        lines.append(f"clean: {report.files_scanned} {noun} scanned")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable JSON document for tooling (sorted keys, 2-space indent)."""
    payload = {
        "format": REPORT_FORMAT_VERSION,
        "files_scanned": report.files_scanned,
        "files_from_cache": report.files_from_cache,
        "rules": list(report.rule_ids),
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(payload, sort_keys=True, indent=2)
