"""SARIF 2.1.0 output for ``python -m repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard GitHub code scanning ingests: uploading one run per lint
invocation surfaces findings as inline review annotations.  The
document here is deliberately minimal — one ``run``, one
``reportingDescriptor`` per rule that was enabled for the invocation,
one ``result`` per finding — but schema-complete, so it validates
against the official 2.1.0 JSON schema (``tests/analysis/test_sarif.py``
checks this whenever :mod:`jsonschema` is importable).

Stability contract: like :func:`repro.analysis.reporter.render_json`,
the serialization uses sorted keys and a fixed indent so that repeated
runs over an unchanged tree are byte-identical and diff cleanly.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .. import __version__
from .engine import LintReport
from .findings import Finding
from .rules import all_rules

#: The schema the emitted document declares (and is tested against).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Rule-family prefix -> SARIF ``level`` for its results.  The RPR5xx
#: batch-readiness audit is advisory (``note``): it tracks ROADMAP
#: work, not defects.  RPR703 (RNG/cache state duplicated across pool
#: workers) is likewise advisory — both patterns can be intended.
#: Everything else is a correctness convention and reports as
#: ``warning``.
_LEVEL_BY_PREFIX = {
    "RPR5": "note",
    "RPR703": "note",
}
_DEFAULT_LEVEL = "warning"

#: Informative URI for every rule's help link.
_HELP_URI = "https://example.invalid/repro-heb/docs/analysis.md"


def result_level(rule_id: str) -> str:
    """SARIF severity level for one rule id."""
    for prefix, level in _LEVEL_BY_PREFIX.items():
        if rule_id.startswith(prefix):
            return level
    return _DEFAULT_LEVEL


def _descriptor(rule_id: str, rule_class: type) -> Dict[str, Any]:
    summary = rule_class.summary()
    return {
        "id": rule_id,
        "name": rule_class.__name__,
        "shortDescription": {"text": summary},
        "helpUri": _HELP_URI,
        "defaultConfiguration": {"level": result_level(rule_id)},
    }


def _result(finding: Finding) -> Dict[str, Any]:
    return {
        "ruleId": finding.rule_id,
        "level": result_level(finding.rule_id),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }


def sarif_document(report: LintReport) -> Dict[str, Any]:
    """The report as a SARIF 2.1.0 log object (plain dict)."""
    registry = all_rules()
    descriptors = [
        _descriptor(rule_id, registry[rule_id])
        for rule_id in report.rule_ids
        if rule_id in registry
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": _HELP_URI,
                        "version": __version__,
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "columnKind": "utf16CodeUnits",
                "results": [_result(f) for f in report.findings],
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    """Stable SARIF serialization (sorted keys, 2-space indent)."""
    return json.dumps(sarif_document(report), sort_keys=True, indent=2)
