"""Incremental on-disk cache for lint results.

Mirrors the runner's result cache (:mod:`repro.runner.cache`): sharded
``<dir>/<key[:2]>/<key>.json`` layout, atomic tempfile+rename writes,
corrupt entries read as misses.  Two entry kinds share the store:

* **per-file** — findings of the per-file rules for one module, keyed by
  SHA-256 of (analysis-code fingerprint, selected per-file rule ids,
  file content hash).  Findings are stored path-less and re-anchored on
  read, so a file moving on disk without changing still hits.
* **project** — findings of the whole-program passes, keyed by SHA-256
  of (analysis-code fingerprint, selected whole-program rule ids, the
  sorted (path, content-hash) list of *every* scanned module).  Any
  edited, added, or removed file therefore invalidates the project
  entry, which is exactly the soundness requirement for
  interprocedural results.

Invalidation is purely key-side: the fingerprint covers every ``.py``
file of ``repro.analysis`` itself, so changing a rule or a pass
invalidates all previous lint results while leaving the (much larger)
simulator cache untouched.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .findings import Finding

#: Environment variable overriding the default lint-cache directory.
LINT_CACHE_DIR_ENV = "REPRO_LINT_CACHE_DIR"

#: Bumped when the entry layout changes; part of every key.
ENTRY_FORMAT = 1


def default_lint_cache_dir() -> Path:
    """``$REPRO_LINT_CACHE_DIR`` if set, else ``~/.cache/repro-heb-lint``."""
    override = os.environ.get(LINT_CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-heb-lint"


@lru_cache(maxsize=1)
def analysis_fingerprint() -> str:
    """SHA-256 over every ``.py`` file of ``repro.analysis`` itself.

    Computed once per process.  Editing any rule, pass, or the engine
    changes the fingerprint and thereby invalidates every cached lint
    result; editing the simulator does not.
    """
    package_root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def content_hash(source: str) -> str:
    """Hex SHA-256 of one file's text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def file_key(source_hash: str, rule_ids: Sequence[str]) -> str:
    """Cache key of one module's per-file findings."""
    payload = json.dumps(
        {"format": ENTRY_FORMAT, "kind": "file",
         "code": analysis_fingerprint(), "rules": sorted(rule_ids),
         "source": source_hash},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def project_key(file_hashes: Sequence[Tuple[str, str]],
                rule_ids: Sequence[str]) -> str:
    """Cache key of the whole-program findings for one file set."""
    payload = json.dumps(
        {"format": ENTRY_FORMAT, "kind": "project",
         "code": analysis_fingerprint(), "rules": sorted(rule_ids),
         "files": sorted(list(pair) for pair in file_hashes)},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _finding_to_entry(finding: Finding, strip_path: bool) -> Dict:
    # Serialized under the dataclass field names (``rule_id``), not the
    # report-facing ``to_dict`` spelling (``rule``), so the round trip
    # below stays a plain field copy.
    entry = {"line": finding.line, "col": finding.col,
             "rule_id": finding.rule_id, "message": finding.message}
    if not strip_path:
        entry["path"] = finding.path
    return entry


def _finding_from_entry(entry: Dict, path: Optional[str]) -> Finding:
    return Finding(
        path=entry.get("path", path or "<unknown>"),
        line=int(entry["line"]),
        col=int(entry["col"]),
        rule_id=str(entry["rule_id"]),
        message=str(entry["message"]),
    )


class AnalysisCache:
    """Maps lint cache keys (hex SHA-256) to serialized findings."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = (Path(directory) if directory
                          else default_lint_cache_dir())
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    # -- per-file entries (findings stored path-less) -------------------

    def get_file(self, key: str, path: str) -> Optional[List[Finding]]:
        """Cached per-file findings re-anchored at ``path``, or None."""
        entries = self._read(key)
        if entries is None:
            return None
        try:
            return [_finding_from_entry(entry, path) for entry in entries]
        except (KeyError, TypeError, ValueError):
            return None

    def put_file(self, key: str, findings: Sequence[Finding]) -> None:
        self._write(key, [_finding_to_entry(f, strip_path=True)
                          for f in findings])

    # -- project entries (findings keep their paths) --------------------

    def get_project(self, key: str) -> Optional[List[Finding]]:
        entries = self._read(key)
        if entries is None:
            return None
        try:
            return [_finding_from_entry(entry, None) for entry in entries]
        except (KeyError, TypeError, ValueError):
            return None

    def put_project(self, key: str, findings: Sequence[Finding]) -> None:
        self._write(key, [_finding_to_entry(f, strip_path=False)
                          for f in findings])

    # -- storage --------------------------------------------------------

    def _read(self, key: str) -> Optional[List[Dict]]:
        try:
            payload = json.loads(self._path(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (not isinstance(payload, dict)
                or payload.get("format") != ENTRY_FORMAT
                or not isinstance(payload.get("findings"), list)):
            return None
        return payload["findings"]

    def _write(self, key: str, entries: List[Dict]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"format": ENTRY_FORMAT, "findings": entries},
                             sort_keys=True, separators=(",", ":"))
        handle, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(payload)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in self.directory.glob("??"):
            try:
                shard.rmdir()
            except OSError:
                pass  # non-empty (stray files) — leave it
        return removed
