"""Rule base class, per-file context, and the global rule registry.

A rule subclasses :class:`Rule`, declares which AST node types it wants
via :attr:`Rule.visits`, and yields :class:`Finding` objects from
:meth:`Rule.visit`.  Decorating the class with :func:`register` adds it
to the registry the lint engine and CLI enumerate.

The engine walks each module's AST exactly once and dispatches every
node to the rules that subscribed to its type, so adding rules does not
add tree traversals.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from ..errors import AnalysisError
from .findings import Finding

#: Path components under which simulation results must be bit-for-bit
#: reproducible (they feed the content-addressed result cache and the
#: parallel==serial guarantee of the experiment runner).
DETERMINISTIC_PACKAGES = frozenset(
    {"sim", "core", "storage", "runner", "faults"})


class FileContext:
    """Everything the rules may want to know about the file being linted."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        parts = PurePath(path).parts
        #: True when the file lives in a package whose output feeds the
        #: deterministic result cache (see DETERMINISTIC_PACKAGES).
        self.is_deterministic_scope = bool(
            DETERMINISTIC_PACKAGES.intersection(parts))
        #: True for the one module allowed to define time-conversion
        #: constants.
        self.is_units_module = PurePath(path).name == "units.py"
        self.imports = _collect_imports(tree)

    def resolve_call(self, node: ast.expr) -> Optional[str]:
        """Best-effort dotted name of a call target, through imports.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when the
        module was imported as ``import numpy as np``; unresolvable
        expressions (lambdas, subscripts, ...) return ``None``.
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.append(self.imports.get(node.id, node.id))
        return ".".join(reversed(chain))

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule.id,
            message=message,
        )


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted module/object paths they refer to."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}")
    return imports


class Rule:
    """Base class for one static-analysis rule.

    Attributes:
        id: Stable identifier (``RPR###``) used in reports and
            ``# repro: noqa[...]`` suppressions.
        visits: AST node types this rule wants to see.
        whole_program: True for rules implemented by the
            interprocedural passes in :mod:`repro.analysis.semantics`;
            the engine routes them through the whole-program analyzer
            instead of the per-file dispatch loop.
    """

    id: str = ""
    visits: Tuple[Type[ast.AST], ...] = ()
    whole_program: bool = False

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one node.  Default: nothing."""
        return iter(())

    @classmethod
    def summary(cls) -> str:
        """First docstring line; shown by ``lint --list-rules``."""
        doc = (cls.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else cls.__name__


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise AnalysisError(f"rule {rule_class.__name__} has no id")
    if rule_class.id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """The registry, keyed by rule id (sorted copy)."""
    _load_builtin_rules()
    return dict(sorted(_REGISTRY.items()))


def resolve_rule_ids(ids: Iterable[str]) -> List[str]:
    """Expand a user-supplied rule-id list against the registry.

    An entry may be an exact id (``RPR102``) or a family prefix
    (``RPR1`` selects every registered ``RPR1xx`` rule), so
    ``--select RPR1,RPR2`` enables both unit passes and both
    determinism passes without enumerating ids.

    Raises:
        AnalysisError: If any entry matches no registered rule.
    """
    known = all_rules()
    resolved: List[str] = []
    for rule_id in ids:
        rule_id = rule_id.strip().upper()
        if not rule_id:
            continue
        if rule_id in known:
            if rule_id not in resolved:
                resolved.append(rule_id)
            continue
        expanded = [rid for rid in known if rid.startswith(rule_id)]
        if not expanded:
            raise AnalysisError(
                f"unknown rule id {rule_id!r} "
                f"(known: {', '.join(known)})")
        resolved.extend(rid for rid in expanded if rid not in resolved)
    return resolved


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (idempotent)."""
    from . import checkers  # noqa: F401  (import populates the registry)
    from . import semantics  # noqa: F401  (whole-program rule ids)
