"""The ``python -m repro lint`` subcommand.

Exit codes follow the usual linter convention:

* 0 — no findings (or, with ``--baseline check``, none beyond the
  recorded baseline),
* 1 — findings were reported,
* 2 — usage error (unknown rule id, missing path, unreadable file,
  ``--changed`` outside a git repository).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional, TextIO

from ..errors import AnalysisError
from .baseline import (
    DEFAULT_BASELINE_FILE,
    load_baseline,
    new_findings,
    write_baseline,
)
from .changed import changed_python_files
from .engine import lint_paths
from .reporter import render_json, render_text
from .rules import all_rules
from .sarif import render_sarif


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--select", action="append", default=None, metavar="RULES",
        help="comma-separated rule ids or family prefixes to run "
             "(e.g. RPR1,RPR2; repeatable; default: all)")
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="RULES",
        help="comma-separated rule ids or family prefixes to skip "
             "(repeatable)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the per-file stage (default: 1)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental lint cache")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="lint cache location (default: $REPRO_LINT_CACHE_DIR or "
             "~/.cache/repro-heb-lint)")
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only files modified vs git merge-base HEAD "
             "origin/main (falls back to main)")
    parser.add_argument(
        "--baseline", choices=("write", "check"), default=None,
        help="write: accept current findings as the baseline; "
             "check: fail only on findings not in the baseline")
    parser.add_argument(
        "--baseline-file", default=DEFAULT_BASELINE_FILE,
        metavar="FILE",
        help=f"baseline location (default: {DEFAULT_BASELINE_FILE})")
    parser.add_argument(
        "--stats", action="store_true",
        help="append per-pass wall-time and per-family finding-count "
             "stats to text/json reports (ignored for sarif)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")


def _split_ids(groups: Optional[List[str]]) -> Optional[List[str]]:
    if groups is None:
        return None
    return [part for group in groups for part in group.split(",") if part]


def _list_rules(stream: TextIO) -> int:
    for rule_id, rule_class in all_rules().items():
        marker = "*" if rule_class.whole_program else " "
        stream.write(f"{rule_id} {marker} {rule_class.summary()}\n")
    stream.write("(* = whole-program pass)\n")
    return 0


def run_lint(args: argparse.Namespace,
             stdout: Optional[TextIO] = None,
             stderr: Optional[TextIO] = None) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit code."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    if args.list_rules:
        return _list_rules(out)
    baseline_mode = getattr(args, "baseline", None)
    try:
        paths = list(args.paths)
        if getattr(args, "changed", False):
            paths = changed_python_files(paths)
            if not paths:
                out.write("clean: no changed Python files\n")
                return 0
        report = lint_paths(
            paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            jobs=getattr(args, "jobs", 1) or 1,
            use_cache=not getattr(args, "no_cache", False),
            cache_dir=getattr(args, "cache_dir", None),
        )
        if baseline_mode == "write":
            written = write_baseline(args.baseline_file, report.findings)
            out.write(f"baseline: recorded {written} fingerprint"
                      f"{'s' if written != 1 else ''} "
                      f"({len(report.findings)} finding"
                      f"{'s' if len(report.findings) != 1 else ''}) "
                      f"in {args.baseline_file}\n")
            return 0
        if baseline_mode == "check":
            accepted = load_baseline(args.baseline_file)
            report = dataclasses.replace(
                report,
                findings=tuple(new_findings(report.findings, accepted)))
    except AnalysisError as error:
        err.write(f"lint: error: {error}\n")
        return 2
    want_stats = getattr(args, "stats", False)
    if args.format == "sarif":
        rendered = render_sarif(report)
    elif args.format == "json":
        rendered = render_json(report, stats=want_stats)
    else:
        rendered = render_text(report, stats=want_stats)
    out.write(rendered)
    out.write("\n")
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Static analysis for the HEB reproduction: unit "
                    "discipline, determinism, exception hygiene, plus "
                    "whole-program dimensional-dataflow and "
                    "cache-purity passes.")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
