"""The ``python -m repro lint`` subcommand.

Exit codes follow the usual linter convention:

* 0 — no findings,
* 1 — findings were reported,
* 2 — usage error (unknown rule id, missing path, unreadable file).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, TextIO

from ..errors import AnalysisError
from .engine import lint_paths
from .reporter import render_json, render_text
from .rules import all_rules


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--select", action="append", default=None, metavar="RULES",
        help="comma-separated rule ids to run (repeatable; default: all)")
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="RULES",
        help="comma-separated rule ids to skip (repeatable)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")


def _split_ids(groups: Optional[List[str]]) -> Optional[List[str]]:
    if groups is None:
        return None
    return [part for group in groups for part in group.split(",") if part]


def _list_rules(stream: TextIO) -> int:
    for rule_id, rule_class in all_rules().items():
        stream.write(f"{rule_id}  {rule_class.summary()}\n")
    return 0


def run_lint(args: argparse.Namespace,
             stdout: Optional[TextIO] = None,
             stderr: Optional[TextIO] = None) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit code."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    if args.list_rules:
        return _list_rules(out)
    try:
        report = lint_paths(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
        )
    except AnalysisError as error:
        err.write(f"lint: error: {error}\n")
        return 2
    renderer = render_json if args.format == "json" else render_text
    out.write(renderer(report))
    out.write("\n")
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Static analysis for the HEB reproduction: unit "
                    "discipline, determinism, exception hygiene.")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
