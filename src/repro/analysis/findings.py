"""Finding objects produced by the static-analysis rules.

A :class:`Finding` pins one rule violation to a file and position.  The
tuple ordering (path, line, column, rule id) gives reports a stable,
deterministic order regardless of the order rules ran in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }

    def render(self) -> str:
        """The conventional one-line ``path:line:col: RULE message`` form."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}")


@dataclass(frozen=True)
class PassStat:
    """Wall time and finding count for one analysis stage.

    Collected only when ``lint --stats`` asks for them; ``seconds`` is
    wall time (the one number that is *not* deterministic, which is why
    stats stay out of the default byte-stable reports).
    """

    name: str
    seconds: float
    findings: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "findings": self.findings,
        }
