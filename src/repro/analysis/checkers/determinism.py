"""Determinism rules (RPR2xx).

The experiment runner caches results under a SHA-256 of (request, code)
and promises parallel == serial output bit-for-bit.  Both guarantees die
silently if simulation code consults wall clocks, process entropy, or
unordered containers.  These rules police every package whose output
feeds that cache (``sim``, ``core``, ``storage``, ``runner``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..rules import FileContext, Rule, register

#: Call targets (resolved through imports) that read ambient state.
NONDETERMINISTIC_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "secrets.token_bytes",
    "secrets.token_hex",
})

#: ``numpy.random`` members that are explicitly-seeded constructors and
#: therefore fine; everything else on the module is legacy global state.
SAFE_NUMPY_RANDOM = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: ``random`` members that are deterministic when explicitly seeded.
SAFE_STDLIB_RANDOM = frozenset({"Random"})


@register
class NondeterministicCallRule(Rule):
    """No wall clocks, UUIDs, or unseeded global RNGs in cached code.

    ``time.time()``, ``datetime.now()``, ``uuid4()``, ``random.random()``
    and the legacy ``np.random.*`` globals make a run unrepeatable, which
    silently corrupts the content-addressed result cache and breaks the
    parallel==serial guarantee.  Route randomness through an explicitly
    seeded ``numpy.random.Generator`` (or ``random.Random(seed)``).
    """

    id = "RPR201"
    visits = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not ctx.is_deterministic_scope:
            return
        target = ctx.resolve_call(node.func)
        if target is None:
            return
        reason = self._violation(target)
        if reason:
            yield ctx.finding(
                self, node,
                f"call to {target!r} {reason} inside a deterministic "
                f"package; results feeding the content-addressed cache "
                f"must be reproducible")

    @staticmethod
    def _violation(target: str) -> str:
        if target in NONDETERMINISTIC_CALLS:
            return "reads ambient state (clock/entropy)"
        parts = target.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] not in SAFE_STDLIB_RANDOM:
                return "uses the unseeded process-global random state"
        if len(parts) >= 2 and parts[-2] == "random" and (
                parts[0] in ("numpy", "np")):
            if parts[-1] not in SAFE_NUMPY_RANDOM:
                return "uses numpy's legacy global random state"
        return ""


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class SetIterationRule(Rule):
    """No iteration over sets in deterministic packages.

    Set iteration order depends on insertion history and hash seeds;
    feeding it into float accumulation (or any ordered output) makes two
    identical runs disagree in the last ulp.  Sort first:
    ``for x in sorted(the_set)``.
    """

    id = "RPR202"
    visits = (ast.For, ast.comprehension, ast.Call)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_deterministic_scope:
            return
        if isinstance(node, ast.For) and _is_set_expression(node.iter):
            yield ctx.finding(
                self, node,
                "iteration over a set has no deterministic order; "
                "wrap it in sorted(...)")
        elif isinstance(node, ast.comprehension) and _is_set_expression(
                node.iter):
            yield ctx.finding(
                self, node.iter,
                "comprehension iterates a set in nondeterministic order; "
                "wrap it in sorted(...)")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name) and func.id == "sum"
                    and node.args and _is_set_expression(node.args[0])):
                yield ctx.finding(
                    self, node,
                    "sum() over a set accumulates floats in "
                    "nondeterministic order; sum a sorted(...) sequence")


#: Expression types that build a fresh mutable container.
_MUTABLE_DEFAULT_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)
_MUTABLE_DEFAULT_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "defaultdict", "deque", "OrderedDict", "Counter",
})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_DEFAULT_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_DEFAULT_CALLS
    return False


@register
class MutableDefaultArgumentRule(Rule):
    """No mutable default arguments on public functions.

    A ``def f(items=[])`` default is evaluated once at definition time
    and then shared by every call — state leaks across calls, which in
    cached simulation code also couples runs executed in the same
    process.  Default to ``None`` and create the container inside the
    body.
    """

    id = "RPR203"
    visits = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if node.name.startswith("_"):
            return
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        for arg, default in zip(positional[len(positional)
                                           - len(args.defaults):],
                                args.defaults):
            if _is_mutable_default(default):
                yield ctx.finding(
                    self, default,
                    f"parameter {arg.arg!r} of public function "
                    f"{node.name!r} has a mutable default; use None and "
                    f"construct the container in the body")
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None and _is_mutable_default(default):
                yield ctx.finding(
                    self, default,
                    f"parameter {arg.arg!r} of public function "
                    f"{node.name!r} has a mutable default; use None and "
                    f"construct the container in the body")
