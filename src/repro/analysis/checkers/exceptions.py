"""Exception-hygiene rules (RPR3xx).

Callers are promised a single contract: everything this library raises
is a :class:`repro.errors.ReproError` subclass (plus ``TypeError`` /
``ValueError`` at configuration boundaries, and ``NotImplementedError``
as an abstract-method marker).  These rules keep that contract honest
and stop broad handlers from eating failures.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from ..findings import Finding
from ..rules import FileContext, Rule, register

#: Builtin exceptions the library may raise directly.
ALLOWED_BUILTIN_RAISES = frozenset({
    "TypeError", "ValueError", "NotImplementedError", "KeyError",
    "StopIteration",
})

#: Handler types considered "broad": they swallow unrelated failures.
BROAD_HANDLER_NAMES = frozenset({"Exception", "BaseException"})


def _repro_error_names() -> FrozenSet[str]:
    """Every exception class exported by :mod:`repro.errors`."""
    from ... import errors

    return frozenset(
        name for name, obj in vars(errors).items()
        if isinstance(obj, type) and issubclass(obj, errors.ReproError))


def _handler_names(handler: ast.ExceptHandler) -> Iterator[str]:
    node = handler.type
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    for element in elements:
        if isinstance(element, ast.Name):
            yield element.id
        elif isinstance(element, ast.Attribute):
            yield element.attr


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body re-raises the caught exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


@register
class BroadExceptRule(Rule):
    """No bare ``except:`` / ``except Exception:`` swallowing.

    A broad handler hides ``DepletedError`` logic bugs and corrupted
    simulation state alike.  Catch the narrowest :class:`ReproError`
    subclass that can actually occur; a broad handler is tolerated only
    when its body re-raises (``raise`` with no argument).
    """

    id = "RPR301"
    visits = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            if not _reraises(node):
                yield ctx.finding(
                    self, node,
                    "bare 'except:' swallows every failure including "
                    "KeyboardInterrupt; catch a specific ReproError "
                    "subclass")
            return
        if _reraises(node):
            return
        for name in _handler_names(node):
            if name in BROAD_HANDLER_NAMES:
                yield ctx.finding(
                    self, node,
                    f"'except {name}:' swallows unrelated failures; "
                    f"catch the narrowest ReproError subclass instead")


@register
class ForeignRaiseRule(Rule):
    """Raises must be ReproError subclasses (or sanctioned builtins).

    The library's error contract is the :mod:`repro.errors` hierarchy;
    raising ``RuntimeError`` or ad-hoc Exception subclasses breaks every
    caller that relies on ``except ReproError``.  ``TypeError`` /
    ``ValueError`` / ``KeyError`` stay legal at configuration
    boundaries, ``NotImplementedError`` as an abstract-method marker.
    """

    id = "RPR302"
    visits = (ast.Raise,)

    def __init__(self) -> None:
        self._allowed = _repro_error_names() | ALLOWED_BUILTIN_RAISES

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Raise)
        exc = node.exc
        if exc is None:  # bare re-raise
            return
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Attribute):
            name = exc.attr
        elif isinstance(exc, ast.Name):
            name = exc.id
        else:
            return  # dynamic expression; not statically checkable
        if name in self._allowed:
            return
        if name[:1].islower():
            return  # a variable holding an exception instance
        yield ctx.finding(
            self, node,
            f"raise of {name!r} is outside the library contract; raise a "
            f"repro.errors.ReproError subclass (or TypeError/ValueError "
            f"at a config boundary)")
