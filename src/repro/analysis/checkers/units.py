"""Unit-discipline rules (RPR1xx).

The library computes in SI units and encodes the unit of every quantity
in its name (``_w`` watts, ``_j`` joules, ``_c`` coulombs, ...; see
:mod:`repro.units`).  These rules catch the classic energy-accounting
bugs: adding watts to joules, re-deriving conversion constants outside
``units.py``, and public signatures that drop the unit from a
power/energy quantity.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Dict, Iterator, Optional, Tuple

from ..findings import Finding
from ..rules import FileContext, Rule, register

#: Packages whose float quantities come out of long accumulation chains,
#: where exact equality is practically always a rounding bug.
FLOAT_EQUALITY_PACKAGES = frozenset({"sim", "storage", "core"})

#: Suffix -> dimension for names following the ``value_<unit>`` idiom.
SUFFIX_DIMENSION: Dict[str, str] = {
    "w": "power", "kw": "power", "mw": "power",
    "j": "energy", "wh": "energy", "kwh": "energy",
    "c": "charge", "ah": "charge",
}

#: Unit suffixes accepted on power/energy names in public signatures.
ACCEPTED_SUFFIXES = frozenset(SUFFIX_DIMENSION) | frozenset({
    "a", "v", "s", "h", "y", "years", "ohm", "pct", "frac", "ratio",
})

#: Name tokens that mark a value as a power/energy quantity.
QUANTITY_TOKENS = frozenset({"power", "energy"})

#: Second/hour conversion constants that must come from repro.units.
MAGIC_TIME_CONSTANTS: Dict[float, str] = {
    3600.0: "units.SECONDS_PER_HOUR (or an hours()/wh_to_joules()-style helper)",
    86400.0: "units.SECONDS_PER_DAY (or units.days())",
    8760.0: "units.HOURS_PER_YEAR",
}


def name_dimension(name: str) -> Optional[str]:
    """Dimension encoded in ``name``'s unit suffix, if any."""
    token = name.rsplit("_", 1)[-1].lower() if "_" in name else ""
    return SUFFIX_DIMENSION.get(token)


def _operand_name(node: ast.expr) -> Optional[str]:
    """A name whose suffix can carry a unit: Name, Attribute, or Call."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _operand_name(node.func)
    return None


def _operand_dimension(node: ast.expr) -> Optional[str]:
    name = _operand_name(node)
    return name_dimension(name) if name else None


@register
class MixedUnitArithmeticRule(Rule):
    """Additive arithmetic must not mix power, energy, and charge names.

    ``demand_w + stored_j`` is dimensionally meaningless; a conversion
    (multiplication by a time step, a units helper) is required first.
    Only ``+``/``-`` are flagged — products and quotients are how unit
    conversions are legitimately written.
    """

    id = "RPR101"
    visits = (ast.BinOp, ast.AugAssign)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.BinOp):
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                return
            pairs: Tuple[Tuple[ast.expr, ast.expr], ...] = (
                (node.left, node.right),)
        else:
            assert isinstance(node, ast.AugAssign)
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                return
            pairs = ((node.target, node.value),)
        for left, right in pairs:
            left_dim = _operand_dimension(left)
            right_dim = _operand_dimension(right)
            if left_dim and right_dim and left_dim != right_dim:
                yield ctx.finding(
                    self, node,
                    f"additive arithmetic mixes {left_dim} "
                    f"({_operand_name(left)!r}) with {right_dim} "
                    f"({_operand_name(right)!r}); convert explicitly via "
                    f"repro.units first")


@register
class MagicTimeConstantRule(Rule):
    """Time-conversion constants belong in ``repro.units``, nowhere else.

    A literal ``3600``, ``86400``, or ``8760`` outside ``units.py`` is a
    re-derived conversion factor; use the named constant or helper so the
    unit discipline stays auditable in one module.
    """

    id = "RPR102"
    visits = (ast.Constant,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Constant)
        if ctx.is_units_module:
            return
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        replacement = MAGIC_TIME_CONSTANTS.get(float(value))
        if replacement is not None:
            yield ctx.finding(
                self, node,
                f"magic time constant {value!r}; use {replacement}")


def _is_float_annotation(annotation: Optional[ast.expr]) -> bool:
    return isinstance(annotation, ast.Name) and annotation.id == "float"


@register
class UnsuffixedQuantityRule(Rule):
    """Public power/energy signatures must carry a unit suffix.

    A public parameter named ``power`` or ``peak_energy`` (and a public
    function named ``...power``/``...energy`` returning a bare float)
    leaves the unit to the caller's imagination; name it ``power_w``,
    ``peak_energy_j``, ... so call sites read dimensionally.
    """

    id = "RPR103"
    visits = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if node.name.startswith("_"):
            return
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg in ("self", "cls"):
                continue
            if self._is_unsuffixed_quantity(arg.arg):
                yield ctx.finding(
                    self, arg,
                    f"parameter {arg.arg!r} of public function "
                    f"{node.name!r} carries power/energy semantics but no "
                    f"unit suffix (e.g. {arg.arg}_w / {arg.arg}_j)")
        if (self._is_unsuffixed_quantity(node.name)
                and _is_float_annotation(node.returns)):
            yield ctx.finding(
                self, node,
                f"public function {node.name!r} returns a power/energy "
                f"float without a unit suffix in its name "
                f"(e.g. {node.name}_w / {node.name}_j)")

    @staticmethod
    def _is_unsuffixed_quantity(name: str) -> bool:
        tokens = name.lower().split("_")
        return tokens[-1] in QUANTITY_TOKENS


@register
class FloatEqualityRule(Rule):
    """No exact ``==``/``!=`` on power/energy quantities.

    Values named ``*_w``/``*_j``/... in ``sim``, ``storage``, and
    ``core`` come out of long float accumulation chains; comparing them
    bit-exactly flips on the last ulp.  Use ``math.isclose`` or an
    explicit tolerance (``abs(a - b) <= eps``).  Exact comparisons that
    are genuinely intentional (memo-key checks) take a
    ``# repro: noqa[RPR104]``.
    """

    id = "RPR104"
    visits = (ast.Compare,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        if not FLOAT_EQUALITY_PACKAGES.intersection(
                PurePath(ctx.path).parts):
            return
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                dim = _operand_dimension(side)
                if dim in ("power", "energy"):
                    label = _operand_name(side)
                    yield ctx.finding(
                        self, node,
                        f"exact {'==' if isinstance(op, ast.Eq) else '!='}"
                        f" on {dim} value {label!r}; float accumulation "
                        f"makes bit-exact comparison unreliable — use "
                        f"math.isclose or an explicit tolerance")
                    break
