"""Built-in rule pack.

Importing this package registers every built-in rule; the registry in
:mod:`repro.analysis.rules` triggers that import lazily.
"""

from __future__ import annotations

from . import determinism, exceptions, units  # noqa: F401

__all__ = ["determinism", "exceptions", "units"]
