"""Baseline (ratchet) workflow for adopting the linter incrementally.

``python -m repro lint --baseline write`` records every current finding
as an accepted fingerprint; ``--baseline check`` then fails only on
findings *not* covered by the recorded baseline, so new code is held to
the rules while legacy findings are burned down over time.

A fingerprint is (path, rule id, message) — deliberately line-free, so
unrelated edits that shift a legacy finding up or down a file do not
break the build.  Identical findings are counted: a file with two
accepted ``RPR101`` findings that grows a third fails the check.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Union

from ..errors import AnalysisError
from .findings import Finding

#: Bumped if the baseline file layout ever changes incompatibly.
BASELINE_FORMAT = 1

#: Default baseline location, repo-root relative.
DEFAULT_BASELINE_FILE = ".repro-lint-baseline.json"


def finding_fingerprint(finding: Finding) -> str:
    """Line-free identity of a finding: path, rule, message."""
    return f"{finding.path}::{finding.rule_id}::{finding.message}"


def baseline_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    """fingerprint -> occurrence count for a finding set."""
    return dict(Counter(finding_fingerprint(f) for f in findings))


def write_baseline(path: Union[str, Path],
                   findings: Sequence[Finding]) -> int:
    """Persist the current findings as the accepted baseline.

    Returns:
        The number of distinct fingerprints written.
    """
    counts = baseline_counts(findings)
    payload = json.dumps(
        {"format": BASELINE_FORMAT, "counts": counts},
        sort_keys=True, indent=2)
    Path(path).write_text(payload + "\n", encoding="utf-8")
    return len(counts)


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Accepted fingerprint counts; a missing file is an empty baseline.

    Raises:
        AnalysisError: On unreadable or format-incompatible content.
    """
    baseline_path = Path(path)
    if not baseline_path.exists():
        return {}
    try:
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise AnalysisError(
            f"cannot read baseline {baseline_path}: {error}") from error
    if (not isinstance(payload, dict)
            or payload.get("format") != BASELINE_FORMAT
            or not isinstance(payload.get("counts"), dict)):
        raise AnalysisError(
            f"baseline {baseline_path} has an unsupported layout "
            f"(expected format {BASELINE_FORMAT})")
    counts: Dict[str, int] = {}
    for key, value in payload["counts"].items():
        if not isinstance(key, str) or not isinstance(value, int):
            raise AnalysisError(
                f"baseline {baseline_path} has a malformed entry "
                f"({key!r}: {value!r})")
        counts[key] = value
    return counts


def new_findings(findings: Sequence[Finding],
                 accepted: Dict[str, int]) -> List[Finding]:
    """Findings exceeding their fingerprint's accepted count.

    Findings are consumed in sorted order, so when a fingerprint occurs
    more often than the baseline allows, the later occurrences (by line)
    are the ones reported.
    """
    remaining = dict(accepted)
    fresh: List[Finding] = []
    for finding in sorted(findings):
        fingerprint = finding_fingerprint(finding)
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
        else:
            fresh.append(finding)
    return fresh
