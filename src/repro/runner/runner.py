"""Parallel, cache-aware dispatch of independent experiment runs.

Every per-second simulation in the evaluation grid is independent of the
others, so the runner fans :class:`RunRequest` batches out over a
``ProcessPoolExecutor`` and (optionally) consults a content-addressed
:class:`~repro.runner.cache.ResultCache` first.  Results come back in
request order and are bit-for-bit identical to a serial in-process run,
because both paths share :func:`execute_request`.

The experiment modules don't take a runner argument; they route through
a module-level *active runner* (serial, cacheless by default) that the
CLI — or any caller — swaps via :func:`using_runner` / :func:`set_runner`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import ConfigurationError
from ..sim import RunResult
from .batch import execute_unit, plan_units
from .cache import ResultCache
from .keys import cache_key
from .request import RunRequest, execute_request


class ExperimentRunner:
    """Executes request batches with optional parallelism and caching.

    Args:
        jobs: Worker processes for cache misses; ``None`` means
            ``os.cpu_count()``.  With one job (or one miss) requests run
            serially in-process — no pool is spawned.
        cache: Result cache consulted before executing and updated
            after; ``None`` disables caching entirely.
        batch: Route compatible cache misses through the batched engine
            (one vectorized tick loop per group).  Results, cache keys,
            and request order are identical either way; disable to force
            one scalar tick loop per request.

    Attributes:
        hits / misses: Per-runner counters of cache outcomes (misses
            also count every request executed with caching disabled).
        batched: Requests executed via a batched group (a subset of
            ``misses``).
        coalesced: Duplicate cache-missing requests within one
            :meth:`map` call that shared another miss's execution
            instead of running again (see the dedup note on ``map``).
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 batch: bool = True) -> None:
        if jobs is not None and jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs!r}")
        self.jobs = jobs
        self.cache = cache
        self.batch = batch
        self.hits = 0
        self.misses = 0
        self.batched = 0
        self.coalesced = 0

    @property
    def effective_jobs(self) -> int:
        return self.jobs if self.jobs is not None else (os.cpu_count() or 1)

    def run(self, request: RunRequest) -> RunResult:
        """Execute (or fetch) a single request."""
        return self.map([request])[0]

    def map(self, requests: Sequence[RunRequest]) -> List[RunResult]:
        """Execute a batch; results align with ``requests`` by index.

        Identical requests in one batch execute **once**: the cache
        check and the execution decision used to be a check-then-act
        window — two misses on the same key both executed (and both
        wrote the cache) because neither could see the other.  Misses
        are now claimed by key: the first occurrence executes, later
        occurrences share its result (counted in ``coalesced``).  Two
        *separate* ``map`` calls racing on one key in different
        processes can still both execute — that window is benign
        (atomic cache writes, bit-identical bytes, last writer wins)
        and is closed in-process by the scenario service's in-flight
        registry (:mod:`repro.service.queue`).
        """
        requests = list(requests)
        results: List[Optional[RunResult]] = [None] * len(requests)
        keys: List[Optional[str]] = [None] * len(requests)
        miss_indices: List[int] = []
        claimed: Dict[str, int] = {}
        followers: Dict[int, List[int]] = {}

        if self.cache is not None:
            for index, request in enumerate(requests):
                key = cache_key(request)
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    self.hits += 1
                    continue
                leader = claimed.get(key)
                if leader is None:
                    claimed[key] = index
                    miss_indices.append(index)
                    self.misses += 1
                else:
                    followers.setdefault(leader, []).append(index)
                    self.coalesced += 1
        else:
            miss_indices = list(range(len(requests)))
            self.misses += len(requests)

        if miss_indices:
            workers = min(self.effective_jobs, len(miss_indices))
            pending = [requests[index] for index in miss_indices]
            if self.batch:
                units, unit_positions = plan_units(pending, workers=workers)
                self.batched += sum(len(positions)
                                    for (kind, _), positions
                                    in zip(units, unit_positions)
                                    if kind == "group")
                if workers > 1 and len(units) > 1:
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        unit_results = list(pool.map(execute_unit, units))
                else:
                    unit_results = [execute_unit(unit) for unit in units]
                computed: List[Optional[RunResult]] = [None] * len(pending)
                for positions, unit_result in zip(unit_positions,
                                                  unit_results):
                    for position, result in zip(positions, unit_result):
                        computed[position] = result
            elif workers > 1:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    computed = list(pool.map(execute_request, pending))
            else:
                computed = [execute_request(request) for request in pending]
            for index, result in zip(miss_indices, computed):
                results[index] = result
                if self.cache is not None:
                    self.cache.put(keys[index], result)
                for duplicate in followers.get(index, ()):
                    results[duplicate] = result

        return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# The active runner
# ----------------------------------------------------------------------

#: Serial and cacheless: library calls behave exactly like direct
#: in-process simulation unless a caller opts into more.
_DEFAULT_RUNNER = ExperimentRunner(jobs=1, cache=None)
_active_runner = _DEFAULT_RUNNER


def get_runner() -> ExperimentRunner:
    """The runner experiment modules currently route through."""
    return _active_runner


def set_runner(runner: Optional[ExperimentRunner]) -> None:
    """Install ``runner`` globally (None restores the serial default)."""
    global _active_runner
    _active_runner = runner if runner is not None else _DEFAULT_RUNNER


@contextmanager
def using_runner(runner: ExperimentRunner) -> Iterator[ExperimentRunner]:
    """Scope ``runner`` as the active runner for a ``with`` block."""
    previous = _active_runner
    set_runner(runner)
    try:
        yield runner
    finally:
        set_runner(previous)


def run_requests(requests: Sequence[RunRequest]) -> List[RunResult]:
    """Run a batch through the active runner (convenience)."""
    return get_runner().map(requests)
