"""On-disk, content-addressed cache of serialized run results.

Layout: ``<directory>/<key[:2]>/<key>.json`` — one JSON document per
result, sharded by the first key byte so huge sweeps don't produce one
gigantic flat directory.  Writes are atomic (tempfile + rename), so a
crashed or concurrently-writing process can never leave a torn entry;
corrupt or format-incompatible entries read as misses and are simply
recomputed.

Invalidation is purely key-side: a key embeds the request *and* a
fingerprint of the simulator source (see :mod:`repro.runner.keys`), so
stale entries are never returned — they just linger until
``python -m repro cache clear`` removes them.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..sim.results import RunResult, result_from_dict, result_to_dict

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-heb``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-heb"


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of what the cache directory holds."""

    directory: str
    entries: int
    total_bytes: int


class ResultCache:
    """Maps cache keys (hex SHA-256) to serialized :class:`RunResult`."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or None (miss/corrupt entry)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return result_from_dict(payload)
        except (OSError, ValueError):
            return None

    def put(self, key: str, result: RunResult) -> None:
        """Store a result atomically under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(result_to_dict(result), sort_keys=True,
                             separators=(",", ":"))
        handle, tmp_name = tempfile.mkstemp(dir=path.parent,
                                            suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(payload)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        return self.stats().entries

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in self.directory.glob("??"):
            try:
                shard.rmdir()
            except OSError:
                pass  # non-empty (stray files) — leave it
        return removed

    def stats(self) -> CacheStats:
        """Entry count and total size on disk."""
        entries = 0
        total_bytes = 0
        for path in self.directory.glob("??/*.json"):
            try:
                total_bytes += path.stat().st_size
                entries += 1
            except OSError:
                pass
        return CacheStats(directory=str(self.directory), entries=entries,
                          total_bytes=total_bytes)
