"""Grouping compatible run requests onto the batched engine.

The runner's contract is per-request: content-addressed cache keys,
request-order results, bit-identical numbers.  This module preserves all
of that while routing *compatible* cache misses through one
:class:`~repro.sim.batch.BatchSimulation` tick loop instead of N scalar
loops:

* requests group by (duration, slot length) — the tick/slot grid the
  batched engine requires scenarios to share;
* fault-injected requests never batch (the injector's hook protocol is
  scalar-only) and run the scalar path unchanged;
* a group that still fails the engine's own compatibility validation
  (device banks, wide clusters, ...) falls back to per-request scalar
  execution inside the worker;
* singleton groups run the plain scalar path — batching is a grouping
  optimization, never a behaviour change.

Because batched results are exactly equal to scalar results per
scenario, cache entries written by either path are interchangeable.

Duplicate keys never reach :func:`plan_units`: the runner claims cache
misses per key before planning (see :meth:`ExperimentRunner.map`), so a
group cannot contain two lanes of the same request racing to write one
cache entry.  ``plan_units`` itself is deliberately duplicate-tolerant —
two identical requests would simply occupy two lanes and produce two
identical results — so callers that bypass the runner stay correct,
just not deduplicated.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..config import ControllerConfig
from ..errors import BatchCompatibilityError
from ..sim import RunResult
from ..sim.batch import BatchSimulation
from .request import RunRequest, build_simulation, execute_request

#: A work unit the (possibly multi-process) executor runs: either one
#: scalar request or one batched group.
ExecutionUnit = Tuple[str, Tuple[RunRequest, ...]]


def batchable(request: RunRequest) -> bool:
    """True when ``request`` may join a batched group at all."""
    return request.faults is None


def group_key(request: RunRequest) -> Tuple[float, float]:
    """The shared tick/slot grid a batched group must agree on."""
    controller = request.controller or ControllerConfig()
    return (request.setup.duration_h, controller.slot_seconds)


def plan_units(requests: Sequence[RunRequest],
               workers: int = 1) -> Tuple[List[ExecutionUnit],
                                          List[List[int]]]:
    """Partition ``requests`` into execution units.

    Returns ``(units, positions)`` where ``positions[i]`` lists, for
    unit ``i``, each member's index into ``requests`` (unit results are
    scattered back through it, so request order is preserved).

    With ``workers > 1`` groups are split into up to ``workers``
    contiguous chunks so batching composes with process parallelism
    instead of serializing it; chunking never changes any result.
    """
    groups: Dict[Tuple[float, float], List[int]] = {}
    singles: List[int] = []
    for index, request in enumerate(requests):
        if batchable(request):
            groups.setdefault(group_key(request), []).append(index)
        else:
            singles.append(index)

    units: List[ExecutionUnit] = []
    positions: List[List[int]] = []

    def emit(kind: str, indices: List[int]) -> None:
        units.append((kind, tuple(requests[i] for i in indices)))
        positions.append(indices)

    for indices in groups.values():
        if len(indices) < 2:
            singles.extend(indices)
            continue
        chunk = max(2, math.ceil(len(indices) / max(1, workers)))
        for start in range(0, len(indices), chunk):
            part = indices[start:start + chunk]
            if len(part) < 2:
                singles.extend(part)
            else:
                emit("group", part)
    for index in singles:
        emit("single", [index])
    return units, positions


def execute_request_group(requests: Sequence[RunRequest]
                          ) -> List[RunResult]:
    """Execute a compatible group through one batched tick loop.

    Falls back to per-request scalar execution when the batched engine
    rejects the group; either way results align with ``requests`` and
    are exactly what :func:`execute_request` would have produced.
    """
    try:
        batch = BatchSimulation([build_simulation(request)
                                 for request in requests])
    except BatchCompatibilityError:
        return [execute_request(request) for request in requests]
    return batch.run_all()


def execute_unit(unit: ExecutionUnit) -> List[RunResult]:
    """Top-level (picklable) entry point for pool workers."""
    kind, payload = unit
    if kind == "single":
        return [execute_request(payload[0])]
    return execute_request_group(payload)


__all__ = [
    "ExecutionUnit",
    "batchable",
    "execute_request_group",
    "execute_unit",
    "group_key",
    "plan_units",
]
