"""The unit of work the experiment runner schedules: one simulation run.

A :class:`RunRequest` is a frozen, picklable description of one
(scheme, workload, setup) simulation — everything :func:`execute_request`
needs to rebuild the run from scratch in any process.  Because requests
are pure data, the same request always produces the same
:class:`~repro.sim.RunResult` regardless of which process executes it,
which is what lets the runner fan work out over a process pool and reuse
cached results: the request's canonical form is the cache key.

:class:`ExperimentSetup` lives here (re-exported by
``repro.experiments``) so the experiment modules can depend on the
runner without an import cycle.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..config import (
    ClusterConfig,
    ControllerConfig,
    HybridBufferConfig,
    prototype_buffer,
    prototype_cluster,
)
from ..core import make_policy
from ..errors import ConfigurationError
from ..faults import FaultInjector, FaultSchedule
from ..sim import HybridBuffers, RunResult, Simulation
from ..units import hours
from ..workloads import generate_solar_trace, get_workload
from ..workloads.solar import SolarConfig

#: The solar array the renewable panels default to: 520 W rated —
#: comfortably above the prototype cluster's demand so deep valleys (big
#: surpluses) occur, the regime where battery charge-current limits
#: throttle REU (Section 2.2).
DEFAULT_RENEWABLE_SOLAR = SolarConfig(rated_power_w=520.0,
                                      cloud_attenuation=0.15,
                                      mean_cloud_s=700.0,
                                      mean_clear_s=900.0)


@dataclass(frozen=True)
class ExperimentSetup:
    """A standard prototype-style experiment configuration.

    Attributes:
        duration_h: Simulated hours per (scheme, workload) run.
        budget_w: Utility budget; None keeps the prototype's 260 W.
        seed: Workload RNG seed.
        sc_fraction: SC share of installed buffer capacity.
        total_energy_wh: Installed buffer capacity.
        battery_dod / sc_dod: Optional depth-of-discharge overrides
            (the Section 7.5 capacity knob).
    """

    duration_h: float = 4.0
    budget_w: Optional[float] = None
    seed: int = 1
    sc_fraction: float = 0.3
    total_energy_wh: float = 150.0
    battery_dod: Optional[float] = None
    sc_dod: Optional[float] = None

    def cluster(self) -> ClusterConfig:
        config = prototype_cluster()
        if self.budget_w is not None:
            config = dataclasses.replace(config,
                                         utility_budget_w=self.budget_w)
        return config

    def hybrid(self) -> HybridBufferConfig:
        return prototype_buffer(sc_fraction=self.sc_fraction,
                                total_energy_wh=self.total_energy_wh)


@dataclass(frozen=True)
class RunRequest:
    """One independent simulation run, as pure data.

    Attributes:
        scheme: A Table 2 policy name ("BaOnly" ... "HEB-D").
        workload: A Table 1 workload abbreviation.
        setup: Cluster/buffer sizing, duration, and seed.
        controller: Optional hControl override.
        renewable: Solar-fed run (REU panel) instead of a utility budget.
        solar: PV array parameters; defaults to
            :data:`DEFAULT_RENEWABLE_SOLAR` when ``renewable`` is set.
        start_hour: Time of day the solar trace starts at.
        policy_sc_fraction / policy_total_wh: Optional *policy view* of
            the buffers differing from the physical hardware — the
            Figure 13 trick of carving usable m:n ratios out of fixed
            hardware with DoD caps while the pilot profile sees only the
            usable capacities.
        faults: Optional :class:`~repro.faults.FaultSchedule` injected
            into the run.  A schedule is pure frozen data, so fault
            scenarios are content-addressed and cacheable like any other
            request; ``None`` and an *empty* schedule both execute the
            exact fault-free path (bit-identical results).
    """

    scheme: str
    workload: str
    setup: ExperimentSetup = ExperimentSetup()
    controller: Optional[ControllerConfig] = None
    renewable: bool = False
    solar: Optional[SolarConfig] = None
    start_hour: float = 8.0
    policy_sc_fraction: Optional[float] = None
    policy_total_wh: Optional[float] = None
    faults: Optional[FaultSchedule] = None

    def __post_init__(self) -> None:
        if self.solar is not None and not self.renewable:
            raise ConfigurationError(
                "a solar supply requires renewable=True")
        if self.renewable and self.solar is None:
            object.__setattr__(self, "solar", DEFAULT_RENEWABLE_SOLAR)
        # An empty schedule injects nothing; canonicalize it to None so
        # the cache key (and the execution path) is identical to a
        # request that never mentioned faults.
        if self.faults is not None and self.faults.is_empty:
            object.__setattr__(self, "faults", None)


def build_simulation(request: RunRequest, profiler=None) -> Simulation:
    """Construct the fully-wired :class:`Simulation` for one request.

    Shared by :func:`execute_request` (which runs it) and the batched
    runner (which hands a list of them to
    :class:`~repro.sim.batch.BatchSimulation`), so both paths simulate
    the exact same object graph.
    """
    setup = request.setup
    cluster = setup.cluster()
    hybrid = setup.hybrid()
    duration_s = hours(setup.duration_h)
    trace = get_workload(request.workload, duration_s=duration_s,
                         num_servers=cluster.num_servers,
                         server=cluster.server, seed=setup.seed)

    if (request.policy_sc_fraction is not None
            or request.policy_total_wh is not None):
        policy_view = prototype_buffer(
            sc_fraction=(request.policy_sc_fraction
                         if request.policy_sc_fraction is not None
                         else setup.sc_fraction),
            total_energy_wh=(request.policy_total_wh
                             if request.policy_total_wh is not None
                             else setup.total_energy_wh))
    else:
        policy_view = hybrid
    policy = make_policy(request.scheme, hybrid=policy_view,
                         controller=request.controller)

    buffers = HybridBuffers(hybrid,
                            include_sc=request.scheme.lower() != "baonly",
                            battery_dod=setup.battery_dod,
                            sc_dod=setup.sc_dod)

    # Injectors carry per-run state (applied steps, downtime buckets), so
    # each execution builds a fresh one from the frozen schedule.
    injector = (FaultInjector(request.faults)
                if request.faults is not None else None)

    if request.renewable:
        supply = generate_solar_trace(duration_s, config=request.solar,
                                      seed=setup.seed,
                                      start_time_s=hours(request.start_hour))
        return Simulation(trace, policy, buffers,
                          cluster_config=cluster,
                          controller_config=request.controller,
                          supply=supply, renewable=True,
                          profiler=profiler, injector=injector)
    return Simulation(trace, policy, buffers,
                      cluster_config=cluster,
                      controller_config=request.controller,
                      profiler=profiler, injector=injector)


def execute_request(request: RunRequest, profiler=None) -> RunResult:
    """Run one request to completion (pure function of the request).

    This is the single execution path behind ``run_scheme``,
    ``run_renewable``, and every figure grid — serial and parallel runs
    share it, so they are bit-for-bit identical.

    Args:
        request: The run to execute.
        profiler: Optional ``repro.perf.TickProfiler``; when given, the
            engine times its tick phases and attaches a
            :class:`~repro.perf.PerfReport` to ``RunResult.perf``.
            Profiling never changes the simulated numbers.
    """
    return build_simulation(request, profiler=profiler).run()
