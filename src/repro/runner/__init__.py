"""Parallel, cache-aware experiment runner.

The evaluation grid (schemes x workloads x panels) is embarrassingly
parallel; this package fans it out over worker processes and memoizes
results on disk keyed by request content + code version:

    from repro.runner import ExperimentRunner, ResultCache, using_runner
    from repro.experiments import run_fig12

    runner = ExperimentRunner(jobs=4, cache=ResultCache("~/.cache/repro"))
    with using_runner(runner):
        results = run_fig12(duration_h=1.0)   # parallel + cached

See ``docs/runner.md`` for the cache layout and invalidation rules.
"""

from .batch import (
    batchable,
    execute_request_group,
    group_key,
    plan_units,
)
from .cache import CACHE_DIR_ENV, CacheStats, ResultCache, default_cache_dir
from .keys import cache_key, canonical_json, code_fingerprint, freeze
from .request import (
    DEFAULT_RENEWABLE_SOLAR,
    ExperimentSetup,
    RunRequest,
    build_simulation,
    execute_request,
)
from .runner import (
    ExperimentRunner,
    get_runner,
    run_requests,
    set_runner,
    using_runner,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CacheStats",
    "DEFAULT_RENEWABLE_SOLAR",
    "ExperimentRunner",
    "ExperimentSetup",
    "ResultCache",
    "RunRequest",
    "batchable",
    "build_simulation",
    "cache_key",
    "canonical_json",
    "code_fingerprint",
    "default_cache_dir",
    "execute_request",
    "execute_request_group",
    "freeze",
    "get_runner",
    "group_key",
    "plan_units",
    "run_requests",
    "set_runner",
    "using_runner",
]
