"""Content-addressed cache keys for experiment runs.

A key is the SHA-256 of the canonical JSON of two things:

* the frozen :class:`~repro.runner.request.RunRequest` — every dataclass
  (setup, controller, solar config) flattened to tagged dicts with
  sorted keys, so field order and nesting cannot perturb the digest; and
* a *code fingerprint* — a digest over every ``repro`` source file, so
  any change to the simulator invalidates all previous results.

Keys are therefore stable across processes, machines, and Python
versions (floats serialize via their shortest round-trip repr), and two
requests collide only if they describe the same computation run by the
same code.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any


def freeze(value: Any) -> Any:
    """Convert a request (or any nested dataclass) to canonical data.

    Dataclasses become dicts tagged with their class name, tuples become
    lists, and dict keys are stringified; everything else must already be
    JSON-compatible.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        frozen: Any = {
            field.name: freeze(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        frozen["__dataclass__"] = type(value).__name__
        return frozen
    if isinstance(value, dict):
        return {str(key): freeze(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [freeze(item) for item in value]
    return value


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(freeze(value), sort_keys=True,
                      separators=(",", ":"))


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every .py file of the installed ``repro`` package.

    Computed once per process; editing any source file changes the
    fingerprint and thereby invalidates every cached result.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def cache_key(request: Any) -> str:
    """The content address of one request's result (hex SHA-256)."""
    payload = canonical_json({
        "code": code_fingerprint(),
        "request": request,
    })
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
