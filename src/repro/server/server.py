"""A single dual-corded server: power states and downtime accounting."""

from __future__ import annotations

import enum
from typing import Callable, Optional

from ..config import ServerConfig
from ..errors import SimulationError


class ServerState(enum.Enum):
    """Operational state of a server."""

    ON = "on"
    OFF = "off"
    RESTARTING = "restarting"


class PowerSource(enum.Enum):
    """Which feed a server's relay currently selects (Figure 8a)."""

    UTILITY = "utility"
    SUPERCAP = "supercap"
    BATTERY = "battery"
    NONE = "none"


class Server:
    """One prototype node with dual-corded supply and restart cost.

    The paper's servers are dual-corded: "one is from the energy storage
    source and one is from the utility power via IPDU".  The relay fabric
    switches each server between feeds; switching is assumed lossless and
    instantaneous (two-way relays), but *turning a server off is not free*:
    rebooting wastes :attr:`ServerConfig.restart_energy_j` and keeps the
    node unavailable for :attr:`ServerConfig.restart_duration_s`.
    """

    def __init__(self, config: ServerConfig, server_id: int) -> None:
        self.config = config
        self.server_id = server_id
        self.state = ServerState.ON
        self.source = PowerSource.UTILITY
        self.downtime_s = 0.0
        self.restart_count = 0
        self.restart_energy_used_j = 0.0
        self.last_active_s = 0.0
        self._restart_remaining_s = 0.0
        #: Invoked after every state transition; a cluster installs its
        #: cache-invalidation hook here so its vectorized views (masks,
        #: fast-path flags) never go stale, even when tests flip server
        #: state directly.
        self.state_listener: Optional[Callable[[], None]] = None

    def _notify_state_change(self) -> None:
        listener = self.state_listener
        if listener is not None:
            listener()

    @property
    def is_available(self) -> bool:
        """True when the server is serving load (not off or rebooting)."""
        return self.state is ServerState.ON

    def draw_w(self, demand_w: float) -> float:
        """Actual power drawn given the workload's demand.

        An OFF server draws nothing.  A RESTARTING server draws its restart
        power (restart energy spread over the restart duration) but serves
        no load.
        """
        if demand_w < 0:
            raise SimulationError(
                f"server {self.server_id}: negative demand {demand_w!r}")
        if self.state is ServerState.OFF:
            return 0.0
        if self.state is ServerState.RESTARTING:
            if self.config.restart_duration_s <= 0:
                return 0.0
            return self.config.restart_energy_j / self.config.restart_duration_s
        return demand_w

    def shut_down(self) -> None:
        """Power the server off (a downtime event begins)."""
        self.state = ServerState.OFF
        self.source = PowerSource.NONE
        self._notify_state_change()

    def begin_restart(self) -> None:
        """Start rebooting an OFF server."""
        if self.state is not ServerState.OFF:
            raise SimulationError(
                f"server {self.server_id}: restart requested in state "
                f"{self.state}")
        self.state = ServerState.RESTARTING
        self.source = PowerSource.UTILITY
        self.restart_count += 1
        self._restart_remaining_s = self.config.restart_duration_s
        self._notify_state_change()

    def tick(self, dt: float, now_s: float, demand_w: float) -> None:
        """Advance bookkeeping by one simulation step.

        Accumulates downtime while unavailable, advances restart progress,
        and refreshes the LRU timestamp while the server is doing real work
        (demand above idle; an idle server is the natural LRU victim).
        """
        if dt <= 0:
            raise SimulationError("dt must be positive")
        if self.state is ServerState.OFF:
            self.downtime_s += dt
            return
        if self.state is ServerState.RESTARTING:
            self.downtime_s += dt
            self.restart_energy_used_j += self.draw_w(0.0) * dt
            self._restart_remaining_s -= dt
            if self._restart_remaining_s <= 0:
                self.state = ServerState.ON
                self._restart_remaining_s = 0.0
                self._notify_state_change()
            return
        if demand_w > self.config.idle_power_w * 1.05:
            self.last_active_s = now_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Server {self.server_id} {self.state.value} "
                f"src={self.source.value} down={self.downtime_s:.0f}s>")
