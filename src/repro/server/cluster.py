"""The server cluster: assignment, LRU shutdown, downtime accounting.

The cluster is the engine's hottest data structure: every simulated tick
reads per-server draws and the availability mask.  Both are served from
cached NumPy state that is invalidated only on actual state transitions
(shutdown, restart begin/end), so the steady state — every server ON —
costs a couple of array operations per tick instead of per-server
Python calls.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..config import ClusterConfig
from ..errors import SimulationError
from .server import PowerSource, Server, ServerState


class ServerCluster:
    """Six (by default) dual-corded servers behind an IPDU.

    The cluster exposes exactly the operations the hControl performs on the
    prototype: read per-server demands, switch relays (assign sources),
    shut down least-recently-used servers when the buffers cannot shave a
    peak (Section 7.2), and restart them once power allows.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.servers: List[Server] = []
        # A server busier than this refreshes its LRU timestamp.
        self._busy_threshold_w = config.server.idle_power_w * 1.05
        if config.server.restart_duration_s > 0:
            self._restart_draw_w = (config.server.restart_energy_j
                                    / config.server.restart_duration_s)
        else:
            self._restart_draw_w = 0.0
        self._version = 0
        self._state_dirty = True
        self._powered_mask = np.ones(config.num_servers, dtype=bool)
        self._off_indices = np.empty(0, dtype=np.intp)
        self._restarting_indices = np.empty(0, dtype=np.intp)
        self._all_on = True
        self.reset()

    # ------------------------------------------------------------------
    # Cached vectorized state
    # ------------------------------------------------------------------

    def _mark_state_dirty(self) -> None:
        self._state_dirty = True
        self._version += 1

    def _refresh_state(self) -> None:
        states = [s.state for s in self.servers]
        self._off_indices = np.array(
            [i for i, state in enumerate(states)
             if state is ServerState.OFF], dtype=np.intp)
        self._restarting_indices = np.array(
            [i for i, state in enumerate(states)
             if state is ServerState.RESTARTING], dtype=np.intp)
        mask = np.ones(len(states), dtype=bool)
        mask[self._off_indices] = False
        mask.setflags(write=False)
        self._powered_mask = mask
        self._all_on = (self._off_indices.size == 0
                        and self._restarting_indices.size == 0)
        self._state_dirty = False

    @property
    def version(self) -> int:
        """Monotone counter bumped on every server state transition.

        The engine keys its skip-unchanged-relay-plan fast path on this,
        so any shutdown/restart forces a re-apply of sources and relays.
        """
        if self._state_dirty:
            self._refresh_state()
        return self._version

    @property
    def all_on(self) -> bool:
        """True when every server is ON (the steady-state fast path)."""
        if self._state_dirty:
            self._refresh_state()
        return self._all_on

    @property
    def num_off(self) -> int:
        """How many servers are currently OFF."""
        if self._state_dirty:
            self._refresh_state()
        return int(self._off_indices.size)

    def powered_mask(self) -> np.ndarray:
        """Read-only boolean mask of servers that are not OFF.

        This is the engine's per-tick availability mask (RESTARTING
        servers still draw power and are therefore "powered").
        """
        if self._state_dirty:
            self._refresh_state()
        return self._powered_mask

    def off_indices(self) -> np.ndarray:
        """Indices of OFF servers (read-only, cached)."""
        if self._state_dirty:
            self._refresh_state()
        return self._off_indices

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    def available_servers(self) -> List[Server]:
        """Servers currently serving load."""
        return [s for s in self.servers if s.is_available]

    def offline_servers(self) -> List[Server]:
        """Servers currently off (candidates for restart)."""
        return [s for s in self.servers if s.state is ServerState.OFF]

    def total_downtime_s(self) -> float:
        """Aggregate downtime across all servers — the paper's SD metric."""
        return sum(s.downtime_s for s in self.servers)

    def total_restart_energy_j(self) -> float:
        """Energy wasted on off/on cycles so far."""
        return sum(s.restart_energy_used_j for s in self.servers)

    def total_restarts(self) -> int:
        return sum(s.restart_count for s in self.servers)

    def draw_array(self, demands_w: np.ndarray) -> np.ndarray:
        """Actual per-server draws for a validated demand array.

        The engine's per-tick entry point: with every server ON the
        demands *are* the draws and the input array is returned as-is
        (callers treat it as read-only); otherwise OFF servers read zero
        and RESTARTING servers read their restart power.
        """
        if self._state_dirty:
            self._refresh_state()
        if self._all_on:
            return demands_w
        draws = np.array(demands_w, dtype=float)
        if self._off_indices.size:
            draws[self._off_indices] = 0.0
        if self._restarting_indices.size:
            draws[self._restarting_indices] = self._restart_draw_w
        return draws

    def draws_w(self, demands_w: Sequence[float]) -> np.ndarray:
        """Actual per-server draws given workload demands."""
        if len(demands_w) != self.num_servers:
            raise SimulationError(
                f"expected {self.num_servers} demands, got {len(demands_w)}")
        demands = np.array(demands_w, dtype=float)
        if np.any(demands < 0):
            index = int(np.argmax(demands < 0))
            raise SimulationError(
                f"server {index}: negative demand {float(demands[index])!r}")
        draws = self.draw_array(demands)
        return draws

    def draws_by_source(self, demands_w: Sequence[float]
                        ) -> Dict[PowerSource, float]:
        """Aggregate actual draw grouped by the selected feed."""
        draws = self.draws_w(demands_w)
        totals: Dict[PowerSource, float] = {
            source: 0.0 for source in PowerSource}
        for server, draw in zip(self.servers, draws):
            totals[server.source] += float(draw)
        return totals

    # ------------------------------------------------------------------
    # Relay control
    # ------------------------------------------------------------------

    def assign_sources(self, sources: Sequence[PowerSource]) -> None:
        """Switch every available server's relay in one operation."""
        if len(sources) != self.num_servers:
            raise SimulationError(
                f"expected {self.num_servers} sources, got {len(sources)}")
        for server, source in zip(self.servers, sources):
            if server.state is not ServerState.OFF:
                server.source = source

    def assign_all(self, source: PowerSource) -> None:
        """Switch every available server to one feed."""
        for server in self.servers:
            if server.is_available:
                server.source = source

    # ------------------------------------------------------------------
    # Shutdown / restart
    # ------------------------------------------------------------------

    def shed_lru(self, power_needed_w: float,
                 demands_w: Sequence[float],
                 from_sources: Sequence[PowerSource] | None = None,
                 ) -> List[Server]:
        """Shut down least-recently-used servers to free ``power_needed_w``.

        Mirrors Section 7.2: "We chose the least recently used servers to
        shut down when we have to."  Only servers currently drawing from
        ``from_sources`` (default: any) are candidates; candidates are
        shed in ascending ``last_active_s`` order until the freed power
        covers the shortfall.

        Returns:
            The servers that were shut down.
        """
        if power_needed_w <= 0:
            return []
        candidates = [
            s for s in self.available_servers()
            if from_sources is None or s.source in from_sources]
        candidates.sort(key=lambda s: (s.last_active_s, s.server_id))
        shed: List[Server] = []
        freed = 0.0
        for server in candidates:
            if freed >= power_needed_w - 1e-9:
                break
            freed += float(demands_w[server.server_id])
            server.shut_down()
            shed.append(server)
        return shed

    def restart_offline(self, available_power_w: float) -> List[Server]:
        """Begin restarting OFF servers that fit in the power headroom.

        Servers restart in server-id order; each consumes its restart power
        for the restart duration before serving load again.
        """
        restarted: List[Server] = []
        budget = available_power_w
        for server in self.offline_servers():
            restart_power = server.draw_w(0.0)
            if server.config.restart_duration_s > 0:
                restart_power = (server.config.restart_energy_j
                                 / server.config.restart_duration_s)
            needed = max(restart_power, server.config.idle_power_w)
            if needed <= budget:
                server.begin_restart()
                budget -= needed
                restarted.append(server)
        return restarted

    def tick(self, dt: float, now_s: float,
             demands_w: Sequence[float]) -> None:
        """Advance every server's bookkeeping by one step."""
        if dt <= 0:
            raise SimulationError("dt must be positive")
        if self._state_dirty:
            self._refresh_state()
        if self._all_on and isinstance(demands_w, np.ndarray):
            # Steady state: nobody accumulates downtime or restart
            # progress; only the LRU timestamps of busy servers move.
            servers = self.servers
            threshold = self._busy_threshold_w
            for index, demand in enumerate(demands_w.tolist()):
                if demand > threshold:
                    servers[index].last_active_s = now_s
            return
        for server, demand in zip(self.servers, demands_w):
            server.tick(dt, now_s, float(demand))

    def reset(self) -> None:
        """Fresh servers (all ON, on utility, zero counters)."""
        self.servers = [Server(self.config.server, server_id=i)
                        for i in range(self.config.num_servers)]
        for server in self.servers:
            server.state_listener = self._mark_state_dirty
        self._mark_state_dirty()
