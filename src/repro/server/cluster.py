"""The server cluster: assignment, LRU shutdown, downtime accounting."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..config import ClusterConfig
from ..errors import SimulationError
from .server import PowerSource, Server, ServerState


class ServerCluster:
    """Six (by default) dual-corded servers behind an IPDU.

    The cluster exposes exactly the operations the hControl performs on the
    prototype: read per-server demands, switch relays (assign sources),
    shut down least-recently-used servers when the buffers cannot shave a
    peak (Section 7.2), and restart them once power allows.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.servers: List[Server] = [
            Server(config.server, server_id=i)
            for i in range(config.num_servers)]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    def available_servers(self) -> List[Server]:
        """Servers currently serving load."""
        return [s for s in self.servers if s.is_available]

    def offline_servers(self) -> List[Server]:
        """Servers currently off (candidates for restart)."""
        return [s for s in self.servers if s.state is ServerState.OFF]

    def total_downtime_s(self) -> float:
        """Aggregate downtime across all servers — the paper's SD metric."""
        return sum(s.downtime_s for s in self.servers)

    def total_restart_energy_j(self) -> float:
        """Energy wasted on off/on cycles so far."""
        return sum(s.restart_energy_used_j for s in self.servers)

    def total_restarts(self) -> int:
        return sum(s.restart_count for s in self.servers)

    def draws_w(self, demands_w: Sequence[float]) -> np.ndarray:
        """Actual per-server draws given workload demands."""
        if len(demands_w) != self.num_servers:
            raise SimulationError(
                f"expected {self.num_servers} demands, got {len(demands_w)}")
        return np.array([server.draw_w(demand)
                         for server, demand in zip(self.servers, demands_w)])

    def draws_by_source(self, demands_w: Sequence[float]
                        ) -> Dict[PowerSource, float]:
        """Aggregate actual draw grouped by the selected feed."""
        draws = self.draws_w(demands_w)
        totals: Dict[PowerSource, float] = {
            source: 0.0 for source in PowerSource}
        for server, draw in zip(self.servers, draws):
            totals[server.source] += float(draw)
        return totals

    # ------------------------------------------------------------------
    # Relay control
    # ------------------------------------------------------------------

    def assign_sources(self, sources: Sequence[PowerSource]) -> None:
        """Switch every available server's relay in one operation."""
        if len(sources) != self.num_servers:
            raise SimulationError(
                f"expected {self.num_servers} sources, got {len(sources)}")
        for server, source in zip(self.servers, sources):
            if server.state is not ServerState.OFF:
                server.source = source

    def assign_all(self, source: PowerSource) -> None:
        """Switch every available server to one feed."""
        for server in self.servers:
            if server.is_available:
                server.source = source

    # ------------------------------------------------------------------
    # Shutdown / restart
    # ------------------------------------------------------------------

    def shed_lru(self, power_needed_w: float,
                 demands_w: Sequence[float],
                 from_sources: Sequence[PowerSource] | None = None,
                 ) -> List[Server]:
        """Shut down least-recently-used servers to free ``power_needed_w``.

        Mirrors Section 7.2: "We chose the least recently used servers to
        shut down when we have to."  Only servers currently drawing from
        ``from_sources`` (default: any) are candidates; candidates are
        shed in ascending ``last_active_s`` order until the freed power
        covers the shortfall.

        Returns:
            The servers that were shut down.
        """
        if power_needed_w <= 0:
            return []
        candidates = [
            s for s in self.available_servers()
            if from_sources is None or s.source in from_sources]
        candidates.sort(key=lambda s: (s.last_active_s, s.server_id))
        shed: List[Server] = []
        freed = 0.0
        for server in candidates:
            if freed >= power_needed_w - 1e-9:
                break
            freed += float(demands_w[server.server_id])
            server.shut_down()
            shed.append(server)
        return shed

    def restart_offline(self, available_power_w: float) -> List[Server]:
        """Begin restarting OFF servers that fit in the power headroom.

        Servers restart in server-id order; each consumes its restart power
        for the restart duration before serving load again.
        """
        restarted: List[Server] = []
        budget = available_power_w
        for server in self.offline_servers():
            restart_power = server.draw_w(0.0)
            if server.config.restart_duration_s > 0:
                restart_power = (server.config.restart_energy_j
                                 / server.config.restart_duration_s)
            needed = max(restart_power, server.config.idle_power_w)
            if needed <= budget:
                server.begin_restart()
                budget -= needed
                restarted.append(server)
        return restarted

    def tick(self, dt: float, now_s: float,
             demands_w: Sequence[float]) -> None:
        """Advance every server's bookkeeping by one step."""
        for server, demand in zip(self.servers, demands_w):
            server.tick(dt, now_s, float(demand))

    def reset(self) -> None:
        """Fresh servers (all ON, on utility, zero counters)."""
        self.servers = [Server(self.config.server, server_id=i)
                        for i in range(self.config.num_servers)]
