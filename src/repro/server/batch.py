"""Lane-parallel server-cluster state for the batched engine.

:class:`BatchCluster` carries N independent clusters as (lanes, servers)
arrays and advances them with the exact per-server semantics of
:class:`~repro.server.cluster.ServerCluster` /
:class:`~repro.server.server.Server`.  States and sources are small int8
codes; the rare divergent operations (LRU shedding, restarts) run as
per-lane Python over only the lanes that need them, accumulating in the
same sequential order as the scalar methods.

All lanes must share one :class:`~repro.config.ServerConfig` (validated
by the batch simulation), so the busy threshold and restart constants
are plain Python floats — per-lane arrays would buy nothing.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..config import ServerConfig

# Server-state codes (order matters nowhere; values are arbitrary).
STATE_ON = 0
STATE_OFF = 1
STATE_RESTARTING = 2

# Power-source codes, shared with the batch scheduler and relay fabric.
SOURCE_UTILITY = 0
SOURCE_SUPERCAP = 1
SOURCE_BATTERY = 2
SOURCE_NONE = 3


class BatchCluster:
    """N server clusters advanced in lockstep.

    Args:
        n: Number of scenario lanes.
        num_servers: Servers per cluster (equal across lanes).
        server: The shared per-server configuration.
    """

    def __init__(self, n: int, num_servers: int,
                 server: ServerConfig) -> None:
        self.n = n
        self.num_servers = num_servers
        self.server_config = server
        self.busy_threshold_w = server.idle_power_w * 1.05
        if server.restart_duration_s > 0:
            self.restart_draw_w = (server.restart_energy_j
                                   / server.restart_duration_s)
        else:
            self.restart_draw_w = 0.0
        self.restart_duration_s = server.restart_duration_s
        self.idle_power_w = server.idle_power_w

        shape = (n, num_servers)
        self.state = np.full(shape, STATE_ON, dtype=np.int8)
        self.source = np.full(shape, SOURCE_UTILITY, dtype=np.int8)
        self.last_active_s = np.zeros(shape)
        self.downtime_s = np.zeros(shape)
        self.restart_remaining_s = np.zeros(shape)
        self.restart_count = np.zeros(shape, dtype=np.int64)
        self.restart_energy_used_j = np.zeros(shape)
        # Steady-state flag: True while every server in every lane is ON,
        # which lets the tick loop skip all divergence handling.
        self._all_on = True

    # -- cached views ---------------------------------------------------

    @property
    def all_on(self) -> bool:
        return self._all_on

    def _refresh_all_on(self) -> None:
        self._all_on = not (self.state != STATE_ON).any()

    def powered_mask(self) -> np.ndarray:
        """(lanes, servers) mask of servers that are not OFF."""
        return self.state != STATE_OFF

    def off_mask(self) -> np.ndarray:
        return self.state == STATE_OFF

    def num_off(self) -> np.ndarray:
        """(lanes,) count of OFF servers."""
        return np.count_nonzero(self.state == STATE_OFF, axis=1)

    def draw_array(self, demands_w: np.ndarray) -> np.ndarray:
        """Per-server draws for a (lanes, servers) demand slice.

        With every server ON the demands are the draws and the input is
        returned as-is (callers treat it as read-only) — the same values
        the scalar fast path yields per lane.
        """
        if self._all_on:
            return demands_w
        return np.where(
            self.state == STATE_OFF, 0.0,
            np.where(self.state == STATE_RESTARTING,
                     self.restart_draw_w, demands_w))

    # -- relay control --------------------------------------------------

    def assign_sources(self, sources: np.ndarray) -> None:
        """Apply a (lanes, servers) source-code plan; OFF servers keep
        their NONE source, exactly like the scalar guard.

        With every server ON the plan is adopted by reference — it may
        be the scheduler's shared read-only template, so the mutating
        shed/restart paths copy-on-write first.
        """
        if self._all_on:
            self.source = sources
            return
        self.source = np.where(self.state == STATE_OFF,
                               self.source, sources).astype(np.int8)

    def _own_source(self) -> None:
        """Ensure ``source`` is a private writable array before mutating."""
        if not self.source.flags.writeable:
            self.source = self.source.copy()

    # -- shutdown / restart (per-lane divergent paths) ------------------

    def shed_lru_lane(self, lane: int, power_needed_w: float,
                      demands_w: np.ndarray,
                      from_sources: Tuple[int, ...]) -> List[int]:
        """Scalar ``ServerCluster.shed_lru`` for one lane.

        Returns the shed server ids in shed order (the caller re-sums
        their draws exactly as the engine does).
        """
        if power_needed_w <= 0:
            return []
        self._own_source()
        state_row = self.state[lane]
        source_row = self.source[lane]
        last_row = self.last_active_s[lane]
        candidates = [
            sid for sid in range(self.num_servers)
            if state_row[sid] == STATE_ON and source_row[sid] in from_sources]
        candidates.sort(key=lambda sid: (last_row[sid], sid))
        shed: List[int] = []
        freed = 0.0
        for sid in candidates:  # repro: noqa[RPR502] per-lane LRU shed replicates the scalar sequential accumulation
            if freed >= power_needed_w - 1e-9:
                break
            freed += float(demands_w[lane, sid])
            state_row[sid] = STATE_OFF  # repro: noqa[RPR403] invalidated two lines down: any shed clears _all_on
            source_row[sid] = SOURCE_NONE  # repro: noqa[RPR403] source backs no cache; _own_source() already copied the shared template
            shed.append(sid)
        if shed:
            self._all_on = False
        return shed

    def restart_offline_lane(self, lane: int,
                             available_power_w: float) -> List[float]:
        """Scalar ``ServerCluster.restart_offline`` for one lane.

        Returns the ``needed`` power of each restarted server in restart
        order; the caller subtracts them from its headroom sequentially,
        mirroring the engine's separate post-restart deduction.
        """
        self._own_source()
        state_row = self.state[lane]
        source_row = self.source[lane]
        needed_list: List[float] = []
        budget = available_power_w
        for sid in range(self.num_servers):  # repro: noqa[RPR502] per-lane restart scan replicates the scalar sequential budget deduction
            if state_row[sid] != STATE_OFF:
                continue
            restart_power = (self.restart_draw_w
                             if self.restart_duration_s > 0 else 0.0)
            needed = max(restart_power, self.idle_power_w)
            if needed <= budget:
                state_row[sid] = STATE_RESTARTING  # repro: noqa[RPR403] OFF->RESTARTING only; _all_on is already False while any server is OFF, and tick() refreshes on completion
                source_row[sid] = SOURCE_UTILITY  # repro: noqa[RPR403] source backs no cache; _own_source() already copied the shared template
                self.restart_count[lane, sid] += 1  # repro: noqa[RPR403] plain per-lane counter, not cache-backing state; nothing memoizes over it
                self.restart_remaining_s[lane, sid] = self.restart_duration_s
                budget -= needed
                needed_list.append(needed)
        return needed_list

    # -- per-tick bookkeeping -------------------------------------------

    def tick(self, dt: float, now_s: float,
             demands_w: np.ndarray) -> None:
        """Advance every server's bookkeeping by one step.

        ``demands_w`` holds the workload demands (not draws), exactly
        what the engine hands the scalar ``ServerCluster.tick``.
        """
        if self._all_on:
            # Every server is ON: the state check is vacuous and the
            # LRU timestamps update in place.
            np.copyto(self.last_active_s, now_s,
                      where=demands_w > self.busy_threshold_w)
            return
        busy = ((self.state == STATE_ON)
                & (demands_w > self.busy_threshold_w))
        self.last_active_s = np.where(busy, now_s, self.last_active_s)
        off = self.state == STATE_OFF
        restarting = self.state == STATE_RESTARTING
        down = off | restarting
        self.downtime_s = np.where(down, self.downtime_s + dt,
                                   self.downtime_s)
        self.restart_energy_used_j = np.where(
            restarting,
            self.restart_energy_used_j + self.restart_draw_w * dt,
            self.restart_energy_used_j)
        self.restart_remaining_s = np.where(
            restarting, self.restart_remaining_s - dt,
            self.restart_remaining_s)
        done = restarting & (self.restart_remaining_s <= 0)
        if done.any():
            self.state = np.where(done, STATE_ON, self.state).astype(np.int8)
            self.restart_remaining_s = np.where(
                done, 0.0, self.restart_remaining_s)
            self._refresh_all_on()

    # -- per-lane reporting ---------------------------------------------

    def total_downtime_lane(self, lane: int) -> float:
        """Sequential per-server downtime sum for one lane."""
        total = 0.0
        row = self.downtime_s[lane]
        for sid in range(self.num_servers):  # repro: noqa[RPR502] index-order accumulation matches the scalar sum()
            total += float(row[sid])
        return total

    def total_restart_energy_lane(self, lane: int) -> float:
        total = 0.0
        row = self.restart_energy_used_j[lane]
        for sid in range(self.num_servers):  # repro: noqa[RPR502] index-order accumulation matches the scalar sum()
            total += float(row[sid])
        return total

    def total_restarts_lane(self, lane: int) -> int:
        return int(self.restart_count[lane].sum())


__all__ = [
    "BatchCluster",
    "SOURCE_BATTERY",
    "SOURCE_NONE",
    "SOURCE_SUPERCAP",
    "SOURCE_UTILITY",
    "STATE_OFF",
    "STATE_ON",
    "STATE_RESTARTING",
]
