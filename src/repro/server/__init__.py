"""Server and cluster load substrate.

Models the six dual-corded low-power nodes of the prototype (Section 6):
per-server power states, the off/on restart penalty, least-recently-used
shutdown selection, and downtime accounting (the paper's primary
performance metric, Section 7.2).
"""

from .server import Server, ServerState, PowerSource
from .cluster import ServerCluster

__all__ = ["Server", "ServerState", "PowerSource", "ServerCluster"]
