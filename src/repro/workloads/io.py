"""Trace persistence: save/load power and cluster traces.

Real deployments would feed the controller recorded IPDU traces rather
than synthetic generators; these helpers round-trip both trace types
through ``.npz`` (lossless) and ``.csv`` (interchange) files so recorded
data can be replayed through the simulator.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import TraceError
from .base import ClusterTrace, PowerTrace

PathLike = Union[str, Path]


def save_trace_npz(trace: Union[PowerTrace, ClusterTrace],
                   path: PathLike) -> None:
    """Save a trace losslessly to ``.npz``."""
    path = Path(path)
    kind = "power" if isinstance(trace, PowerTrace) else "cluster"
    np.savez(path, values=trace.values_w, dt_s=np.array([trace.dt_s]),
             kind=np.array([kind]), name=np.array([trace.name]))


def load_trace_npz(path: PathLike) -> Union[PowerTrace, ClusterTrace]:
    """Load a trace saved by :func:`save_trace_npz`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no such trace file: {path}")
    with np.load(path, allow_pickle=False) as data:
        try:
            values = data["values"]
            dt_s = float(data["dt_s"][0])
            kind = str(data["kind"][0])
            name = str(data["name"][0])
        except KeyError as error:
            raise TraceError(f"{path} is not a trace file: missing {error}")
    if kind == "power":
        return PowerTrace(values, dt_s, name=name)
    if kind == "cluster":
        return ClusterTrace(values, dt_s, name=name)
    raise TraceError(f"{path}: unknown trace kind {kind!r}")


def save_trace_csv(trace: Union[PowerTrace, ClusterTrace],
                   path: PathLike) -> None:
    """Save a trace as CSV: a time column plus one column per series."""
    path = Path(path)
    if isinstance(trace, PowerTrace):
        matrix = trace.values_w.reshape(1, -1)
        headers = ["time_s", "power_w"]
    else:
        matrix = trace.values_w
        headers = ["time_s"] + [f"server{i}_w"
                                for i in range(matrix.shape[0])]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["# name", trace.name])
        writer.writerow(["# dt_s", trace.dt_s])
        writer.writerow(headers)
        for column in range(matrix.shape[1]):
            writer.writerow([column * trace.dt_s]
                            + [f"{matrix[row, column]:.6f}"
                               for row in range(matrix.shape[0])])


def load_trace_csv(path: PathLike) -> Union[PowerTrace, ClusterTrace]:
    """Load a trace saved by :func:`save_trace_csv`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no such trace file: {path}")
    with path.open() as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if len(rows) < 4:
        raise TraceError(f"{path}: too short to be a trace CSV")
    try:
        name = rows[0][1]
        dt_s = float(rows[1][1])
        headers = rows[2]
        data_rows = rows[3:]
        num_series = len(headers) - 1
        matrix = np.empty((num_series, len(data_rows)))
        for column, row in enumerate(data_rows):
            for series in range(num_series):
                matrix[series, column] = float(row[series + 1])
    except (IndexError, ValueError) as error:
        raise TraceError(f"{path}: malformed trace CSV ({error})")
    if num_series == 1:
        return PowerTrace(matrix[0], dt_s, name=name)
    return ClusterTrace(matrix, dt_s, name=name)
