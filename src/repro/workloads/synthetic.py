"""Synthetic generators for the paper's eight workloads (Table 1).

The paper uses HiBench and CloudSuite applications purely as *peak-shape
generators*: "we divide the eight workloads into two groups, one group runs
on the high frequency and the other group runs on the low frequency.  In
this way, we can construct two general peak shapes (small peaks and large
peaks)" (Section 6).  We therefore model each workload as a stochastic
utilization process with calibrated burst height, duration and period,
grouped into the same two peak classes.

Group assignment note: Table 1's rotated "Peak" column does not survive
text extraction; we assign the first five rows (PR, WC, DA, WS, MS) to the
*large peak* group (run at the 1.8 GHz high frequency) and the last three
(DFS, HB, TS) to the *small peak* group (1.3 GHz), which matches the
5-vs-3 visual split of the table.

Utilization model per server::

    util(t) = base + burst(t) * amplitude * per_server_scale + noise

where ``burst(t)`` is a cluster-wide square-ish pulse train with jittered
period and duration (load surges hit all servers together, which is what
makes the *aggregate* exceed the utility budget), and power follows the
standard linear server model ``P = idle + (peak - idle) * util`` scaled by
the DVFS frequency.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass

import numpy as np

from ..config import ServerConfig
from ..errors import ConfigurationError
from ..units import minutes
from .base import ClusterTrace


class PeakClass(enum.Enum):
    """The two general peak shapes of Section 6."""

    SMALL = "small"
    LARGE = "large"


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical description of one Table 1 workload.

    Attributes:
        name: Short name used throughout the paper (e.g. "PR").
        full_name: The benchmark's descriptive name.
        category: Table 1 category string.
        peak_class: Small- or large-peak group.
        base_util: Background utilization between bursts.
        burst_util: Utilization reached during a burst (before noise).
        burst_period_s: Mean time between burst starts.
        burst_duration_s: Mean burst length.
        period_jitter: Relative jitter on the period (0..1).
        duration_jitter: Relative jitter on the duration (0..1).
        noise_sigma: Per-server white-noise sigma on utilization.
        ramp_s: Burst rise/fall time (seconds).
    """

    name: str
    full_name: str
    category: str
    peak_class: PeakClass
    base_util: float
    burst_util: float
    burst_period_s: float
    burst_duration_s: float
    period_jitter: float = 0.25
    duration_jitter: float = 0.25
    noise_sigma: float = 0.03
    ramp_s: float = 20.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_util < self.burst_util <= 1.0:
            raise ConfigurationError(
                f"{self.name}: need 0 <= base < burst <= 1")
        if self.burst_period_s <= 0 or self.burst_duration_s <= 0:
            raise ConfigurationError(
                f"{self.name}: period and duration must be positive")
        if self.burst_duration_s >= self.burst_period_s:
            raise ConfigurationError(
                f"{self.name}: burst duration must be below the period")


# Large-peak group: tall, long surges (run at the 1.8 GHz high frequency).
# Small-peak group: mild, narrow surges (1.3 GHz).  Base utilizations are
# low enough that inter-burst valleys leave charging headroom under the
# 260 W budget, exactly as the prototype experiments require.
WORKLOADS = {
    "PR": WorkloadSpec(
        name="PR", full_name="Page Rank (Mahout)",
        category="Web Search Benchmarks", peak_class=PeakClass.LARGE,
        base_util=0.13, burst_util=0.95,
        burst_period_s=minutes(32), burst_duration_s=minutes(8),
        noise_sigma=0.035),
    "WC": WorkloadSpec(
        name="WC", full_name="Word Count (Hadoop)",
        category="Micro Benchmarks", peak_class=PeakClass.LARGE,
        base_util=0.12, burst_util=0.92,
        burst_period_s=minutes(28), burst_duration_s=minutes(7),
        noise_sigma=0.03),
    "DA": WorkloadSpec(
        name="DA", full_name="Data Analysis",
        category="CloudSuite Benchmarks", peak_class=PeakClass.LARGE,
        base_util=0.15, burst_util=0.97,
        burst_period_s=minutes(36), burst_duration_s=minutes(10),
        noise_sigma=0.04),
    "WS": WorkloadSpec(
        name="WS", full_name="Web Search",
        category="CloudSuite Benchmarks", peak_class=PeakClass.LARGE,
        base_util=0.14, burst_util=0.90,
        burst_period_s=minutes(26), burst_duration_s=minutes(6),
        noise_sigma=0.05),
    "MS": WorkloadSpec(
        name="MS", full_name="Media Streaming",
        category="CloudSuite Benchmarks", peak_class=PeakClass.LARGE,
        base_util=0.16, burst_util=0.93,
        burst_period_s=minutes(30), burst_duration_s=minutes(8),
        noise_sigma=0.045),
    "DFS": WorkloadSpec(
        name="DFS", full_name="Dfsioe",
        category="HDFS Benchmarks", peak_class=PeakClass.SMALL,
        base_util=0.18, burst_util=0.66,
        burst_period_s=minutes(9), burst_duration_s=minutes(2.5),
        noise_sigma=0.03),
    "HB": WorkloadSpec(
        name="HB", full_name="Hivebench",
        category="Data Analytics", peak_class=PeakClass.SMALL,
        base_util=0.20, burst_util=0.70,
        burst_period_s=minutes(11), burst_duration_s=minutes(3.5),
        noise_sigma=0.035),
    "TS": WorkloadSpec(
        name="TS", full_name="Terasort",
        category="Micro Benchmarks", peak_class=PeakClass.SMALL,
        base_util=0.16, burst_util=0.62,
        burst_period_s=minutes(8), burst_duration_s=minutes(2),
        noise_sigma=0.03),
}

SMALL_PEAK_WORKLOADS = tuple(
    name for name, spec in WORKLOADS.items()
    if spec.peak_class is PeakClass.SMALL)
LARGE_PEAK_WORKLOADS = tuple(
    name for name, spec in WORKLOADS.items()
    if spec.peak_class is PeakClass.LARGE)


def _burst_signal(spec: WorkloadSpec, num_samples: int, dt_s: float,
                  rng: np.random.Generator) -> np.ndarray:
    """Cluster-wide burst envelope in [0, 1] with jittered pulse train."""
    signal = np.zeros(num_samples)
    ramp_samples = max(1, int(round(spec.ramp_s / dt_s)))
    time = 0.0
    # Start mid-gap so traces do not all open with a burst.
    time += 0.5 * spec.burst_period_s
    duration_total = num_samples * dt_s
    while time < duration_total:
        duration = spec.burst_duration_s * (
            1.0 + spec.duration_jitter * rng.uniform(-1.0, 1.0))
        start = int(time / dt_s)
        stop = min(num_samples, int((time + duration) / dt_s))
        if start < num_samples and stop > start:
            signal[start:stop] = 1.0
            # Rise and fall ramps.
            rise_stop = min(stop, start + ramp_samples)
            signal[start:rise_stop] = np.linspace(
                0.0, 1.0, rise_stop - start, endpoint=False)
            fall_start = max(start, stop - ramp_samples)
            signal[fall_start:stop] = np.linspace(
                1.0, 0.0, stop - fall_start)
        period = spec.burst_period_s * (
            1.0 + spec.period_jitter * rng.uniform(-1.0, 1.0))
        time += max(period, duration + dt_s)
    return signal


def frequency_power_scale(frequency_ghz: float,
                          server: ServerConfig) -> float:
    """Dynamic-power scale of a DVFS operating point.

    Dynamic power scales roughly with f * V^2 and voltage tracks frequency,
    so we use (f / f_high)^1.5 as a standard first-order approximation.
    """
    if frequency_ghz <= 0:
        raise ConfigurationError("frequency must be positive")
    return (frequency_ghz / server.high_frequency_ghz) ** 1.5


def generate_workload(spec: WorkloadSpec,
                      duration_s: float,
                      num_servers: int = 6,
                      server: ServerConfig | None = None,
                      dt_s: float = 1.0,
                      seed: int = 0) -> ClusterTrace:
    """Generate per-server power demands for one workload.

    The workload's peak class selects the DVFS frequency (Section 6's
    grouping): large-peak workloads run at the high frequency, small-peak
    ones at the low frequency, scaling the dynamic power component.

    Args:
        spec: Workload description (one of :data:`WORKLOADS`).
        duration_s: Trace length in seconds.
        num_servers: Cluster size.
        server: Server power model; defaults to the prototype 30/70 W node.
        dt_s: Sample spacing.
        seed: RNG seed; combined with the workload name so different
            workloads never share a random stream.

    Returns:
        A :class:`ClusterTrace` of shape (num_servers, samples).
    """
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    if num_servers <= 0:
        raise ConfigurationError("need at least one server")
    server = server or ServerConfig()
    num_samples = max(1, int(round(duration_s / dt_s)))
    # zlib.crc32 is stable across processes (unlike built-in hash, which
    # is salted), so traces are reproducible run to run.
    stream = zlib.crc32(f"{spec.name}:{seed}".encode("utf-8"))
    rng = np.random.default_rng(stream)

    burst = _burst_signal(spec, num_samples, dt_s, rng)
    if spec.peak_class is PeakClass.LARGE:
        frequency = server.high_frequency_ghz
    else:
        frequency = server.low_frequency_ghz
    scale = frequency_power_scale(frequency, server)

    demands = np.empty((num_servers, num_samples))
    for index in range(num_servers):
        # Every server sees the common surge plus its own wiggle.
        per_server_gain = rng.uniform(0.9, 1.0)
        noise = rng.normal(0.0, spec.noise_sigma, num_samples)
        util = (spec.base_util
                + (spec.burst_util - spec.base_util) * burst * per_server_gain
                + noise)
        util = np.clip(util, 0.0, 1.0)
        dynamic = (server.peak_power_w - server.idle_power_w) * util * scale
        demands[index] = server.idle_power_w + dynamic
    return ClusterTrace(demands, dt_s, name=spec.name)
