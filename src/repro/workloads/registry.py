"""Name-based access to the Table 1 workload generators."""

from __future__ import annotations

from typing import Tuple

from ..config import ServerConfig
from ..errors import ConfigurationError
from .base import ClusterTrace
from .synthetic import WORKLOADS, generate_workload


def workload_names() -> Tuple[str, ...]:
    """The eight Table 1 workload abbreviations, in paper order."""
    return tuple(WORKLOADS.keys())


def get_workload(name: str,
                 duration_s: float,
                 num_servers: int = 6,
                 server: ServerConfig | None = None,
                 dt_s: float = 1.0,
                 seed: int = 0) -> ClusterTrace:
    """Generate a named workload's cluster trace.

    Raises:
        ConfigurationError: If ``name`` is not one of the Table 1 workloads.
    """
    spec = WORKLOADS.get(name.upper())
    if spec is None:
        known = ", ".join(WORKLOADS)
        raise ConfigurationError(
            f"unknown workload {name!r}; known workloads: {known}")
    return generate_workload(spec, duration_s, num_servers=num_servers,
                             server=server, dt_s=dt_s, seed=seed)
