"""Mixed-workload cluster traces.

Real clusters rarely run one benchmark everywhere; the prototype's
experiments "within each experiment, a workload can be executed
iteratively", but a datacenter consolidates different applications per
server.  These helpers compose heterogeneous per-server assignments and
sequential phases from the Table 1 generators.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import ServerConfig
from ..errors import ConfigurationError
from .base import ClusterTrace
from .registry import get_workload


def mixed_workload(assignments: Sequence[str],
                   duration_s: float,
                   server: ServerConfig | None = None,
                   dt_s: float = 1.0,
                   seed: int = 0) -> ClusterTrace:
    """One workload per server ("MS" on server 0, "TS" on server 1, ...).

    Each named workload is generated for the full cluster (so its common
    burst structure is preserved) and the matching server row is taken,
    which keeps per-server statistics faithful while decorrelating bursts
    across *different* workloads.
    """
    if not assignments:
        raise ConfigurationError("need at least one server assignment")
    rows = []
    for index, name in enumerate(assignments):
        trace = get_workload(name, duration_s=duration_s,
                             num_servers=len(assignments), server=server,
                             dt_s=dt_s, seed=seed + index)
        rows.append(trace.values_w[index])
    return ClusterTrace(np.vstack(rows), dt_s, name="mixed:"
                        + "+".join(assignments))


def phased_workload(phases: Sequence[str],
                    phase_duration_s: float,
                    num_servers: int = 6,
                    server: ServerConfig | None = None,
                    dt_s: float = 1.0,
                    seed: int = 0) -> ClusterTrace:
    """Sequential phases: the whole cluster runs each workload in turn.

    Models the paper's "executed iteratively" protocol across different
    benchmarks — e.g. a small-peak warm-up followed by a large-peak batch
    window, the pattern that exercises the controller's re-classification.
    """
    if not phases:
        raise ConfigurationError("need at least one phase")
    if phase_duration_s <= 0:
        raise ConfigurationError("phase duration must be positive")
    blocks = []
    for index, name in enumerate(phases):
        trace = get_workload(name, duration_s=phase_duration_s,
                             num_servers=num_servers, server=server,
                             dt_s=dt_s, seed=seed + index)
        blocks.append(trace.values_w)
    return ClusterTrace(np.concatenate(blocks, axis=1), dt_s,
                        name="phased:" + ">".join(phases))
