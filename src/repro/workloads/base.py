"""Power-trace containers: validated time series of power demand.

Two granularities appear in the library:

* :class:`PowerTrace` — one power series (a solar feed, an aggregate
  cluster demand, one server's draw).
* :class:`ClusterTrace` — a servers x time matrix, needed because the HEB
  scheduler assigns *individual servers* to buffers (the R_lambda ratio of
  Section 5.1 is a count of servers, not a power fraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import TraceError


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a power trace (used by experiment reports)."""

    mean_w: float
    peak_w: float
    valley_w: float
    std_w: float
    duration_s: float


class PowerTrace:
    """An immutable, validated power time series with fixed sample spacing."""

    def __init__(self, values_w: np.ndarray, dt_s: float,
                 name: str = "trace") -> None:
        values = np.asarray(values_w, dtype=float)
        if values.ndim != 1:
            raise TraceError(f"{name}: power trace must be 1-D, "
                             f"got shape {values.shape}")
        if values.size == 0:
            raise TraceError(f"{name}: power trace must be non-empty")
        if dt_s <= 0:
            raise TraceError(f"{name}: dt must be positive, got {dt_s!r}")
        if not np.all(np.isfinite(values)):
            raise TraceError(f"{name}: power trace contains non-finite values")
        if np.any(values < 0):
            raise TraceError(f"{name}: power cannot be negative")
        values.setflags(write=False)
        self._values = values
        self.dt_s = float(dt_s)
        self.name = name

    @property
    def values_w(self) -> np.ndarray:
        """The underlying (read-only) sample array."""
        return self._values

    def __len__(self) -> int:
        return self._values.size

    def __getitem__(self, index: int) -> float:
        return float(self._values[index])

    @property
    def duration_s(self) -> float:
        """Total trace duration."""
        return len(self) * self.dt_s

    def stats(self) -> TraceStats:
        """Summary statistics of the whole trace."""
        return TraceStats(
            mean_w=float(self._values.mean()),
            peak_w=float(self._values.max()),
            valley_w=float(self._values.min()),
            std_w=float(self._values.std()),
            duration_s=self.duration_s,
        )

    def energy_j(self) -> float:
        """Total energy represented by the trace."""
        return float(self._values.sum()) * self.dt_s

    def slot(self, index: int, slot_seconds: float) -> "PowerTrace":
        """Extract control-slot ``index`` as a sub-trace."""
        per_slot = int(round(slot_seconds / self.dt_s))
        if per_slot <= 0:
            raise TraceError("slot shorter than one sample")
        start = index * per_slot
        stop = min(start + per_slot, len(self))
        if start >= len(self):
            raise TraceError(f"slot {index} beyond trace end")
        return PowerTrace(self._values[start:stop].copy(), self.dt_s,
                          name=f"{self.name}[slot {index}]")

    def num_slots(self, slot_seconds: float) -> int:
        """Number of (possibly ragged-final) control slots in the trace."""
        per_slot = int(round(slot_seconds / self.dt_s))
        if per_slot <= 0:
            raise TraceError("slot shorter than one sample")
        return (len(self) + per_slot - 1) // per_slot

    def iter_slots(self, slot_seconds: float) -> Iterator["PowerTrace"]:
        """Iterate over control slots in order."""
        for index in range(self.num_slots(slot_seconds)):
            yield self.slot(index, slot_seconds)

    def resample(self, dt_s: float) -> "PowerTrace":
        """Resample to a different spacing by linear interpolation."""
        if dt_s <= 0:
            raise TraceError("dt must be positive")
        old_times = np.arange(len(self)) * self.dt_s
        new_times = np.arange(0.0, self.duration_s, dt_s)
        new_values = np.interp(new_times, old_times, self._values)
        return PowerTrace(new_values, dt_s, name=self.name)

    def scaled(self, factor: float) -> "PowerTrace":
        """Return a copy with every sample multiplied by ``factor``."""
        if factor < 0:
            raise TraceError("scale factor cannot be negative")
        return PowerTrace(self._values * factor, self.dt_s, name=self.name)

    def clipped(self, max_w: float) -> "PowerTrace":
        """Return a copy with samples capped at ``max_w``."""
        return PowerTrace(np.minimum(self._values, max_w), self.dt_s,
                          name=self.name)

    def __add__(self, other: "PowerTrace") -> "PowerTrace":
        if not isinstance(other, PowerTrace):
            return NotImplemented
        if len(other) != len(self) or other.dt_s != self.dt_s:
            raise TraceError("can only add traces of equal length and dt")
        return PowerTrace(self._values + other.values_w, self.dt_s,
                          name=f"{self.name}+{other.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (f"<PowerTrace {self.name!r} n={len(self)} dt={self.dt_s}s "
                f"mean={s.mean_w:.1f}W peak={s.peak_w:.1f}W>")


class ClusterTrace:
    """Per-server power demands: a (num_servers x samples) matrix."""

    def __init__(self, values_w: np.ndarray, dt_s: float,
                 name: str = "cluster") -> None:
        values = np.asarray(values_w, dtype=float)
        if values.ndim != 2:
            raise TraceError(f"{name}: cluster trace must be 2-D, "
                             f"got shape {values.shape}")
        if values.size == 0:
            raise TraceError(f"{name}: cluster trace must be non-empty")
        if dt_s <= 0:
            raise TraceError(f"{name}: dt must be positive")
        if not np.all(np.isfinite(values)):
            raise TraceError(f"{name}: trace contains non-finite values")
        if np.any(values < 0):
            raise TraceError(f"{name}: power cannot be negative")
        values.setflags(write=False)
        self._values = values
        self.dt_s = float(dt_s)
        self.name = name

    @property
    def values_w(self) -> np.ndarray:
        """The (read-only) servers x samples power matrix."""
        return self._values

    @property
    def num_servers(self) -> int:
        return self._values.shape[0]

    @property
    def num_samples(self) -> int:
        return self._values.shape[1]

    @property
    def duration_s(self) -> float:
        return self.num_samples * self.dt_s

    def server(self, index: int) -> PowerTrace:
        """One server's demand as a :class:`PowerTrace`."""
        return PowerTrace(self._values[index].copy(), self.dt_s,
                          name=f"{self.name}/server{index}")

    def aggregate(self) -> PowerTrace:
        """Total cluster demand."""
        # axis=-2 == the server axis of (servers, samples), stable
        # under a future leading scenario-batch axis.
        return PowerTrace(self._values.sum(axis=-2), self.dt_s,
                          name=f"{self.name}/total")

    def at(self, sample: int) -> np.ndarray:
        """Per-server demands at one sample (copy)."""
        return self._values[:, sample].copy()

    def shape(self) -> Tuple[int, int]:
        return self._values.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ClusterTrace {self.name!r} servers={self.num_servers} "
                f"samples={self.num_samples} dt={self.dt_s}s>")
