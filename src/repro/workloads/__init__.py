"""Workload and power-trace substrate.

The paper drives its prototype with eight HiBench/CloudSuite workloads
(Table 1), a Google cluster trace (Figure 1a), and a rooftop solar feed
(Section 7.4).  None of those artifacts are distributable, so this package
generates synthetic traces with the statistics each experiment relies on:
peak height/duration classes for the 8 workloads, bursty heavy-tailed
utilization for the cluster trace, and diurnal-plus-cloud-transient output
for solar.
"""

from .base import PowerTrace, ClusterTrace, TraceStats
from .synthetic import (
    WorkloadSpec,
    PeakClass,
    WORKLOADS,
    SMALL_PEAK_WORKLOADS,
    LARGE_PEAK_WORKLOADS,
    generate_workload,
)
from .google_like import generate_google_like_trace
from .solar import SolarConfig, generate_solar_trace
from .registry import get_workload, workload_names
from .mixed import mixed_workload, phased_workload
from .io import (
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)

__all__ = [
    "PowerTrace",
    "ClusterTrace",
    "TraceStats",
    "WorkloadSpec",
    "PeakClass",
    "WORKLOADS",
    "SMALL_PEAK_WORKLOADS",
    "LARGE_PEAK_WORKLOADS",
    "generate_workload",
    "generate_google_like_trace",
    "SolarConfig",
    "generate_solar_trace",
    "get_workload",
    "workload_names",
    "mixed_workload",
    "phased_workload",
    "load_trace_csv",
    "load_trace_npz",
    "save_trace_csv",
    "save_trace_npz",
]
