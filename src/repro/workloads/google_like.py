"""Google-cluster-style utilization trace generator (Figure 1a substrate).

Figure 1(a) analyses provisioning levels P1-P4 against a Google cluster
workload trace [2, 32].  The real trace is not redistributable, so this
module synthesizes a cluster-utilization series with the properties the
MPPU analysis depends on:

* a diurnal baseline (day/night swing),
* an AR(1) fluctuation process (slow correlated wander),
* heavy-tailed load spikes (the "massive and irregular load surges" of the
  abstract) whose rarity makes over-provisioning wasteful.

The output is normalized power in watts for a nominal cluster size, with
peaks touching the nameplate rating only rarely — which is exactly why the
paper's P1 (100%) provisioning yields a tiny MPPU.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..units import SECONDS_PER_DAY
from .base import PowerTrace


def generate_google_like_trace(duration_s: float,
                               nameplate_w: float = 1000.0,
                               dt_s: float = 60.0,
                               seed: int = 0,
                               diurnal_amplitude: float = 0.15,
                               base_util: float = 0.45,
                               ar_coefficient: float = 0.995,
                               ar_sigma: float = 0.012,
                               spike_rate_per_day: float = 18.0,
                               spike_scale: float = 0.18,
                               spike_duration_s: float = 420.0,
                               ) -> PowerTrace:
    """Generate a bursty cluster power trace normalized to a nameplate.

    Args:
        duration_s: Trace length (several days recommended for Figure 1a).
        nameplate_w: Aggregate nameplate rating; utilization of 1.0 maps to
            this power.
        dt_s: Sample spacing (the Google trace is 5-minute granularity; we
            default to 1 minute for smoother peak statistics).
        seed: RNG seed.
        diurnal_amplitude: Half-swing of the day/night cycle (utilization).
        base_util: Mean utilization.
        ar_coefficient / ar_sigma: AR(1) wander parameters.
        spike_rate_per_day: Mean number of surge events per day.
        spike_scale: Mean spike height (exponential tail, utilization).
        spike_duration_s: Mean surge duration (exponential).

    Returns:
        A :class:`PowerTrace` with samples in [0, nameplate_w].
    """
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    if nameplate_w <= 0:
        raise ConfigurationError("nameplate must be positive")
    if not 0.0 <= ar_coefficient < 1.0:
        raise ConfigurationError("ar_coefficient must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    num_samples = max(1, int(round(duration_s / dt_s)))
    times = np.arange(num_samples) * dt_s

    diurnal = diurnal_amplitude * np.sin(
        2.0 * np.pi * times / SECONDS_PER_DAY - 0.5 * np.pi)

    wander = np.empty(num_samples)
    level = 0.0
    innovations = rng.normal(0.0, ar_sigma, num_samples)
    for i in range(num_samples):
        level = ar_coefficient * level + innovations[i]
        wander[i] = level

    spikes = np.zeros(num_samples)
    expected_spikes = spike_rate_per_day * duration_s / SECONDS_PER_DAY
    num_spikes = rng.poisson(expected_spikes)
    for _ in range(num_spikes):
        start = rng.integers(0, num_samples)
        length = max(1, int(rng.exponential(spike_duration_s) / dt_s))
        height = rng.exponential(spike_scale)
        stop = min(num_samples, start + length)
        # Surges stack: concurrent events push utilization toward 1.0.
        spikes[start:stop] += height

    util = np.clip(base_util + diurnal + wander + spikes, 0.02, 1.0)
    return PowerTrace(util * nameplate_w, dt_s, name="google-like")
