"""Solar generation traces for the renewable-energy experiments (Sec. 7.4).

The paper taps a rooftop photovoltaic array into the prototype instead of
utility power to measure renewable energy utilization (REU).  We replace
the physical array with a standard two-component irradiance model:

* a clear-sky envelope — a half-sine between sunrise and sunset scaled by
  the array rating;
* cloud transients — a random telegraph attenuation process whose fast
  ramps create the *deep power valleys* that only supercapacitors can
  absorb quickly (the mechanism behind the Figure 12d REU gap).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import SECONDS_PER_DAY, hours
from .base import PowerTrace


@dataclass(frozen=True)
class SolarConfig:
    """Photovoltaic array and weather parameters.

    Attributes:
        rated_power_w: Array output under full irradiance.
        sunrise_s / sunset_s: Daylight window within each day (seconds
            after midnight).
        cloud_attenuation: Output multiplier while a cloud passes (0..1).
        mean_cloud_s: Mean duration of a cloud event.
        mean_clear_s: Mean clear spell between cloud events.
        ramp_s: Cloud edge ramp time (PV output never steps instantly).
        noise_sigma: Relative high-frequency output noise.
    """

    rated_power_w: float = 400.0
    sunrise_s: float = hours(6.5)
    sunset_s: float = hours(19.0)
    cloud_attenuation: float = 0.25
    mean_cloud_s: float = 360.0
    mean_clear_s: float = 900.0
    ramp_s: float = 30.0
    noise_sigma: float = 0.02

    def __post_init__(self) -> None:
        if self.rated_power_w <= 0:
            raise ConfigurationError("rated power must be positive")
        if not 0 <= self.sunrise_s < self.sunset_s <= SECONDS_PER_DAY:
            raise ConfigurationError(
                "daylight window must satisfy 0 <= sunrise < sunset <= 24h")
        if not 0.0 <= self.cloud_attenuation <= 1.0:
            raise ConfigurationError("cloud attenuation must lie in [0, 1]")
        if self.mean_cloud_s <= 0 or self.mean_clear_s <= 0:
            raise ConfigurationError("cloud/clear durations must be positive")
        if self.noise_sigma < 0:
            raise ConfigurationError("noise sigma cannot be negative")


def _clear_sky_envelope(times_s: np.ndarray, config: SolarConfig) -> np.ndarray:
    """Half-sine daylight envelope repeated each day, zero at night."""
    time_of_day = np.mod(times_s, SECONDS_PER_DAY)
    daylight = (time_of_day >= config.sunrise_s) & (
        time_of_day <= config.sunset_s)
    phase = (time_of_day - config.sunrise_s) / (
        config.sunset_s - config.sunrise_s)
    envelope = np.where(daylight, np.sin(np.pi * np.clip(phase, 0, 1)), 0.0)
    return envelope


def _cloud_process(num_samples: int, dt_s: float, config: SolarConfig,
                   rng: np.random.Generator) -> np.ndarray:
    """Random telegraph attenuation with ramped edges."""
    attenuation = np.ones(num_samples)
    position = 0
    cloudy = False
    while position < num_samples:
        if cloudy:
            length = max(1, int(rng.exponential(config.mean_cloud_s) / dt_s))
            stop = min(num_samples, position + length)
            attenuation[position:stop] = config.cloud_attenuation
        else:
            length = max(1, int(rng.exponential(config.mean_clear_s) / dt_s))
            stop = min(num_samples, position + length)
        position = stop
        cloudy = not cloudy
    # Smooth edges with a short moving average (ramp).  Pad with edge
    # values first so the trace boundaries are not artificially dimmed.
    window = max(1, int(config.ramp_s / dt_s))
    if window > 1:
        kernel = np.ones(window) / window
        padded = np.pad(attenuation, window, mode="edge")
        attenuation = np.convolve(padded, kernel, mode="same")[
            window:window + num_samples]
    return attenuation


def generate_solar_trace(duration_s: float,
                         config: SolarConfig | None = None,
                         dt_s: float = 1.0,
                         seed: int = 0,
                         start_time_s: float = hours(8.0),
                         ) -> PowerTrace:
    """Generate a PV output trace.

    Args:
        duration_s: Trace length.
        config: Array/weather parameters (defaults suit the prototype:
            a 400 W array feeding a 420 W-peak cluster).
        dt_s: Sample spacing.
        seed: RNG seed.
        start_time_s: Time of day at the first sample; defaults to 08:00 so
            short experiment traces land in daylight.

    Returns:
        A :class:`PowerTrace` of generation in watts.
    """
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    config = config or SolarConfig()
    rng = np.random.default_rng(seed)
    num_samples = max(1, int(round(duration_s / dt_s)))
    times = start_time_s + np.arange(num_samples) * dt_s

    envelope = _clear_sky_envelope(times, config)
    clouds = _cloud_process(num_samples, dt_s, config, rng)
    noise = np.clip(
        1.0 + rng.normal(0.0, config.noise_sigma, num_samples), 0.0, None)
    output = config.rated_power_w * envelope * clouds * noise
    return PowerTrace(np.clip(output, 0.0, None), dt_s, name="solar")
