"""Command-line entry point: regenerate any paper figure from the shell.

Usage::

    python -m repro list
    python -m repro fig12 --hours 2 --seed 3 --jobs 8
    python -m repro fig15
    python -m repro run HEB-D PR --hours 2
    python -m repro run HEB-D PR --faults storm.json
    python -m repro resilience --hours 2
    python -m repro serve --port 8421 --jobs 8
    python -m repro loadtest --clients 100
    python -m repro cache stats
    python -m repro cache clear
    python -m repro lint src --format json

Figure and ``run`` commands fan independent simulations out over worker
processes (``--jobs``, default: all cores) and reuse previous results
from a content-addressed on-disk cache (``--cache DIR`` to relocate it,
``--no-cache`` to disable).  Cached or parallel, the output is
bit-for-bit identical to a serial run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from . import experiments, quick_run
from .analysis.cli import add_lint_arguments, run_lint
from .core import POLICY_NAMES
from .errors import ConfigurationError, FaultSpecError
from .faults import load_schedule
from .runner import (
    ExperimentRunner,
    ResultCache,
    default_cache_dir,
    using_runner,
)
from .units import joules_to_wh
from .workloads import workload_names


def _fig01(args) -> str:
    return experiments.format_fig01(
        experiments.run_fig01(duration_days=args.days, seed=args.seed))


def _fig03(args) -> str:
    return experiments.format_fig03(experiments.run_fig03())


def _fig04(args) -> str:
    return experiments.format_fig04(experiments.run_fig04())


def _fig05(args) -> str:
    return experiments.format_fig05(experiments.run_fig05())


def _fig06(args) -> str:
    return experiments.format_fig06(experiments.run_fig06())


def _fig07(args) -> str:
    return experiments.format_fig07(
        experiments.run_fig07(),
        experiments.run_fig08(duration_h=args.hours, seed=args.seed))


def _fig12(args) -> str:
    return experiments.format_fig12(
        experiments.run_fig12(duration_h=args.hours, seed=args.seed))


def _fig13(args) -> str:
    return experiments.format_fig13(
        experiments.run_fig13(duration_h=args.hours, seed=args.seed))


def _fig14(args) -> str:
    return experiments.format_fig14(
        experiments.run_fig14(duration_h=args.hours, seed=args.seed))


def _fig15(args) -> str:
    return experiments.format_fig15(experiments.run_fig15())


FIGURES: Dict[str, Callable] = {
    "fig01": _fig01,
    "fig03": _fig03,
    "fig04": _fig04,
    "fig05": _fig05,
    "fig06": _fig06,
    "fig07": _fig07,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
}


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for independent runs "
                             "(default: all cores)")
    parser.add_argument("--cache", type=str, default=None, metavar="DIR",
                        help="result cache directory "
                             f"(default: {default_cache_dir()})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--no-batch", action="store_true",
                        help="disable the batched multi-scenario engine "
                             "(one scalar tick loop per run)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce figures from the HEB paper (ISCA 2015).")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available figures")

    for name in FIGURES:
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        sub.add_argument("--hours", type=float, default=4.0,
                         help="simulated hours per run (where applicable)")
        sub.add_argument("--days", type=float, default=7.0,
                         help="trace days (fig01 only)")
        sub.add_argument("--seed", type=int, default=1)
        _add_runner_arguments(sub)

    run = subparsers.add_parser(
        "run", help="run one (scheme, workload) simulation")
    run.add_argument("scheme", choices=list(POLICY_NAMES))
    run.add_argument("workload", choices=list(workload_names()))
    run.add_argument("--hours", type=float, default=2.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--budget", type=float, default=None,
                     help="utility budget in watts (default 260)")
    run.add_argument("--profile", action="store_true",
                     help="time the engine's tick phases and print a "
                          "per-phase breakdown (runs locally, skips the "
                          "result cache; simulated numbers are unchanged)")
    run.add_argument("--faults", type=str, default=None, metavar="SPEC",
                     help="JSON fault-schedule file to inject (see "
                          "docs/resilience.md for the format)")
    _add_runner_arguments(run)

    resilience = subparsers.add_parser(
        "resilience", help="sweep fault intensity and compare downtime "
                           "across BaOnly / SCFirst / HEB-D")
    resilience.add_argument("--hours", type=float, default=2.0)
    resilience.add_argument("--seed", type=int, default=1)
    resilience.add_argument("--workload", type=str, default="PR",
                            choices=list(workload_names()))
    _add_runner_arguments(resilience)

    serve = subparsers.add_parser(
        "serve", help="run the scenario service: an async HTTP API over "
                      "the content-addressed result cache "
                      "(see docs/service.md)")
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8421)
    serve.add_argument("--queue-size", type=int, default=256,
                       metavar="N",
                       help="bounded work queue; beyond it submissions "
                            "get 429 + Retry-After (default 256)")
    serve.add_argument("--max-group", type=int, default=64, metavar="N",
                       help="largest burst dispatched as one batched "
                            "group (default 64)")
    serve.add_argument("--batch-window", type=float, default=0.005,
                       metavar="SECONDS",
                       help="how long the dispatcher lingers so a burst "
                            "can share one batched tick loop "
                            "(default 0.005)")
    _add_runner_arguments(serve)

    loadtest = subparsers.add_parser(
        "loadtest", help="fire concurrent clients at a scenario service "
                         "and report throughput / latency / hit rate")
    loadtest.add_argument("--host", type=str, default=None,
                          help="target a running service (default: "
                               "self-host one in-process)")
    loadtest.add_argument("--port", type=int, default=None)
    loadtest.add_argument("--clients", type=int, default=100)
    loadtest.add_argument("--requests", type=int, default=10,
                          metavar="N", help="requests per client")
    loadtest.add_argument("--hot-fraction", type=float, default=0.95,
                          help="probability a request repeats a warmed "
                               "spec (default 0.95)")
    loadtest.add_argument("--unique", type=int, default=12,
                          help="distinct specs in the warmed hot pool")
    loadtest.add_argument("--hours", type=float, default=1.0 / 30.0,
                          help="simulated hours per spec (default 2 min)")
    loadtest.add_argument("--seed", type=int, default=1)
    _add_runner_arguments(loadtest)

    lint = subparsers.add_parser(
        "lint", help="static analysis: unit, determinism, and exception "
                     "invariants (see docs/analysis.md)")
    add_lint_arguments(lint)

    cache = subparsers.add_parser(
        "cache", help="inspect or clear the on-disk result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for verb, help_text in (("stats", "show entry count and size"),
                            ("clear", "delete every cached result")):
        verb_parser = cache_sub.add_parser(verb, help=help_text)
        verb_parser.add_argument("--cache", type=str, default=None,
                                 metavar="DIR",
                                 help="cache directory (default: "
                                      f"{default_cache_dir()})")
    return parser


def _build_runner(args) -> ExperimentRunner:
    cache = None if args.no_cache else ResultCache(args.cache)
    return ExperimentRunner(jobs=args.jobs, cache=cache,
                            batch=not args.no_batch)


def _run_single(args) -> str:
    schedule = getattr(args, "fault_schedule", None)
    if args.profile:
        # Profiling wants a live, in-process run: bypass the runner and
        # its cache so the engine actually executes under the timer.
        from .perf import TickProfiler
        from .runner.request import ExperimentSetup, RunRequest, \
            execute_request

        setup = ExperimentSetup(duration_h=args.hours, budget_w=args.budget,
                                seed=args.seed)
        result = execute_request(
            RunRequest(args.scheme, args.workload, setup=setup,
                       faults=schedule),
            profiler=TickProfiler())
    else:
        result = quick_run(args.scheme, args.workload, hours=args.hours,
                           seed=args.seed, budget_w=args.budget,
                           faults=schedule)
    metrics = result.metrics
    lines = [
        f"{args.scheme} on {args.workload} "
        f"({args.hours:g} h, seed {args.seed}):",
        f"  energy efficiency : {metrics.energy_efficiency:.3f}",
        f"  server downtime   : {metrics.server_downtime_s:.0f} s",
        f"  battery lifetime  : {metrics.battery_lifetime_years:.2f} y",
        f"  buffer out / in   : "
        f"{joules_to_wh(metrics.buffer_energy_out_j):.1f} / "
        f"{joules_to_wh(metrics.buffer_energy_in_j):.1f} Wh",
    ]
    if metrics.fault_downtime_s:
        lines.append("  downtime by fault class:")
        for kind, seconds in metrics.fault_downtime_s.items():
            lines.append(f"    {kind:<20s}: {seconds:.1f} s")
    if result.perf is not None:
        lines.append("")
        lines.append(result.perf.format_table())
    return "\n".join(lines)


def _serve(args, runner: ExperimentRunner) -> int:
    import asyncio

    from .service.server import serve as serve_async

    try:
        asyncio.run(serve_async(runner, host=args.host, port=args.port,
                                max_queue=args.queue_size,
                                max_group=args.max_group,
                                batch_window_s=args.batch_window))
    except KeyboardInterrupt:
        print("shutting down (accepted runs drained)")
    return 0


def _loadtest(args) -> str:
    from .experiments.loadtest import format_loadtest, run_loadtest

    report = run_loadtest(
        host=args.host, port=args.port, clients=args.clients,
        requests_per_client=args.requests,
        hot_fraction=args.hot_fraction, unique=args.unique,
        duration_h=args.hours, seed=args.seed, jobs=args.jobs,
        cache_dir=args.cache)
    return format_loadtest(report)


def _cache_command(args) -> int:
    cache = ResultCache(args.cache)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    stats = cache.stats()
    print(f"cache directory : {stats.directory}")
    print(f"entries         : {stats.entries}")
    print(f"total size      : {stats.total_bytes / 1024:.1f} KiB")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        print("figures:", ", ".join(FIGURES))
        print("schemes:", ", ".join(POLICY_NAMES))
        print("workloads:", ", ".join(workload_names()))
        return 0
    if args.command == "lint":
        return run_lint(args)
    try:
        if args.command == "cache":
            return _cache_command(args)
        if getattr(args, "faults", None):
            args.fault_schedule = load_schedule(args.faults)
        runner = _build_runner(args)
    except (ConfigurationError, FaultSpecError, OSError) as exc:
        parser.error(str(exc))
    if args.command == "serve":
        return _serve(args, runner)
    if args.command == "loadtest":
        if (args.host is None) != (args.port is None):
            parser.error("--host and --port must be given together")
        print(_loadtest(args))
        return 0
    with using_runner(runner):
        if args.command == "run":
            print(_run_single(args))
            return 0
        if args.command == "resilience":
            print(experiments.format_resilience(experiments.run_resilience(
                duration_h=args.hours, seed=args.seed,
                workload=args.workload)))
            return 0
        print(FIGURES[args.command](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
