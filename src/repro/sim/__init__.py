"""Discrete-time simulation engine.

Replaces the prototype's physical feedback loop: per-second IPDU metering,
relay actuation, buffer charge/discharge, LRU shedding, and the 10-minute
hControl planning cadence (Sections 5-6).
"""

from .batch import BatchSimulation
from .buffers import HybridBuffers
from .engine import Simulation
from .metrics import RunMetrics
from .results import (
    RESULT_FORMAT_VERSION,
    RunResult,
    SlotRecord,
    average_metric,
    compare_schemes,
    dump_results,
    from_json_line,
    load_results,
    result_from_dict,
    result_to_dict,
    to_json_line,
)
from .report import (
    comparison_to_markdown,
    results_to_csv,
    results_to_markdown,
)

__all__ = [
    "BatchSimulation",
    "HybridBuffers",
    "Simulation",
    "RunMetrics",
    "RunResult",
    "SlotRecord",
    "RESULT_FORMAT_VERSION",
    "average_metric",
    "compare_schemes",
    "dump_results",
    "from_json_line",
    "load_results",
    "result_from_dict",
    "result_to_dict",
    "to_json_line",
    "comparison_to_markdown",
    "results_to_csv",
    "results_to_markdown",
]
