"""Discrete-time simulation engine.

Replaces the prototype's physical feedback loop: per-second IPDU metering,
relay actuation, buffer charge/discharge, LRU shedding, and the 10-minute
hControl planning cadence (Sections 5-6).
"""

from .buffers import HybridBuffers
from .engine import Simulation
from .metrics import RunMetrics
from .results import RunResult, SlotRecord, average_metric, compare_schemes
from .report import (
    comparison_to_markdown,
    results_to_csv,
    results_to_markdown,
)

__all__ = [
    "HybridBuffers",
    "Simulation",
    "RunMetrics",
    "RunResult",
    "SlotRecord",
    "average_metric",
    "compare_schemes",
    "comparison_to_markdown",
    "results_to_csv",
    "results_to_markdown",
]
