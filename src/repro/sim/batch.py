"""The batched multi-scenario engine: one tick loop, N scenarios.

:class:`BatchSimulation` advances N independent scalar
:class:`~repro.sim.engine.Simulation` scenarios through a single
vectorized tick loop, threading a leading *lane* axis through every
array the scalar engine already carries: per-server draws become
(lanes, servers), buffer wells and telemetry become (lanes,) columns,
and the metrics accumulator becomes a bank of (lanes,) running sums.
Per-scenario divergence — policy branches, slot plans, pool fallback,
shedding, restarts — is handled by boolean lane masks; the rare
genuinely sequential paths (LRU shedding, restart scans, slot closes)
drop to per-lane Python only on the lanes that need them.

The scalar ``Simulation`` is untouched and stays the bit-exactness
oracle: ``BatchSimulation([s1, ..., sN]).run_all()`` returns
:class:`~repro.sim.results.RunResult` objects **exactly equal** to
``[s1.run(), ..., sN.run()]``, per scenario.  Every expression here is
a lane-wise transcription of the scalar code with operand order,
branch structure, and epsilon thresholds preserved; where the scalar
engine leans on Python semantics (selection ``min``/``max``, CPython
``**``, element-order sums) the batch path replicates those semantics
rather than substituting the NumPy near-equivalent (see
:mod:`repro.storage.batch`).

Scenario sets must share the tick grid (trace length, ``dt``, slot
length) and the cluster shape; anything else — budgets, converter
efficiencies, policies, workloads, buffer sizings, supplies — may vary
per lane.  Incompatible sets raise
:class:`~repro.errors.BatchCompatibilityError`, which the batched
runner treats as "fall back to scalar".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.batch import BatchScheduler
from ..core.peaks import analyze_slots, expected_peak_duration_s
from ..core.policies.base import SlotObservation, SlotPlan, SlotResult
from ..errors import BatchCompatibilityError
from ..power.batch import BatchFabric, BatchIPDU
from ..server.batch import (SOURCE_SUPERCAP, SOURCE_UTILITY, BatchCluster,
                            SOURCE_BATTERY)
from ..storage.batch import (BatchBattery, BatchLifetime, BatchSupercap,
                             max0)
from ..storage.battery import LeadAcidBattery
from ..storage.supercap import Supercapacitor
from .buffers import HybridBuffers
from .engine import Simulation, _CALENDAR_LIFE_YEARS, _EPSILON
from .metrics import MetricsAccumulator, finalize_metrics
from .results import RunResult, SlotRecord

#: Widest cluster the batched path accepts: the per-tick demand totals
#: rely on ``np.add.reduce`` staying sequential, which numpy guarantees
#: only below its pairwise-summation threshold (the scalar engine keys
#: the same fast path on this width).
_MAX_BATCH_SERVERS = 8

#: Charge orders the merged three-call schedule can interleave without
#: per-group calls: every shipped policy emits one of these.  Any other
#: order (from a custom policy) falls back to the generic group loop.
_MERGEABLE_ORDERS = frozenset({
    (), ("sc",), ("battery",), ("sc", "battery"), ("battery", "sc")})


class BatchBuffers:
    """Lane-parallel :class:`~repro.sim.buffers.HybridBuffers`.

    Wraps one :class:`BatchBattery`, one :class:`BatchSupercap` (with
    absent lanes parked), and one :class:`BatchLifetime`, enforcing the
    scalar tick protocol: touched-pool tracking per tick, battery
    discharges feeding the lifetime model with the *post-step* SoC,
    battery charges and rests extending its observation window.
    """

    def __init__(self, buffers: Sequence[HybridBuffers], dt: float) -> None:
        n = len(buffers)
        self.n = n
        self.scalars = list(buffers)
        self.battery = BatchBattery([b.battery for b in buffers], dt)
        self.sc = BatchSupercap([b.sc for b in buffers], dt)
        self.lifetime = BatchLifetime([b.lifetime for b in buffers])
        self.has_sc = self.sc.present
        self._battery_touched = np.zeros(n, dtype=bool)
        self._battery_discharged = np.zeros(n, dtype=bool)
        self._sc_touched = np.zeros(n, dtype=bool)

    # -- state views ---------------------------------------------------

    def sc_usable_j(self) -> np.ndarray:
        return np.where(self.has_sc, self.sc.usable_j(), 0.0)

    def battery_usable_j(self) -> np.ndarray:
        return self.battery.usable_j()

    def sc_nominal_j(self) -> np.ndarray:
        return np.where(self.has_sc, self.sc.nominal_j, 0.0)

    def battery_nominal_j(self) -> np.ndarray:
        return self.battery.nominal_j

    # -- tick protocol -------------------------------------------------

    def begin_tick(self) -> None:
        self._battery_touched[:] = False
        self._battery_discharged[:] = False
        self._sc_touched[:] = False

    def discharge_battery(self, mask: np.ndarray, power_w: np.ndarray,
                          dt: float) -> np.ndarray:
        self._battery_touched |= mask
        self._battery_discharged |= mask
        achieved, current = self.battery.discharge(mask, power_w, dt)
        # observe_flow reads the battery's SoC *after* the step.
        self.lifetime.observe_discharge(mask, current, dt,
                                        self.battery.soc())
        return achieved

    def discharge_sc(self, mask: np.ndarray, power_w: np.ndarray,
                     dt: float) -> np.ndarray:
        self._sc_touched |= mask
        return self.sc.discharge(mask, power_w, dt)

    def charge_battery(self, mask: np.ndarray, power_w: np.ndarray,
                       dt: float, defer: bool = False) -> np.ndarray:
        """Charge the battery pool; the lifetime model's idle
        observation and (optionally) the KiBaM step are folded into
        :meth:`settle`, which the tick protocol guarantees runs before
        any battery state is read again."""
        self._battery_touched |= mask
        return self.battery.charge(mask, power_w, dt, defer_step=defer)

    def charge_sc(self, mask: np.ndarray, power_w: np.ndarray,
                  dt: float) -> np.ndarray:
        self._sc_touched |= mask
        return self.sc.charge(mask, power_w, dt)

    def settle(self, dt: float) -> None:
        rest_battery = ~self._battery_touched
        any_rest = bool(np.count_nonzero(rest_battery))
        self.battery.flush_step(rest_battery, any_rest)
        if any_rest:
            self.battery.telemetry.record_rest(rest_battery, dt)
        # Idle observation covers charged *and* rested lanes — exactly
        # the complement of this tick's discharges (charge and
        # discharge lanes are disjoint within a tick), merged into one
        # add since nothing reads the model mid-tick.
        if np.count_nonzero(self._battery_discharged):
            self.lifetime.observe_idle(~self._battery_discharged, dt)
        else:
            self.lifetime.observe_idle(None, dt)
        self.sc.rest(self.has_sc & ~self._sc_touched, dt)

    # -- finalization --------------------------------------------------

    def write_back(self) -> None:
        """Install final device state into every lane's scalar buffers."""
        for lane, buf in enumerate(self.scalars):
            self.battery.write_back(lane, buf.battery)
            if buf.sc is not None:
                self.sc.write_back(lane, buf.sc)
            self.lifetime.write_back(lane, buf.lifetime)


def _check_compatible(sims: Sequence[Simulation]) -> None:
    """Raise :class:`BatchCompatibilityError` unless one tick loop fits."""
    first = sims[0]
    dt = first.sim_config.tick_seconds
    num_ticks = first.trace.num_samples
    slot_ticks = max(1, int(round(first.controller_config.slot_seconds / dt)))
    num_servers = first.cluster_config.num_servers
    server_config = first.cluster_config.server
    if num_servers > _MAX_BATCH_SERVERS:
        raise BatchCompatibilityError(
            f"batched path supports at most {_MAX_BATCH_SERVERS} servers, "
            f"got {num_servers}")
    for index, sim in enumerate(sims):
        if sim.injector is not None:
            raise BatchCompatibilityError(
                f"scenario {index}: fault injection requires the scalar "
                "path")
        if sim.profiler is not None:
            raise BatchCompatibilityError(
                f"scenario {index}: tick profiling requires the scalar path")
        if not isinstance(sim.buffers.battery, LeadAcidBattery):
            raise BatchCompatibilityError(
                f"scenario {index}: battery pool is not a single "
                "LeadAcidBattery")
        if sim.buffers.sc is not None and not isinstance(
                sim.buffers.sc, Supercapacitor):
            raise BatchCompatibilityError(
                f"scenario {index}: SC pool is not a single Supercapacitor")
        if abs(sim.sim_config.tick_seconds - dt) > 1e-12:
            raise BatchCompatibilityError(
                f"scenario {index}: tick length differs")
        if sim.trace.num_samples != num_ticks:
            raise BatchCompatibilityError(
                f"scenario {index}: trace length differs")
        sim_slot_ticks = max(1, int(round(
            sim.controller_config.slot_seconds / sim.sim_config.tick_seconds)))
        if sim_slot_ticks != slot_ticks:
            raise BatchCompatibilityError(
                f"scenario {index}: slot grid differs")
        if sim.cluster_config.num_servers != num_servers:
            raise BatchCompatibilityError(
                f"scenario {index}: cluster size differs")
        if sim.cluster_config.server != server_config:
            raise BatchCompatibilityError(
                f"scenario {index}: server configuration differs")


class BatchSimulation:
    """N scenario runs advanced by one vectorized tick loop.

    Args:
        sims: Freshly constructed scalar simulations, one per scenario.
            Their constructors have already validated trace/supply/config
            consistency; this class only adds cross-scenario checks.
            The scalar objects are *consumed*: their device state is
            advanced by the batch run exactly as their own ``run()``
            would have advanced it.
    """

    def __init__(self, sims: Sequence[Simulation]) -> None:
        self.sims = list(sims)
        if self.sims:
            _check_compatible(self.sims)

    # ------------------------------------------------------------------

    def run_all(self) -> List[RunResult]:
        """Execute every scenario; returns per-scenario results in order.

        Each result is exactly equal to what the corresponding scalar
        ``Simulation.run()`` would have returned.
        """
        sims = self.sims
        if not sims:
            return []
        n = len(sims)
        first = sims[0]
        dt = first.sim_config.tick_seconds
        num_ticks = first.trace.num_samples
        slot_ticks = max(1, int(round(
            first.controller_config.slot_seconds / dt)))
        s = first.cluster_config.num_servers

        cluster = BatchCluster(n, s, first.cluster_config.server)
        scheduler = BatchScheduler(n, s)
        fabric = BatchFabric(n, s)
        ipdu = BatchIPDU(n, s, history_limit=slot_ticks)
        buffers = BatchBuffers([sim.buffers for sim in sims], dt)
        has_sc = buffers.has_sc

        eff = np.array([sim.cluster_config.converter_efficiency
                        for sim in sims])
        one_m_eff = 1.0 - eff
        renewable = [sim.renewable for sim in sims]

        # (ticks, lanes, servers) demand stack and (ticks, lanes) budget
        # and generation columns — bit-exact copies of every lane's
        # per-tick scalars.
        stack = np.ascontiguousarray(
            np.stack([sim.trace.values_w for sim in sims],
                     axis=0).transpose(2, 0, 1))
        budget_col = np.empty((num_ticks, n))
        generation_col = np.zeros((num_ticks, n))
        for lane, sim in enumerate(sims):
            if sim.supply is not None:
                vals = sim.supply.values_w[:num_ticks]
                budget_col[:, lane] = vals
                generation_col[:, lane] = vals
            else:
                budget_col[:, lane] = sim.cluster_config.utility_budget_w
        # Per-tick demand totals, accumulated server-by-server in index
        # order — the scalar engine's ``np.add.reduce(values, axis=-2)``
        # is sequential over the (outer) server axis, and a contiguous
        # inner-axis reduce would switch to numpy's unrolled pairwise
        # path at exactly 8 servers.
        tick_totals = np.zeros((num_ticks, n))
        for j in range(s):
            tick_totals = tick_totals + stack[:, :, j]

        # (ticks, lanes) accumulator banks: each tick stores its rate
        # row and the per-lane running sums are folded once at the end.
        # ``np.add.reduce`` over axis 0 of a C-ordered bank is a strict
        # row-by-row (tick-order) accumulation — bit-identical to the
        # scalar accumulator's per-tick ``+= w * dt`` — because numpy's
        # pairwise summation only engages on a contiguous reduction
        # axis.  Rows never stored keep their zeros, matching the
        # scalar's exact ``+= 0.0 * dt`` no-ops.
        bank_served = np.zeros((num_ticks, n))
        bank_unserved = np.zeros((num_ticks, n))
        bank_utility = np.zeros((num_ticks, n))
        bank_charge = np.zeros((num_ticks, n))
        bank_loss = np.zeros((num_ticks, n))
        bank_deficit = np.zeros((num_ticks, n), dtype=bool)
        shed_events = np.zeros(n, dtype=np.int64)

        # Per-lane slot state.
        plans: List[Optional[SlotPlan]] = [None] * n
        observations: List[Optional[SlotObservation]] = [None] * n
        last_analysis: List = [None] * n
        slot_records: List[List[SlotRecord]] = [[] for _ in range(n)]
        slot_downtime_base = [0.0] * n
        slot_start = 0

        # Plan-derived lane arrays, rebuilt at each slot boundary (the
        # first tick is always a boundary, so these placeholders are
        # never read).
        r_lambda = np.zeros(n)
        plan_use_battery = np.zeros(n, dtype=bool)
        plan_fallback = np.zeros(n, dtype=bool)
        use_sc_eff = np.zeros(n, dtype=bool)
        no_pools = np.zeros(n, dtype=bool)
        any_no_pools = False
        charge_generic: Optional[Dict[Tuple[str, ...], np.ndarray]] = None
        charge_sc_lead: Optional[np.ndarray] = None
        charge_bat: Optional[np.ndarray] = None
        charge_sc_trail: Optional[np.ndarray] = None

        for sim in sims:
            sim.policy.reset()

        def close_slot_lane(lane: int, analysis,
                            sc_usable: np.ndarray,
                            battery_usable: np.ndarray) -> None:
            observation = observations[lane]
            plan = plans[lane]
            assert observation is not None and plan is not None
            downtime = (cluster.total_downtime_lane(lane)
                        - slot_downtime_base[lane])
            peak_duration_s = expected_peak_duration_s(analysis)
            sc_usable_end = float(sc_usable[lane])
            battery_usable_end = float(battery_usable[lane])
            sims[lane].policy.end_slot(SlotResult(
                observation=observation,
                plan=plan,
                sc_usable_end_j=sc_usable_end,
                battery_usable_end_j=battery_usable_end,
                actual_peak_w=analysis.peak_w,
                actual_valley_w=analysis.valley_w,
                actual_peak_duration_s=peak_duration_s,
                downtime_s=downtime,
            ))
            slot_records[lane].append(SlotRecord(
                index=observation.index,
                note=plan.note,
                r_lambda=plan.r_lambda,
                peak_w=analysis.peak_w,
                valley_w=analysis.valley_w,
                peak_duration_s=peak_duration_s,
                sc_usable_end_j=sc_usable_end,
                battery_usable_end_j=battery_usable_end,
                downtime_in_slot_s=downtime,
            ))
            last_analysis[lane] = analysis

        with np.errstate(all="ignore"):
            for tick in range(num_ticks):
                now = tick * dt
                budget = budget_col[tick]

                # --- slot boundary ------------------------------------
                if tick % slot_ticks == 0:
                    sc_usable = buffers.sc_usable_j()
                    battery_usable = buffers.battery_usable_j()
                    sc_nominal = buffers.sc_nominal_j()
                    battery_nominal = buffers.battery_nominal_j()
                    analyses = None
                    if plans[0] is not None:
                        # Every lane's plan is set at the same boundary,
                        # so one row-parallel analysis covers them all.
                        analyses = analyze_slots(
                            np.ascontiguousarray(
                                tick_totals[slot_start:tick].T),
                            budget_col[slot_start], dt)
                    for lane in range(n):
                        if analyses is not None:
                            close_slot_lane(lane, analyses[lane],
                                            sc_usable, battery_usable)
                        slot_downtime_base[lane] = (
                            cluster.total_downtime_lane(lane))
                        analysis = last_analysis[lane]
                        if analysis is None:
                            last_peak = last_valley = last_duration = 0.0
                        else:
                            last_peak = analysis.peak_w
                            last_valley = analysis.valley_w
                            last_duration = expected_peak_duration_s(analysis)
                        observation = SlotObservation(
                            index=tick // slot_ticks,
                            start_s=now,
                            budget_w=float(budget[lane]),
                            sc_usable_j=float(sc_usable[lane]),
                            battery_usable_j=float(battery_usable[lane]),
                            sc_nominal_j=float(sc_nominal[lane]),
                            battery_nominal_j=float(battery_nominal[lane]),
                            last_peak_w=last_peak,
                            last_valley_w=last_valley,
                            last_peak_duration_s=last_duration,
                            num_servers=s,
                        )
                        observations[lane] = observation
                        plans[lane] = sims[lane].policy.begin_slot(
                            observation)
                    slot_start = tick
                    r_lambda = np.array(
                        [p.r_lambda for p in plans], dtype=float)
                    # clamp(r_lambda, 0, 1) with the scalar's NaN -> 1.0
                    # quirk, hoisted out of the tick loop (plans are
                    # constant within a slot).
                    r_lambda = np.where(
                        ~(r_lambda < 1.0), 1.0,
                        np.where(r_lambda < 0.0, 0.0, r_lambda))
                    plan_use_battery = np.array(
                        [p.use_battery for p in plans], dtype=bool)
                    plan_fallback = np.array(
                        [p.fallback for p in plans], dtype=bool)
                    use_sc_eff = np.array(
                        [p.use_sc for p in plans], dtype=bool) & has_sc
                    no_pools = ~use_sc_eff & ~plan_use_battery
                    any_no_pools = bool(np.count_nonzero(no_pools))
                    orders = [p.charge_order for p in plans]
                    if all(o in _MERGEABLE_ORDERS for o in orders):
                        # Merged schedule: one SC call for sc-leading
                        # lanes, one battery call, one SC call for
                        # ("battery", "sc") lanes.  Empty masks drop
                        # their call entirely.
                        charge_generic = None
                        lead = np.array(
                            [o[:1] == ("sc",) for o in orders],
                            dtype=bool) & has_sc
                        charge_sc_lead = (lead if np.count_nonzero(lead)
                                          else None)
                        bat = np.array(
                            ["battery" in o for o in orders], dtype=bool)
                        charge_bat = (bat if np.count_nonzero(bat)
                                      else None)
                        trail = np.array(
                            [o == ("battery", "sc") for o in orders],
                            dtype=bool) & has_sc
                        charge_sc_trail = (trail
                                           if np.count_nonzero(trail)
                                           else None)
                    else:
                        charge_generic = {}
                        for lane, plan in enumerate(plans):
                            mask = charge_generic.get(plan.charge_order)
                            if mask is None:
                                mask = np.zeros(n, dtype=bool)
                                charge_generic[plan.charge_order] = mask
                            mask[lane] = True

                # --- demand & assignment ------------------------------
                all_on = cluster.all_on
                raw = stack[tick]
                draws = cluster.draw_array(raw)
                assignment = scheduler.assign(
                    draws, None if all_on else cluster.powered_mask(),
                    budget, r_lambda, use_sc=use_sc_eff,
                    use_battery=plan_use_battery, no_pools=no_pools,
                    total=tick_totals[tick] if all_on else None)

                # The scalar engine skips relay applies only on ticks
                # where an apply would move zero relays, so per-tick
                # diff counting is switch-count identical.
                cluster.assign_sources(assignment.sources)
                fabric.apply_sources(assignment.sources)

                utility_draw = assignment.utility_draw_w
                unserved = None
                if not all_on:
                    off = cluster.off_mask()
                    unserved = np.zeros(n)
                    for j in range(s):
                        unserved = unserved + np.where(
                            off[:, j], raw[:, j], 0.0)

                # Forced capping: no pool could absorb the excess.
                # Skippable when every lane stayed within budget with
                # pools enabled (the within check already proved
                # ``total <= budget`` for every no-pools lane).
                if any_no_pools or not assignment.all_utility:
                    over = utility_draw - budget
                    over_mask = over > _EPSILON
                    if np.count_nonzero(over_mask):
                        if unserved is None:
                            unserved = np.zeros(n)
                        # utility_draw may alias the precomputed totals
                        # row (a bank view); never mutate through it.
                        if (utility_draw.base is not None
                                or not utility_draw.flags.writeable):
                            utility_draw = utility_draw.copy()
                        for lane in np.flatnonzero(over_mask).tolist():
                            shed_ids = cluster.shed_lru_lane(
                                lane, float(over[lane]), draws,
                                (SOURCE_UTILITY,))
                            freed = 0.0
                            for sid in shed_ids:  # repro: noqa[RPR502] shed-order re-sum matches the scalar engine
                                freed += float(draws[lane, sid])
                            utility_draw[lane] -= freed
                            unserved[lane] += freed
                            shed_events[lane] += len(shed_ids)

                # --- buffer service -----------------------------------
                buffers.begin_tick()
                served = loss = None
                if not assignment.all_utility:
                    served, shortfall_unserved, loss = self._serve_buffers(
                        buffers, cluster, assignment, plan_fallback,
                        draws, eff, one_m_eff, has_sc, shed_events, dt)
                    if shortfall_unserved is not None:
                        unserved = (shortfall_unserved if unserved is None
                                    else unserved + shortfall_unserved)

                # --- charging / restarts ------------------------------
                charge_w = None
                headroom = budget - utility_draw
                if assignment.all_utility:
                    deficit = None
                    can_charge = headroom > _EPSILON
                else:
                    deficit = assignment.n_buffered > 0
                    can_charge = ~deficit & (headroom > _EPSILON)
                if np.count_nonzero(can_charge):
                    if not cluster.all_on:
                        restart_lanes = can_charge & (cluster.num_off() > 0)
                        if np.count_nonzero(restart_lanes):
                            headroom = headroom.copy()
                            for lane in np.flatnonzero(
                                    restart_lanes).tolist():
                                needed = cluster.restart_offline_lane(
                                    lane, float(headroom[lane]))
                                for needed_w in needed:  # repro: noqa[RPR502] restart-order deduction matches the scalar engine
                                    headroom[lane] -= needed_w
                    if charge_generic is None:
                        charge_w = self._charge_pools_merged(
                            buffers, charge_sc_lead, charge_bat,
                            charge_sc_trail, can_charge, headroom, dt)
                    else:
                        charge_w = self._charge_pools(
                            buffers, charge_generic, can_charge, has_sc,
                            headroom, dt)
                buffers.settle(dt)

                # --- bookkeeping --------------------------------------
                cluster.tick(dt, now, raw)
                ipdu.record_array(
                    now, draws, dt,
                    tick_totals[tick] if all_on else None)
                bank_utility[tick] = utility_draw
                if served is None:
                    bank_served[tick] = utility_draw
                else:
                    bank_served[tick] = utility_draw + served
                if unserved is not None:
                    bank_unserved[tick] = unserved
                if charge_w is not None:
                    bank_charge[tick] = charge_w
                if loss is not None:
                    bank_loss[tick] = loss
                if deficit is not None:
                    bank_deficit[tick] = deficit

        sc_usable = buffers.sc_usable_j()
        battery_usable = buffers.battery_usable_j()
        if plans[0] is not None:
            analyses = analyze_slots(
                np.ascontiguousarray(tick_totals[slot_start:num_ticks].T),
                budget_col[slot_start], dt)
            for lane in range(n):
                close_slot_lane(lane, analyses[lane], sc_usable,
                                battery_usable)

        # --- finalization --------------------------------------------
        # Fold the banks tick-by-tick (see the bank allocation comment
        # for why axis-0 reduce of a C-ordered bank is sequential).
        served_energy = np.add.reduce(bank_served * dt, axis=0)
        unserved_energy = np.add.reduce(bank_unserved * dt, axis=0)
        utility_energy = np.add.reduce(bank_utility * dt, axis=0)
        charge_energy = np.add.reduce(bank_charge * dt, axis=0)
        generation_energy = np.add.reduce(generation_col * dt, axis=0)
        conversion_loss = np.add.reduce(bank_loss * dt, axis=0)
        # Bool reduce would saturate at True; sum() counts.
        deficit_ticks = bank_deficit.sum(axis=0, dtype=np.int64)

        buffers.write_back()
        duration_s = num_ticks * dt
        results: List[RunResult] = []
        for lane, sim in enumerate(sims):
            buf = sim.buffers
            report = buf.lifetime_report()
            lifetime_years = min(report.estimated_lifetime_years,
                                 _CALENDAR_LIFE_YEARS)
            accumulator = MetricsAccumulator(
                served_energy_j=float(served_energy[lane]),
                unserved_energy_j=float(unserved_energy[lane]),
                utility_energy_j=float(utility_energy[lane]),
                charge_energy_j=float(charge_energy[lane]),
                generation_energy_j=float(generation_energy[lane]),
                conversion_loss_j=float(conversion_loss[lane]),
                deficit_ticks=int(deficit_ticks[lane]),
                total_ticks=num_ticks,
                shed_events=int(shed_events[lane]),
            )
            metrics = finalize_metrics(
                accumulator,
                buffer_in_j=buf.energy_in_j(),
                buffer_out_j=buf.energy_out_j(),
                initial_stored_j=buf.initial_stored_j,
                final_stored_j=buf.total_stored_j,
                downtime_s=cluster.total_downtime_lane(lane),
                num_servers=s,
                duration_s=duration_s,
                lifetime_years=lifetime_years,
                equivalent_cycles=report.equivalent_full_cycles,
                total_restarts=cluster.total_restarts_lane(lane),
                restart_energy_j=cluster.total_restart_energy_lane(lane),
                relay_switches=fabric.total_switches_lane(lane),
                renewable=renewable[lane],
                fault_downtime_s=None,
            )
            results.append(RunResult(
                scheme=sim.policy.name,
                workload=sim.trace.name,
                metrics=metrics,
                lifetime=report,
                slots=tuple(slot_records[lane]),
                perf=None,
            ))
        return results

    # ------------------------------------------------------------------

    @staticmethod
    def _serve_buffers(buffers: BatchBuffers, cluster: BatchCluster,
                       assignment, fallback: np.ndarray, draws: np.ndarray,
                       eff: np.ndarray, one_m_eff: np.ndarray,
                       has_sc: np.ndarray,
                       shed_events: np.ndarray, dt: float):
        """Lane-parallel ``Simulation._serve_buffers`` (no injector).

        ``served``/``loss``/``unserved`` stay ``None`` until a pool
        actually contributes; the pool ``achieved`` arrays are exact
        zeros off-mask, so the unmasked adds reproduce the scalar
        running sums bit-for-bit (``0.0 + x == x`` and ``x + 0.0 == x``
        for the non-negative quantities involved).
        """
        n = buffers.n
        served = loss = sc_short = ba_short = None

        draw = assignment.sc_draw_w
        mask = draw > _EPSILON
        if np.count_nonzero(mask):
            achieved = buffers.discharge_sc(mask, draw / eff, dt)
            delivered = achieved * eff
            loss = achieved * one_m_eff
            served = delivered
            # Off-mask lanes read their (<= eps) raw draw here; every
            # consumer gates on ``short > _EPSILON``, so no zeroing.
            sc_short = max0(draw - delivered)
        draw = assignment.battery_draw_w
        mask = draw > _EPSILON
        if np.count_nonzero(mask):
            achieved = buffers.discharge_battery(mask, draw / eff, dt)
            delivered = achieved * eff
            term = achieved * one_m_eff
            loss = term if loss is None else loss + term
            served = delivered if served is None else served + delivered
            ba_short = max0(draw - delivered)

        if sc_short is not None:
            mask = fallback & (sc_short > _EPSILON)
            if np.count_nonzero(mask):
                achieved = buffers.discharge_battery(
                    mask, sc_short / eff, dt)
                delivered = achieved * eff
                loss = loss + achieved * one_m_eff
                served = served + delivered
                sc_short = max0(sc_short - delivered)
        if ba_short is not None:
            mask = fallback & (ba_short > _EPSILON) & has_sc
            if np.count_nonzero(mask):
                achieved = buffers.discharge_sc(mask, ba_short / eff, dt)
                delivered = achieved * eff
                loss = loss + achieved * one_m_eff
                served = served + delivered
                ba_short = max0(ba_short - delivered)

        unserved = None
        for short, source in ((sc_short, SOURCE_SUPERCAP),
                              (ba_short, SOURCE_BATTERY)):
            if short is None:
                continue
            short_mask = short > _EPSILON
            if not np.count_nonzero(short_mask):
                continue
            if unserved is None:
                unserved = np.zeros(n)
            for lane in np.flatnonzero(short_mask).tolist():
                shed_ids = cluster.shed_lru_lane(
                    lane, float(short[lane]), draws, (source,))
                for sid in shed_ids:  # repro: noqa[RPR502] shed-order re-sum matches the scalar engine
                    unserved[lane] += float(draws[lane, sid])
                shed_events[lane] += len(shed_ids)
        return served, unserved, loss

    @staticmethod
    def _charge_pools_merged(buffers: BatchBuffers,
                             sc_lead: Optional[np.ndarray],
                             bat: Optional[np.ndarray],
                             sc_trail: Optional[np.ndarray],
                             eligible: np.ndarray, headroom: np.ndarray,
                             dt: float) -> Optional[np.ndarray]:
        """Interleaved charge schedule in three pool calls.

        Exact for every order in :data:`_MERGEABLE_ORDERS`: each lane
        sees its pools in its own order because sc-leading lanes get
        the first SC call, every battery-bearing lane shares one
        battery call (with the scalar's ``remaining > eps`` recheck
        when an SC call preceded it), and ("battery", "sc") lanes get
        the trailing SC call.  Eligibility already implies
        ``headroom > eps``, so the first call a lane participates in
        needs no recheck.  Returns ``None`` when no pool accepted
        anything (exact zeros otherwise off-mask).
        """
        remaining = headroom
        accepted = None
        if sc_lead is not None:
            active = sc_lead & eligible
            if np.count_nonzero(active):
                achieved = buffers.charge_sc(active, remaining, dt)
                accepted = achieved
                remaining = np.where(active, remaining - achieved,
                                     remaining)
        if bat is not None:
            active = bat & eligible
            if accepted is not None:
                active = active & (remaining > _EPSILON)
            if np.count_nonzero(active):
                achieved = buffers.charge_battery(active, remaining, dt,
                                                  defer=True)
                accepted = (achieved if accepted is None
                            else accepted + achieved)
                if sc_trail is not None:
                    remaining = np.where(active, remaining - achieved,
                                         remaining)
        if sc_trail is not None:
            active = sc_trail & eligible & (remaining > _EPSILON)
            if np.count_nonzero(active):
                achieved = buffers.charge_sc(active, remaining, dt)
                accepted = (achieved if accepted is None
                            else accepted + achieved)
        return accepted

    @staticmethod
    def _charge_pools(buffers: BatchBuffers,
                      charge_groups: Dict[Tuple[str, ...], np.ndarray],
                      eligible: np.ndarray, has_sc: np.ndarray,
                      headroom: np.ndarray, dt: float) -> np.ndarray:
        """Lane-parallel ``Simulation._charge_pools`` (no injector).

        Generic per-group fallback for charge orders outside
        :data:`_MERGEABLE_ORDERS`; battery steps are not deferred here
        because an exotic order could revisit the battery.
        """
        accepted = np.zeros(buffers.n)
        remaining = headroom
        for order, group in charge_groups.items():
            lanes = group & eligible
            if not np.count_nonzero(lanes):
                continue
            for name in order:
                active = lanes & (remaining > _EPSILON)
                if name == "sc":
                    active = active & has_sc
                if not np.count_nonzero(active):
                    continue
                if name == "sc":
                    achieved = buffers.charge_sc(active, remaining, dt)
                else:
                    achieved = buffers.charge_battery(active, remaining, dt)
                accepted = accepted + np.where(active, achieved, 0.0)
                remaining = np.where(active, remaining - achieved,
                                     remaining)
        return accepted


__all__ = ["BatchBuffers", "BatchSimulation"]
